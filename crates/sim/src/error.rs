use std::error::Error;
use std::fmt;

/// Errors raised by the cycle-level simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// No core can make progress but not every core has halted.
    Deadlock {
        /// Cores blocked on a receive with no matching message.
        blocked_on_recv: Vec<u32>,
        /// Cores waiting at a barrier.
        blocked_on_barrier: Vec<u32>,
    },
    /// The compiled program references a core outside the architecture.
    InvalidCore {
        /// The offending core identifier.
        core: u32,
    },
    /// A safety limit on simulated cycles was exceeded (runaway program).
    CycleLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A design point cannot replay a recorded trace: its configuration
    /// is invalid or differs in a compile-affecting field. The caller
    /// should fall back to a full compile + interpretation — the replay
    /// engine never approximates.
    TraceMismatch {
        /// What was incompatible.
        detail: String,
    },
    /// A serving-mode workload is unusable: invalid rate or mix, an
    /// unreadable arrival-trace file, or co-located models that do not
    /// share a clock frequency.
    Traffic {
        /// What was wrong with the workload.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { blocked_on_recv, blocked_on_barrier } => write!(
                f,
                "simulation dead-locked: {} cores blocked on recv, {} on barriers",
                blocked_on_recv.len(),
                blocked_on_barrier.len()
            ),
            SimError::InvalidCore { core } => {
                write!(f, "program references nonexistent core {core}")
            }
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "simulation exceeded the cycle limit of {limit}")
            }
            SimError::TraceMismatch { detail } => {
                write!(f, "design point cannot replay the recorded trace: {detail}")
            }
            SimError::Traffic { detail } => {
                write!(f, "serving workload rejected: {detail}")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Deadlock { blocked_on_recv: vec![1, 2], blocked_on_barrier: vec![] };
        assert!(e.to_string().contains("2 cores blocked on recv"));
        assert!(SimError::CycleLimitExceeded { limit: 10 }.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
