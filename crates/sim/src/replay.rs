//! Batched timing-only replay of a recorded [`SimTrace`]: re-times the
//! invariant per-core op streams for many design points, producing
//! [`SimReport`]s bit-exact against the interpreter.
//!
//! Replay mirrors the interpreter's scheduler *exactly* — the same
//! smallest-local-time core pick, the same 4096-instruction scheduling
//! slices (fused [`TraceOp::Advance`] runs split at slice boundaries),
//! the same barrier-release, chip hand-off and streamed-tile rules —
//! because mesh contention, port queuing and channel arrival order all
//! depend on that interleaving. What it *skips* is everything the trace
//! already resolved: instruction fetch/decode, the register file, and
//! every energy term that does not depend on timing.
//!
//! Points cannot advance op-major in a single synchronized sweep: which
//! core runs next is itself a timing decision, so two points diverge in
//! their schedules immediately. "Lockstep" is therefore realized as N
//! points executing over the one shared immutable trace with
//! structure-of-arrays per-point state ([`ReplayState`]'s flat clock /
//! scoreboard / port vectors), allocated once per batch and reset per
//! point — the allocation-free inner loop is where the throughput comes
//! from, together with the fused advance runs that retire hundreds of
//! scalar instructions in one op.

use std::collections::{HashMap, VecDeque};

use cimflow_arch::ArchConfig;
use cimflow_compiler::STREAM_TILE_BYTES;
use cimflow_energy::{EnergyBreakdown, EnergyModel};
use cimflow_noc::{InterChipFabric, Interconnect, Mesh, NocConfig, NocStats};

use crate::core::BlockReason;
use crate::engine::{HandoffMode, SimOptions, INSTRUCTION_BUDGET, MAX_STREAM_TILES, SLICE};
use crate::report::{SimReport, UnitActivity};
use crate::trace::{SimTrace, TraceOp};
use crate::SimError;

/// Re-times a recorded [`SimTrace`] for timing-only design points.
///
/// Every replayed point must share the trace's
/// [`compile_fingerprint`](ArchConfig::compile_fingerprint); replay
/// refuses incompatible or invalid configurations with
/// [`SimError::TraceMismatch`] rather than approximating. Profiling
/// ([`SimOptions::profile`]) is ignored — attach a tracer to a plain
/// [`Simulator`](crate::Simulator) run for timelines.
///
/// # Example
///
/// ```no_run
/// # use cimflow_sim::{ReplayEngine, Simulator};
/// # use cimflow_arch::ArchConfig;
/// # fn demo(compiled: &cimflow_compiler::CompiledProgram) {
/// let (trace, baseline) = Simulator::record(compiled).unwrap();
/// let engine = ReplayEngine::new(&trace);
/// let slow = engine.replay(&compiled.arch.with_frequency_mhz(500), Default::default());
/// # }
/// ```
#[derive(Debug)]
pub struct ReplayEngine<'a> {
    trace: &'a SimTrace,
}

impl<'a> ReplayEngine<'a> {
    /// Creates a replay engine over one recorded trace.
    pub fn new(trace: &'a SimTrace) -> Self {
        ReplayEngine { trace }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &SimTrace {
        self.trace
    }

    /// Re-times the trace for one design point.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceMismatch`] when `arch` fails validation or its
    /// compile fingerprint differs from the trace's; the interpreter's
    /// error conditions ([`SimError::Deadlock`],
    /// [`SimError::CycleLimitExceeded`]) are mirrored too, though a
    /// successfully recorded trace cannot reach them.
    pub fn replay(&self, arch: &ArchConfig, options: SimOptions) -> Result<SimReport, SimError> {
        let mut state = ReplayState::new(self.trace);
        self.replay_into(&mut state, arch, options)
    }

    /// Re-times the trace for a batch of design points, reusing one
    /// structure-of-arrays state across all of them (no per-point
    /// allocation beyond the meshes). Each point gets its own result so
    /// a single incompatible configuration does not poison the batch.
    pub fn replay_batch(
        &self,
        points: &[(ArchConfig, SimOptions)],
    ) -> Vec<Result<SimReport, SimError>> {
        let mut state = ReplayState::new(self.trace);
        points.iter().map(|(arch, options)| self.replay_into(&mut state, arch, *options)).collect()
    }

    /// One point over caller-provided (reusable) state.
    fn replay_into(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        options: SimOptions,
    ) -> Result<SimReport, SimError> {
        if let Err(error) = arch.validate() {
            return Err(SimError::TraceMismatch { detail: error.to_string() });
        }
        if !self.trace.is_compatible(arch) {
            return Err(SimError::TraceMismatch {
                detail: format!(
                    "compile fingerprint {:#018x} differs from the trace's {:#018x} \
                     (a compile-affecting field changed; recompile instead of replaying)",
                    arch.compile_fingerprint(),
                    self.trace.fingerprint
                ),
            });
        }
        state.reset(self.trace, arch);
        self.run(state, arch, options)?;
        Ok(self.finish(state, arch))
    }

    /// The interpreter's top-level loop over trace ops.
    fn run(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        options: SimOptions,
    ) -> Result<(), SimError> {
        let energy = EnergyModel::calibrated_28nm();
        loop {
            self.retire_finished_chips(state, arch, &energy);
            if state.block.iter().all(|b| *b == BlockReason::Halted) {
                break;
            }
            match self.pick_core(state) {
                Some(core) => self.run_slice(state, core, arch, &energy),
                None => {
                    if self.release_barriers(state, arch, &energy, options) {
                        continue;
                    }
                    return Err(self.deadlock(state));
                }
            }
            if state.executed > INSTRUCTION_BUDGET {
                return Err(SimError::CycleLimitExceeded { limit: INSTRUCTION_BUDGET });
            }
        }
        Ok(())
    }

    /// Mirror of the interpreter's smallest-local-time runnable pick.
    fn pick_core(&self, state: &ReplayState) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, block) in state.block.iter().enumerate() {
            if !state.chip_started[i / self.trace.cores_per_chip] {
                continue;
            }
            let runnable = match *block {
                BlockReason::None => true,
                BlockReason::Recv { src } => {
                    state.channels.get(&(src, i as u32)).is_some_and(|q| !q.is_empty())
                }
                _ => false,
            };
            if runnable {
                best = match best {
                    Some(b) if state.now[b] <= state.now[i] => Some(b),
                    _ => Some(i),
                };
            }
        }
        best
    }

    /// Executes up to [`SLICE`] *instructions* (not ops: a fused advance
    /// run splits at the boundary) on one core.
    fn run_slice(
        &self,
        state: &mut ReplayState,
        index: usize,
        arch: &ArchConfig,
        energy: &EnergyModel,
    ) {
        state.block[index] = BlockReason::None;
        let mut budget = SLICE;
        while budget > 0 {
            if state.block[index] != BlockReason::None {
                break;
            }
            budget -= self.step(state, index, budget, arch, energy);
        }
    }

    /// Consumes (part of) the core's next trace op; returns the number
    /// of slice-budget instructions it accounted for (always ≥ 1).
    fn step(
        &self,
        state: &mut ReplayState,
        index: usize,
        budget: u64,
        arch: &ArchConfig,
        energy: &EnergyModel,
    ) -> u64 {
        let trace = self.trace;
        let Some(&op) = trace.ops[index].get(state.op_idx[index]) else {
            // Structurally unreachable (every stream ends in `Halt`),
            // but degrade to a halt rather than walking off the end.
            state.block[index] = BlockReason::Halted;
            return 1;
        };
        let chip = index / trace.cores_per_chip;
        let core_id = (index % trace.cores_per_chip) as u32;
        match op {
            TraceOp::Advance { insts, penalty } => {
                let done = state.advance_done[index];
                let remaining = u64::from(insts - done);
                let take = remaining.min(budget);
                state.now[index] += take;
                if take == remaining {
                    if penalty {
                        state.now[index] += 2;
                    }
                    state.advance_done[index] = 0;
                    state.op_idx[index] += 1;
                } else {
                    state.advance_done[index] = done + take as u32;
                }
                state.executed += take;
                take
            }
            TraceOp::CimMvm { mg, issue, latency } => {
                let slot = index * trace.macro_groups + mg as usize;
                let begin = state.now[index].max(state.mg_busy_until[slot]);
                state.mg_busy_until[slot] = begin + issue;
                state.mg_acc_ready[slot] = begin + latency;
                state.now[index] += 1;
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::CimLoad { mg, cycles } => {
                let slot = index * trace.macro_groups + mg as usize;
                let begin = state.now[index].max(state.mg_busy_until[slot]);
                state.mg_busy_until[slot] = begin + cycles;
                state.mg_acc_ready[slot] = begin + cycles;
                state.now[index] += 1;
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::CimStoreAcc { mg } => {
                let slot = index * trace.macro_groups + mg as usize;
                state.now[index] = state.now[index].max(state.mg_acc_ready[slot]) + 1;
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::Vector { cycles } => {
                let begin = state.now[index].max(state.vector_busy_until[index]);
                state.vector_busy_until[index] = begin + cycles;
                state.now[index] += 1;
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::LocalCpy { cycles } => {
                state.now[index] += cycles;
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::GlobalCpy { bytes, from_memory, port_cycles } => {
                let now = state.now[index];
                let mesh = &mut state.meshes[chip];
                let outcome = if from_memory {
                    mesh.transfer_from_memory(core_id, bytes, now)
                } else {
                    mesh.transfer_to_memory(core_id, bytes, now)
                };
                let port_start = outcome.arrival.max(state.global_port_free[chip]);
                let completion = port_start + port_cycles;
                state.global_port_free[chip] = completion;
                state.now[index] = completion;
                state.noc_pj[index] += energy.noc.transfer_pj(
                    outcome.flits,
                    arch.chip().noc_flit_bytes,
                    outcome.hops.max(1),
                );
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::Send { dst, bytes, push } => {
                let now = state.now[index];
                let outcome = state.meshes[chip].transfer(core_id, dst, bytes, now);
                if push {
                    let dst_global = (chip * trace.cores_per_chip) as u32 + dst;
                    state
                        .channels
                        .entry((index as u32, dst_global))
                        .or_default()
                        .push_back(outcome.arrival);
                }
                state.now[index] += 1;
                state.noc_pj[index] += energy.noc.transfer_pj(
                    outcome.flits,
                    arch.chip().noc_flit_bytes,
                    outcome.hops.max(1),
                );
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::Recv { src, local_cycles } => {
                let src_global = (chip * trace.cores_per_chip) as u32 + src;
                let queue = state.channels.entry((src_global, index as u32)).or_default();
                match queue.pop_front() {
                    Some(arrival) => {
                        state.now[index] = state.now[index].max(arrival) + local_cycles;
                        state.op_idx[index] += 1;
                        state.executed += 1;
                        1
                    }
                    None => {
                        // Stay at this op until a message arrives.
                        state.block[index] = BlockReason::Recv { src: src_global };
                        1
                    }
                }
            }
            TraceOp::Barrier { id } => {
                state.now[index] += 1;
                state.block[index] = BlockReason::Barrier { id };
                state.op_idx[index] += 1;
                state.executed += 1;
                1
            }
            TraceOp::Halt { counted } => {
                state.block[index] = BlockReason::Halted;
                if counted {
                    state.executed += 1;
                }
                1
            }
        }
    }

    /// Mirror of the interpreter's finished-chip hand-off pass.
    fn retire_finished_chips(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        energy: &EnergyModel,
    ) {
        let trace = self.trace;
        if trace.chip_count == 1 {
            return;
        }
        for chip in 0..trace.chip_count {
            let cores = chip * trace.cores_per_chip..(chip + 1) * trace.cores_per_chip;
            if !state.chip_started[chip]
                || state.chip_dispatched[chip]
                || !cores.clone().all(|g| state.block[g] == BlockReason::Halted)
            {
                continue;
            }
            let cores_done = cores.map(|g| state.now[g]).max().unwrap_or(0);
            let finish = cores_done.max(state.last_input_landed[chip]);
            state.chip_finish_time[chip] = finish;
            state.chip_dispatched[chip] = true;
            for k in 0..trace.chip_transfers[chip].len() {
                let index = trace.chip_transfers[chip][k];
                if state.transfer_dispatched[index] {
                    continue;
                }
                state.transfer_dispatched[index] = true;
                let transfer = trace.transfers[index];
                let to = transfer.to_chip as usize;
                let outcome = state.fabric.transfer(
                    transfer.from_chip,
                    transfer.to_chip,
                    transfer.bytes,
                    finish,
                );
                let port_start = outcome.arrival.max(state.global_port_free[to]);
                let landed = port_start + arch.chip().global_memory.transfer_cycles(transfer.bytes);
                state.global_port_free[to] = landed;
                state.landing_windows[to].push((port_start, landed));
                state.system_energy.interchip_pj +=
                    energy.interchip.transfer_pj(transfer.bytes, outcome.hops);
                state.system_energy.global_memory_pj += energy.sram.global_pj(transfer.bytes);
                state.chip_ready[to] = state.chip_ready[to].max(landed);
                state.last_input_landed[to] = state.last_input_landed[to].max(landed);
                state.incoming_remaining[to] -= 1;
            }
        }
        self.start_ready_chips(state);
    }

    /// Mirror of the interpreter's chip-start gate.
    fn start_ready_chips(&self, state: &mut ReplayState) {
        for chip in 0..self.trace.chip_count {
            if state.chip_started[chip] || state.incoming_remaining[chip] != 0 {
                continue;
            }
            state.chip_started[chip] = true;
            state.chip_start_time[chip] = state.chip_ready[chip];
            for g in chip * self.trace.cores_per_chip..(chip + 1) * self.trace.cores_per_chip {
                state.now[g] = state.chip_ready[chip];
            }
        }
    }

    /// Mirror of the interpreter's per-stage streamed hand-off.
    fn stream_stage_transfers(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        energy: &EnergyModel,
        chip: usize,
        ordinal: usize,
        end: u64,
    ) {
        let trace = self.trace;
        if trace.chip_count == 1 {
            return;
        }
        let window_start = state.barrier_release[chip]
            .get(&((ordinal * 2) as u16))
            .copied()
            .unwrap_or(state.chip_start_time[chip])
            .min(end);
        for k in 0..trace.chip_transfers[chip].len() {
            let index = trace.chip_transfers[chip][k];
            if state.transfer_dispatched[index] || trace.transfers[index].stage != Some(ordinal) {
                continue;
            }
            state.transfer_dispatched[index] = true;
            self.dispatch_streamed(state, arch, energy, index, window_start, end);
        }
        self.start_ready_chips(state);
    }

    /// Mirror of the interpreter's tile-granular dispatch.
    fn dispatch_streamed(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        energy: &EnergyModel,
        index: usize,
        start: u64,
        end: u64,
    ) {
        let transfer = self.trace.transfers[index];
        let to = transfer.to_chip as usize;
        let tile = STREAM_TILE_BYTES.max(transfer.bytes.div_ceil(MAX_STREAM_TILES));
        let tiles = transfer.bytes.div_ceil(tile).max(1);
        let span = end.saturating_sub(start);
        let mut remaining = transfer.bytes;
        let mut first_landed = end;
        let mut last_landed = end;
        for i in 0..tiles {
            let size = remaining.min(tile);
            remaining -= size;
            let available = start + (span * (i + 1)) / tiles;
            let outcome =
                state.fabric.transfer(transfer.from_chip, transfer.to_chip, size, available);
            let port_start = outcome.arrival.max(state.global_port_free[to]);
            let landed = port_start + arch.chip().global_memory.transfer_cycles(size);
            state.global_port_free[to] = landed;
            state.landing_windows[to].push((port_start, landed));
            state.system_energy.interchip_pj += energy.interchip.transfer_pj(size, outcome.hops);
            state.system_energy.global_memory_pj += energy.sram.global_pj(size);
            if i == 0 {
                first_landed = landed;
            }
            last_landed = landed;
        }
        state.chip_ready[to] = state.chip_ready[to].max(first_landed);
        state.last_input_landed[to] = state.last_input_landed[to].max(last_landed);
        state.incoming_remaining[to] -= 1;
    }

    /// Mirror of the interpreter's barrier-release sweep.
    fn release_barriers(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        energy: &EnergyModel,
        options: SimOptions,
    ) -> bool {
        let mut released = false;
        for chip in 0..self.trace.chip_count {
            if state.chip_started[chip] {
                released |= self.release_barrier(state, arch, energy, options, chip);
            }
        }
        released
    }

    /// Mirror of the interpreter's per-chip barrier release.
    fn release_barrier(
        &self,
        state: &mut ReplayState,
        arch: &ArchConfig,
        energy: &EnergyModel,
        options: SimOptions,
        chip: usize,
    ) -> bool {
        let cores = chip * self.trace.cores_per_chip..(chip + 1) * self.trace.cores_per_chip;
        let mut waiting: Vec<(usize, u16)> = Vec::new();
        for i in cores.clone() {
            match state.block[i] {
                BlockReason::Barrier { id } => waiting.push((i, id)),
                BlockReason::Halted => {}
                _ => return false,
            }
        }
        if waiting.is_empty() {
            return false;
        }
        let min_id = waiting.iter().map(|(_, id)| *id).min().expect("non-empty");
        let members: Vec<usize> =
            waiting.iter().filter(|(_, id)| *id == min_id).map(|(i, _)| *i).collect();
        let halted = cores.filter(|i| state.block[*i] == BlockReason::Halted).count();
        if members.len() + halted != self.trace.cores_per_chip {
            return false;
        }
        let release = members.iter().map(|i| state.now[*i]).max().unwrap_or(0) + 1;
        for i in members {
            state.now[i] = release;
            state.block[i] = BlockReason::None;
        }
        state.barrier_release[chip].insert(min_id, release);
        if min_id % 2 == 1 {
            let ordinal = (min_id as usize - 1) / 2;
            if options.handoff == HandoffMode::TileStreaming {
                self.stream_stage_transfers(state, arch, energy, chip, ordinal, release);
            }
        }
        true
    }

    fn deadlock(&self, state: &ReplayState) -> SimError {
        let mut recv = Vec::new();
        let mut barrier = Vec::new();
        for (i, block) in state.block.iter().enumerate() {
            match block {
                BlockReason::Recv { .. } => recv.push(i as u32),
                BlockReason::Barrier { .. } => barrier.push(i as u32),
                _ => {}
            }
        }
        SimError::Deadlock { blocked_on_recv: recv, blocked_on_barrier: barrier }
    }

    /// Mirror of the interpreter's report assembly, substituting the
    /// recorded invariants where timing cannot reach.
    fn finish(&self, state: &mut ReplayState, arch: &ArchConfig) -> SimReport {
        let trace = self.trace;
        let energy_model = EnergyModel::calibrated_28nm();
        let total_cycles = state
            .now
            .iter()
            .copied()
            .chain(state.last_input_landed.iter().copied())
            .chain(state.chip_finish_time.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        let mut energy = EnergyBreakdown::new();
        for (i, inv) in trace.core_invariants.iter().enumerate() {
            let core_energy = EnergyBreakdown {
                compute_pj: inv.compute_pj,
                local_memory_pj: inv.local_memory_pj,
                noc_pj: state.noc_pj[i],
                global_memory_pj: inv.global_memory_pj,
                control_pj: inv.control_pj,
                ..EnergyBreakdown::new()
            };
            energy.accumulate(&core_energy);
        }
        energy.accumulate(&state.system_energy);
        energy.accumulate(&energy_model.static_energy(arch, total_cycles));

        let mg_per_core = arch.core.cim_unit.macro_groups.max(1) as f64;
        let core_utilization: Vec<f64> = trace
            .core_invariants
            .iter()
            .map(|inv| (inv.mg_busy_cycles as f64 / mg_per_core / total_cycles as f64).min(1.0))
            .collect();
        let cim_busy: u64 = trace.core_invariants.iter().map(|inv| inv.mg_busy_cycles).sum();
        let vector_busy: u64 = trace.core_invariants.iter().map(|inv| inv.vector_busy_cycles).sum();

        let chip_finish: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                if state.chip_dispatched[chip] {
                    state.chip_finish_time[chip]
                } else {
                    (chip * trace.cores_per_chip..(chip + 1) * trace.cores_per_chip)
                        .map(|g| state.now[g])
                        .max()
                        .unwrap_or(0)
                        .max(state.last_input_landed[chip])
                }
            })
            .collect();
        let chip_cycles: Vec<u64> = chip_finish
            .iter()
            .zip(&state.chip_start_time)
            .map(|(finish, start)| finish.saturating_sub(*start))
            .collect();
        let chip_stall_cycles: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                let (start, finish) = (state.chip_start_time[chip], chip_finish[chip]);
                state.landing_windows[chip]
                    .iter()
                    .map(|(from, to)| to.min(&finish).saturating_sub(*from.max(&start)))
                    .sum()
            })
            .collect();
        let chip_overlap_cycles: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                state.last_input_landed[chip]
                    .min(chip_finish[chip])
                    .saturating_sub(state.chip_start_time[chip])
            })
            .collect();

        let mut noc = NocStats::default();
        for mesh in &state.meshes {
            noc.merge(mesh.stats());
        }

        let mut report = SimReport {
            total_cycles,
            energy,
            dynamic_instructions: trace.dynamic_instructions.clone(),
            cim_activity: UnitActivity { busy_cycles: cim_busy, operations: trace.cim_ops },
            vector_activity: UnitActivity {
                busy_cycles: vector_busy,
                operations: trace.vector_ops,
            },
            noc,
            interchip: state.fabric.stats().clone(),
            core_utilization,
            chip_cycles,
            chip_stall_cycles,
            chip_overlap_cycles,
            total_macs: trace.total_macs,
            frequency_mhz: 0,
            chip_count: 0,
        };
        report.attach_arch(arch);
        report
    }
}

/// Structure-of-arrays per-point timing state, allocated once per batch
/// and reset per point. Everything timing-dependent lives here; the
/// shared [`SimTrace`] stays immutable.
#[derive(Debug)]
struct ReplayState {
    /// Per core: local clock.
    now: Vec<u64>,
    /// Per core: next op in its stream.
    op_idx: Vec<usize>,
    /// Per core: instructions consumed of a partially-split advance run.
    advance_done: Vec<u32>,
    /// Per core: scheduler block state.
    block: Vec<BlockReason>,
    /// Per core: vector-unit busy-until.
    vector_busy_until: Vec<u64>,
    /// Per core: point-dependent NoC energy (routing distance varies
    /// with the memory-port placement).
    noc_pj: Vec<f64>,
    /// Core-major flattened macro-group busy-until scoreboard.
    mg_busy_until: Vec<u64>,
    /// Core-major flattened accumulator-ready scoreboard.
    mg_acc_ready: Vec<u64>,
    /// Per chip: hand-off bookkeeping (mirrors the interpreter's).
    chip_started: Vec<bool>,
    chip_dispatched: Vec<bool>,
    chip_ready: Vec<u64>,
    chip_start_time: Vec<u64>,
    chip_finish_time: Vec<u64>,
    incoming_remaining: Vec<usize>,
    last_input_landed: Vec<u64>,
    /// Per chip: the shared global-memory port's free time (used both by
    /// `GlobalCpy` ops and by landing cut activations — one port).
    global_port_free: Vec<u64>,
    barrier_release: Vec<HashMap<u16, u64>>,
    landing_windows: Vec<Vec<(u64, u64)>>,
    transfer_dispatched: Vec<bool>,
    /// In-flight messages per (global sender, global receiver): arrival
    /// cycles only — byte counts are invariant and pre-resolved into the
    /// receiving op.
    channels: HashMap<(u32, u32), VecDeque<u64>>,
    meshes: Vec<Mesh>,
    fabric: InterChipFabric,
    system_energy: EnergyBreakdown,
    executed: u64,
}

impl ReplayState {
    fn new(trace: &SimTrace) -> Self {
        let cores = trace.ops.len();
        let chips = trace.chip_count;
        ReplayState {
            now: vec![0; cores],
            op_idx: vec![0; cores],
            advance_done: vec![0; cores],
            block: vec![BlockReason::None; cores],
            vector_busy_until: vec![0; cores],
            noc_pj: vec![0.0; cores],
            mg_busy_until: vec![0; cores * trace.macro_groups],
            mg_acc_ready: vec![0; cores * trace.macro_groups],
            chip_started: vec![false; chips],
            chip_dispatched: vec![false; chips],
            chip_ready: vec![0; chips],
            chip_start_time: vec![0; chips],
            chip_finish_time: vec![0; chips],
            incoming_remaining: vec![0; chips],
            last_input_landed: vec![0; chips],
            global_port_free: vec![0; chips],
            barrier_release: vec![HashMap::new(); chips],
            landing_windows: vec![Vec::new(); chips],
            transfer_dispatched: vec![false; trace.transfers.len()],
            channels: HashMap::new(),
            meshes: Vec::new(),
            fabric: InterChipFabric::new(cimflow_noc::InterChipConfig::point_to_point(
                chips as u32,
                1,
                0,
            )),
            system_energy: EnergyBreakdown::new(),
            executed: 0,
        }
    }

    /// Re-arms the state for one design point.
    fn reset(&mut self, trace: &SimTrace, arch: &ArchConfig) {
        self.now.fill(0);
        self.op_idx.fill(0);
        self.advance_done.fill(0);
        self.block.fill(BlockReason::None);
        self.vector_busy_until.fill(0);
        self.noc_pj.fill(0.0);
        self.mg_busy_until.fill(0);
        self.mg_acc_ready.fill(0);
        self.chip_dispatched.fill(false);
        self.chip_ready.fill(0);
        self.chip_start_time.fill(0);
        self.chip_finish_time.fill(0);
        self.last_input_landed.fill(0);
        self.global_port_free.fill(0);
        for map in &mut self.barrier_release {
            map.clear();
        }
        for windows in &mut self.landing_windows {
            windows.clear();
        }
        self.transfer_dispatched.fill(false);
        self.channels.clear();
        self.incoming_remaining.fill(0);
        for transfer in &trace.transfers {
            self.incoming_remaining[transfer.to_chip as usize] += 1;
        }
        for (chip, started) in self.chip_started.iter_mut().enumerate() {
            *started = self.incoming_remaining[chip] == 0;
        }
        let noc_config = NocConfig {
            width: arch.chip().mesh.width,
            height: arch.chip().mesh.height,
            flit_bytes: arch.chip().noc_flit_bytes,
            hop_latency: arch.chip().noc_hop_latency,
            memory_port: arch.chip().memory_port,
        };
        self.meshes.clear();
        self.meshes.extend((0..trace.chip_count).map(|_| Mesh::new(noc_config)));
        let link = &arch.system.interconnect;
        self.fabric = InterChipFabric::new(cimflow_noc::InterChipConfig {
            chips: trace.chip_count as u32,
            link_bytes: link.link_bytes_per_cycle,
            link_latency: link.link_latency_cycles,
            ring: link.topology == cimflow_arch::InterChipTopology::Ring,
        });
        self.system_energy = EnergyBreakdown::new();
        self.executed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;

    #[test]
    fn recording_does_not_perturb_the_report() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized).unwrap();
        let plain = Simulator::new(&compiled).run().unwrap();
        let (trace, recorded) = Simulator::record(&compiled).unwrap();
        assert_eq!(plain, recorded);
        assert!(trace.op_count() > 0);
        assert!(trace.passes().fused_instructions > 0, "scalar runs fuse");
        assert!(
            (trace.op_count() as u64) < trace.instruction_count(),
            "the trace is denser than the dynamic stream"
        );
    }

    #[test]
    fn replay_of_the_recording_point_is_bit_exact() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::resnet18(32), &arch, Strategy::DpOptimized).unwrap();
        let (trace, baseline) = Simulator::record(&compiled).unwrap();
        let replayed = ReplayEngine::new(&trace).replay(&arch, SimOptions::default()).unwrap();
        assert_eq!(baseline, replayed);
    }

    #[test]
    fn replay_retimes_timing_only_points_bit_exactly() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let compiled = compile(&model, &base, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        for point in [base.with_frequency_mhz(500), base.with_memory_port(27)] {
            // The ground truth: a fresh compile + interpretation at the
            // point's own configuration.
            let recompiled = compile(&model, &point, Strategy::DpOptimized).unwrap();
            let interpreted = Simulator::new(&recompiled).run().unwrap();
            let replayed = engine.replay(&point, SimOptions::default()).unwrap();
            assert_eq!(interpreted, replayed);
        }
    }

    #[test]
    fn multichip_replay_matches_in_both_handoff_modes() {
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let model = models::vgg19(32);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        for handoff in [HandoffMode::TileStreaming, HandoffMode::AtRetirement] {
            let options = SimOptions { handoff, ..SimOptions::default() };
            let interpreted = Simulator::with_options(&compiled, options).run().unwrap();
            let replayed = engine.replay(&arch, options).unwrap();
            assert_eq!(interpreted, replayed, "handoff {handoff:?}");
        }
    }

    #[test]
    fn replay_refuses_incompatible_and_invalid_points() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        // Compile-affecting change: must recompile, not replay.
        let err =
            engine.replay(&arch.with_macros_per_group(16), SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::TraceMismatch { .. }), "{err}");
        // Invalid point (memory port outside the mesh): replay skips the
        // compiler's validation path, so it must validate itself.
        let err = engine.replay(&arch.with_memory_port(4096), SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::TraceMismatch { .. }), "{err}");
    }

    #[test]
    fn batch_replay_reuses_state_without_cross_talk() {
        let base = ArchConfig::paper_default();
        let compiled = compile(&models::resnet18(32), &base, Strategy::DpOptimized).unwrap();
        let (trace, baseline) = Simulator::record(&compiled).unwrap();
        let points = vec![
            (base, SimOptions::default()),
            (base.with_frequency_mhz(500), SimOptions::default()),
            (base.with_macros_per_group(16), SimOptions::default()), // incompatible
            (base, SimOptions::default()),
        ];
        let results = ReplayEngine::new(&trace).replay_batch(&points);
        assert_eq!(results.len(), 4);
        assert_eq!(*results[0].as_ref().unwrap(), baseline);
        assert!(results[1].is_ok());
        assert!(matches!(results[2], Err(SimError::TraceMismatch { .. })));
        assert_eq!(
            *results[3].as_ref().unwrap(),
            baseline,
            "a failed point must not poison the reused state"
        );
    }
}
