//! Batched timing-only replay of a recorded [`SimTrace`]: re-times the
//! invariant per-core op streams for many design points, producing
//! [`SimReport`]s bit-exact against the interpreter.
//!
//! Replay mirrors the interpreter's scheduler *exactly* — the same
//! smallest-local-time core pick, the same 4096-instruction scheduling
//! slices (fused [`TraceOp::Advance`] runs split at slice boundaries),
//! the same barrier-release, chip hand-off and streamed-tile rules —
//! because mesh contention, port queuing and channel arrival order all
//! depend on that interleaving. What it *skips* is everything the trace
//! already resolved: instruction fetch/decode, the register file, and
//! every energy term that does not depend on timing.
//!
//! # Lockstep lanes
//!
//! The fast path exploits a structural fact about trace replay: under an
//! agreed core-pick sequence, *all* op-consumption control flow is
//! identical across timing-only points. Whether a `Recv` finds a message,
//! which cores wait at a barrier, when a chip retires or starts, how a
//! fused advance splits at a slice boundary — all of it depends only on
//! op positions, block states and channel queue *lengths*, never on the
//! lane-local clock values. The one genuinely timing-dependent decision
//! is the scheduler's smallest-`now` core pick. [`ReplayEngine`] therefore
//! splits the state into a shared control block ([`ReplayCtl`]) and
//! K per-lane timing blocks ([`ReplayLane`]), walks the op stream
//! **once**, and updates every lane per op — amortizing op decode,
//! scheduling and channel bookkeeping across the batch. Each step the
//! pick is computed per lane from lane-local clocks; when lanes disagree,
//! the minority lanes are **peeled off with a cloned control block and
//! continue through the identical code path on their own** — the batch
//! splits, it never approximates. Two further exact reductions:
//!
//! * `frequency_mhz` never enters cycle-domain timing (it only scales the
//!   report's time/energy conversions), so points differing only in
//!   frequency share one lane and split at [`ReplayEngine::finish`].
//! * Channels are flat vectors indexed by a per-trace `(src, dst) → id`
//!   table built once in [`ReplayEngine::new`], and the scheduler scans a
//!   live-core list that shrinks as cores halt — both paths (scalar and
//!   lockstep) share the hash-free hot loop.
//!
//! Bit-exactness is the contract, not a goal: every lane's report must be
//! `==` to a scalar `replay()` of that point, which in turn is `==` to a
//! fresh compile + interpretation (`tests/lockstep_replay.rs` is the
//! property suite).

use std::collections::{HashMap, VecDeque};

use cimflow_arch::ArchConfig;
use cimflow_compiler::STREAM_TILE_BYTES;
use cimflow_energy::{EnergyBreakdown, EnergyModel};
use cimflow_noc::{InterChipFabric, Interconnect, Mesh, NocConfig, NocStats};

use crate::core::BlockReason;
use crate::engine::{HandoffMode, SimOptions, INSTRUCTION_BUDGET, MAX_STREAM_TILES, SLICE};
use crate::report::{SimReport, UnitActivity};
use crate::trace::{SimTrace, TraceOp};
use crate::SimError;

/// Lane width of one lockstep walk: how many *cycle-distinct* design
/// points share a single pass over the op stream. Tuned for the sweet
/// spot between decode amortization and peel cost — wider batches chunk
/// at this width.
pub const LOCKSTEP_LANES: usize = 8;

/// Marks ops without an associated channel in the per-trace channel table.
const NO_CHANNEL: u32 = u32::MAX;

/// Counters of one [`ReplayEngine::replay_batch_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockstepStats {
    /// Lockstep walks performed (chunks that ran with ≥ 2 lanes).
    pub batches: u64,
    /// Cycle-distinct lanes re-timed through those walks.
    pub lanes: u64,
    /// Lanes peeled off to scalar continuation on a schedule divergence.
    pub fallback_lanes: u64,
}

/// Re-times a recorded [`SimTrace`] for timing-only design points.
///
/// Every replayed point must share the trace's
/// [`compile_fingerprint`](ArchConfig::compile_fingerprint); replay
/// refuses incompatible or invalid configurations with
/// [`SimError::TraceMismatch`] rather than approximating. Profiling
/// ([`SimOptions::profile`]) is ignored — attach a tracer to a plain
/// [`Simulator`](crate::Simulator) run for timelines.
///
/// # Example
///
/// ```no_run
/// # use cimflow_sim::{ReplayEngine, Simulator};
/// # use cimflow_arch::ArchConfig;
/// # fn demo(compiled: &cimflow_compiler::CompiledProgram) {
/// let (trace, baseline) = Simulator::record(compiled).unwrap();
/// let engine = ReplayEngine::new(&trace);
/// let slow = engine.replay(&compiled.arch.with_frequency_mhz(500), Default::default());
/// # }
/// ```
#[derive(Debug)]
pub struct ReplayEngine<'a> {
    trace: &'a SimTrace,
    /// Number of distinct (sender, receiver) channels in the trace.
    channel_count: usize,
    /// Per core, aligned with its op stream: the flat channel id of a
    /// pushing [`TraceOp::Send`] / [`TraceOp::Recv`] op ([`NO_CHANNEL`]
    /// elsewhere). Built once so the replay hot loop never hashes.
    op_channel: Vec<Vec<u32>>,
}

/// One lane with the indices of the batch points it answers (points
/// differing only in clock frequency share a lane).
struct LaneRun {
    lane: ReplayLane,
    points: Vec<usize>,
}

/// Outcome of one scheduler pick across all lanes.
enum Pick {
    /// Every lane picks the same core (or none is runnable — runnability
    /// is shared control state, so "no pick" is always unanimous).
    Agreed(Option<usize>),
    /// Lanes disagree; the per-lane picks, aligned with the runs.
    Diverged(Vec<usize>),
}

impl<'a> ReplayEngine<'a> {
    /// Creates a replay engine over one recorded trace, resolving every
    /// channel-touching op to a flat channel id up front.
    pub fn new(trace: &'a SimTrace) -> Self {
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut op_channel = Vec::with_capacity(trace.ops.len());
        for (index, stream) in trace.ops.iter().enumerate() {
            let chip_base = (index / trace.cores_per_chip * trace.cores_per_chip) as u32;
            let mut resolved = vec![NO_CHANNEL; stream.len()];
            for (k, op) in stream.iter().enumerate() {
                let pair = match *op {
                    TraceOp::Send { dst, push: true, .. } => (index as u32, chip_base + dst),
                    TraceOp::Recv { src, .. } => (chip_base + src, index as u32),
                    _ => continue,
                };
                let next = ids.len() as u32;
                resolved[k] = *ids.entry(pair).or_insert(next);
            }
            op_channel.push(resolved);
        }
        ReplayEngine { trace, channel_count: ids.len(), op_channel }
    }

    /// The trace being replayed.
    pub fn trace(&self) -> &SimTrace {
        self.trace
    }

    /// Re-times the trace for one design point.
    ///
    /// # Errors
    ///
    /// [`SimError::TraceMismatch`] when `arch` fails validation or its
    /// compile fingerprint differs from the trace's; the interpreter's
    /// error conditions ([`SimError::Deadlock`],
    /// [`SimError::CycleLimitExceeded`]) are mirrored too, though a
    /// successfully recorded trace cannot reach them.
    pub fn replay(&self, arch: &ArchConfig, options: SimOptions) -> Result<SimReport, SimError> {
        self.replay_batch(&[(*arch, options)]).pop().expect("one point, one result")
    }

    /// Re-times the trace for a batch of design points, automatically
    /// choosing the lockstep walk for ≥ 2 compatible points (chunked at
    /// [`LOCKSTEP_LANES`] cycle-distinct lanes). Each point gets its own
    /// result so a single incompatible configuration does not poison the
    /// batch. Results are bit-exact against per-point [`Self::replay`].
    pub fn replay_batch(
        &self,
        points: &[(ArchConfig, SimOptions)],
    ) -> Vec<Result<SimReport, SimError>> {
        self.replay_batch_stats(points).0
    }

    /// [`Self::replay_batch`] returning the lockstep counters alongside
    /// the per-point results.
    pub fn replay_batch_stats(
        &self,
        points: &[(ArchConfig, SimOptions)],
    ) -> (Vec<Result<SimReport, SimError>>, LockstepStats) {
        let mut stats = LockstepStats::default();
        let mut out: Vec<Option<Result<SimReport, SimError>>> =
            points.iter().map(|_| None).collect();
        // Group valid points into cycle-distinct lanes: frequency never
        // enters cycle-domain timing, so it is normalized away; the
        // hand-off mode steers shared control flow, so lanes only share a
        // walk with like-moded lanes.
        let recorded_mhz = self.trace.arch.chip().frequency_mhz;
        struct LaneGroup {
            arch: ArchConfig,
            handoff: HandoffMode,
            points: Vec<usize>,
        }
        let mut groups: Vec<LaneGroup> = Vec::new();
        for (i, (arch, options)) in points.iter().enumerate() {
            if let Err(e) = self.check_point(arch) {
                out[i] = Some(Err(e));
                continue;
            }
            let norm = arch.with_frequency_mhz(recorded_mhz);
            match groups.iter_mut().find(|g| g.handoff == options.handoff && g.arch == norm) {
                Some(group) => group.points.push(i),
                None => {
                    groups.push(LaneGroup { arch: norm, handoff: options.handoff, points: vec![i] })
                }
            }
        }
        // Chunk runs of like-moded lanes at the tuned width and walk each
        // chunk once (a single-lane chunk is exactly the scalar path —
        // same code, one lane).
        let mut start = 0;
        while start < groups.len() {
            let handoff = groups[start].handoff;
            let mut end = start + 1;
            while end < groups.len()
                && end - start < LOCKSTEP_LANES
                && groups[end].handoff == handoff
            {
                end += 1;
            }
            let runs: Vec<LaneRun> = groups[start..end]
                .iter()
                .map(|g| LaneRun {
                    lane: ReplayLane::new(self.trace, &g.arch, self.channel_count),
                    points: g.points.clone(),
                })
                .collect();
            if runs.len() >= 2 {
                stats.batches += 1;
                stats.lanes += runs.len() as u64;
            }
            let options = SimOptions { handoff, profile: false };
            let mut ctl = ReplayCtl::new(self.trace, self.channel_count);
            self.run_group(&mut ctl, runs, options, &mut stats, &mut out, points);
            start = end;
        }
        (out.into_iter().map(|slot| slot.expect("every point resolved")).collect(), stats)
    }

    /// Validation shared by every entry point: the arch must be valid and
    /// compile-identical to the recording.
    fn check_point(&self, arch: &ArchConfig) -> Result<(), SimError> {
        if let Err(error) = arch.validate() {
            return Err(SimError::TraceMismatch { detail: error.to_string() });
        }
        if !self.trace.is_compatible(arch) {
            return Err(SimError::TraceMismatch {
                detail: format!(
                    "compile fingerprint {:#018x} differs from the trace's {:#018x} \
                     (a compile-affecting field changed; recompile instead of replaying)",
                    arch.compile_fingerprint(),
                    self.trace.fingerprint
                ),
            });
        }
        Ok(())
    }

    /// The interpreter's top-level loop over trace ops, for 1..=K lanes.
    /// Writes one result per member point into `out`; lanes whose pick
    /// diverges recurse with a cloned control block (strictly fewer lanes
    /// per level, so the recursion is bounded by the chunk width).
    fn run_group(
        &self,
        ctl: &mut ReplayCtl,
        mut runs: Vec<LaneRun>,
        options: SimOptions,
        stats: &mut LockstepStats,
        out: &mut [Option<Result<SimReport, SimError>>],
        points: &[(ArchConfig, SimOptions)],
    ) {
        let energy = EnergyModel::calibrated_28nm();
        let mut runnable: Vec<usize> = Vec::new();
        loop {
            self.retire_finished_chips(ctl, &mut runs, &energy);
            // The live list holds every non-halted core, so an empty list
            // is exactly the interpreter's all-halted exit.
            if ctl.live.is_empty() {
                break;
            }
            match self.pick_core(ctl, &runs, &mut runnable) {
                Pick::Agreed(Some(core)) => self.run_slice(ctl, &mut runs, core, &energy),
                Pick::Agreed(None) => {
                    if self.release_barriers(ctl, &mut runs, &energy, options) {
                        continue;
                    }
                    let err = self.deadlock(ctl);
                    Self::fail_all(&runs, &err, out);
                    return;
                }
                Pick::Diverged(picks) => {
                    runs = self.peel_divergent(ctl, runs, picks, options, stats, out, points);
                    continue;
                }
            }
            if ctl.executed > INSTRUCTION_BUDGET {
                let err = SimError::CycleLimitExceeded { limit: INSTRUCTION_BUDGET };
                Self::fail_all(&runs, &err, out);
                return;
            }
        }
        for run in &runs {
            for &p in &run.points {
                out[p] = Some(Ok(self.finish(ctl, &run.lane, &points[p].0)));
            }
        }
    }

    fn fail_all(runs: &[LaneRun], err: &SimError, out: &mut [Option<Result<SimReport, SimError>>]) {
        for run in runs {
            for &p in &run.points {
                out[p] = Some(Err(err.clone()));
            }
        }
    }

    /// Splits the batch on a schedule divergence: lanes sharing the
    /// plurality pick continue the lockstep walk, every other lane
    /// continues mid-trace on a cloned control block — the exact state it
    /// would have reached running alone, so the fallback never
    /// approximates.
    #[allow(clippy::too_many_arguments)]
    fn peel_divergent(
        &self,
        ctl: &ReplayCtl,
        runs: Vec<LaneRun>,
        picks: Vec<usize>,
        options: SimOptions,
        stats: &mut LockstepStats,
        out: &mut [Option<Result<SimReport, SimError>>],
        points: &[(ArchConfig, SimOptions)],
    ) -> Vec<LaneRun> {
        // Plurality pick; ties resolve to the earliest lane's pick so the
        // split is deterministic.
        let mut counts: Vec<(usize, usize)> = Vec::new();
        for &p in &picks {
            match counts.iter_mut().find(|(pick, _)| *pick == p) {
                Some((_, n)) => *n += 1,
                None => counts.push((p, 1)),
            }
        }
        let keep_pick =
            counts.iter().max_by_key(|(_, n)| *n).map(|(p, _)| *p).expect("non-empty picks");
        let mut kept = Vec::with_capacity(runs.len());
        let mut peeled: Vec<(usize, Vec<LaneRun>)> = Vec::new();
        for (run, pick) in runs.into_iter().zip(picks) {
            if pick == keep_pick {
                kept.push(run);
            } else {
                match peeled.iter_mut().find(|(p, _)| *p == pick) {
                    Some((_, group)) => group.push(run),
                    None => peeled.push((pick, vec![run])),
                }
            }
        }
        for (_, group) in peeled {
            stats.fallback_lanes += group.len() as u64;
            let mut sub = ctl.clone();
            self.run_group(&mut sub, group, options, stats, out, points);
        }
        kept
    }

    /// Mirror of the interpreter's smallest-local-time runnable pick.
    /// Runnability (block state, chip start, channel occupancy) is shared
    /// control state; only the arg-min over lane clocks can differ.
    fn pick_core(&self, ctl: &ReplayCtl, runs: &[LaneRun], runnable: &mut Vec<usize>) -> Pick {
        runnable.clear();
        for &i in &ctl.live {
            if !ctl.chip_started[i / self.trace.cores_per_chip] {
                continue;
            }
            let ok = match ctl.block[i] {
                BlockReason::None => true,
                BlockReason::Recv { .. } => ctl.channel_len[ctl.recv_wait[i] as usize] > 0,
                _ => false,
            };
            if ok {
                runnable.push(i);
            }
        }
        if runnable.is_empty() {
            return Pick::Agreed(None);
        }
        // Keep-the-earlier-core tie-break: a later core wins only with a
        // strictly smaller clock (`runnable` is ascending by construction
        // — the live list shrinks in order).
        let pick_for = |lane: &ReplayLane| {
            let mut best = runnable[0];
            for &i in &runnable[1..] {
                if lane.now[i] < lane.now[best] {
                    best = i;
                }
            }
            best
        };
        let first = pick_for(&runs[0].lane);
        let mut picks: Option<Vec<usize>> = None;
        for (k, run) in runs.iter().enumerate().skip(1) {
            let pick = pick_for(&run.lane);
            if pick != first && picks.is_none() {
                picks = Some(vec![first; k]);
            }
            if let Some(all) = &mut picks {
                all.push(pick);
            }
        }
        match picks {
            None => Pick::Agreed(Some(first)),
            Some(all) => Pick::Diverged(all),
        }
    }

    /// Executes up to [`SLICE`] *instructions* (not ops: a fused advance
    /// run splits at the boundary) on one core, across every lane.
    fn run_slice(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        index: usize,
        energy: &EnergyModel,
    ) {
        ctl.block[index] = BlockReason::None;
        let mut budget = SLICE;
        while budget > 0 {
            if ctl.block[index] != BlockReason::None {
                break;
            }
            budget -= self.step(ctl, runs, index, budget, energy);
        }
    }

    /// Marks a core permanently halted: block state, live list (ordered
    /// removal keeps the pick scan ascending) and the per-chip count.
    fn halt_core(&self, ctl: &mut ReplayCtl, index: usize) {
        ctl.block[index] = BlockReason::Halted;
        if let Ok(pos) = ctl.live.binary_search(&index) {
            ctl.live.remove(pos);
        }
        ctl.chip_halted[index / self.trace.cores_per_chip] += 1;
    }

    /// Consumes (part of) the core's next trace op on every lane; returns
    /// the number of slice-budget instructions it accounted for (≥ 1).
    /// Decode, op-stream bookkeeping and channel occupancy happen once;
    /// only the clock/scoreboard/mesh arithmetic repeats per lane.
    fn step(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        index: usize,
        budget: u64,
        energy: &EnergyModel,
    ) -> u64 {
        let trace = self.trace;
        let Some(&op) = trace.ops[index].get(ctl.op_idx[index]) else {
            // Structurally unreachable (every stream ends in `Halt`),
            // but degrade to a halt rather than walking off the end.
            self.halt_core(ctl, index);
            return 1;
        };
        let chip = index / trace.cores_per_chip;
        let core_id = (index % trace.cores_per_chip) as u32;
        match op {
            TraceOp::Advance { insts, penalty } => {
                let done = ctl.advance_done[index];
                let remaining = u64::from(insts - done);
                let take = remaining.min(budget);
                for run in runs.iter_mut() {
                    run.lane.now[index] += take;
                    if take == remaining && penalty {
                        run.lane.now[index] += 2;
                    }
                }
                if take == remaining {
                    ctl.advance_done[index] = 0;
                    ctl.op_idx[index] += 1;
                } else {
                    ctl.advance_done[index] = done + take as u32;
                }
                ctl.executed += take;
                take
            }
            TraceOp::CimMvm { mg, issue, latency } => {
                let slot = index * trace.macro_groups + mg as usize;
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let begin = lane.now[index].max(lane.mg_busy_until[slot]);
                    lane.mg_busy_until[slot] = begin + issue;
                    lane.mg_acc_ready[slot] = begin + latency;
                    lane.now[index] += 1;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::CimLoad { mg, cycles } => {
                let slot = index * trace.macro_groups + mg as usize;
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let begin = lane.now[index].max(lane.mg_busy_until[slot]);
                    lane.mg_busy_until[slot] = begin + cycles;
                    lane.mg_acc_ready[slot] = begin + cycles;
                    lane.now[index] += 1;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::CimStoreAcc { mg } => {
                let slot = index * trace.macro_groups + mg as usize;
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    lane.now[index] = lane.now[index].max(lane.mg_acc_ready[slot]) + 1;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::Vector { cycles } => {
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let begin = lane.now[index].max(lane.vector_busy_until[index]);
                    lane.vector_busy_until[index] = begin + cycles;
                    lane.now[index] += 1;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::LocalCpy { cycles } => {
                for run in runs.iter_mut() {
                    run.lane.now[index] += cycles;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::GlobalCpy { bytes, from_memory, port_cycles } => {
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let now = lane.now[index];
                    let mesh = &mut lane.meshes[chip];
                    let outcome = if from_memory {
                        mesh.transfer_from_memory(core_id, bytes, now)
                    } else {
                        mesh.transfer_to_memory(core_id, bytes, now)
                    };
                    let port_start = outcome.arrival.max(lane.global_port_free[chip]);
                    let completion = port_start + port_cycles;
                    lane.global_port_free[chip] = completion;
                    lane.now[index] = completion;
                    lane.noc_pj[index] += energy.noc.transfer_pj(
                        outcome.flits,
                        lane.arch.chip().noc_flit_bytes,
                        outcome.hops.max(1),
                    );
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::Send { dst, bytes, push } => {
                let cid = self.op_channel[index][ctl.op_idx[index]];
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let now = lane.now[index];
                    let outcome = lane.meshes[chip].transfer(core_id, dst, bytes, now);
                    if push {
                        lane.channels[cid as usize].push_back(outcome.arrival);
                    }
                    lane.now[index] += 1;
                    lane.noc_pj[index] += energy.noc.transfer_pj(
                        outcome.flits,
                        lane.arch.chip().noc_flit_bytes,
                        outcome.hops.max(1),
                    );
                }
                if push {
                    ctl.channel_len[cid as usize] += 1;
                }
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::Recv { src, local_cycles } => {
                let cid = self.op_channel[index][ctl.op_idx[index]];
                if ctl.channel_len[cid as usize] > 0 {
                    ctl.channel_len[cid as usize] -= 1;
                    for run in runs.iter_mut() {
                        let lane = &mut run.lane;
                        let arrival = lane.channels[cid as usize]
                            .pop_front()
                            .expect("channel occupancy is lane-invariant");
                        lane.now[index] = lane.now[index].max(arrival) + local_cycles;
                    }
                    ctl.op_idx[index] += 1;
                    ctl.executed += 1;
                    1
                } else {
                    // Stay at this op until a message arrives.
                    let src_global = (chip * trace.cores_per_chip) as u32 + src;
                    ctl.block[index] = BlockReason::Recv { src: src_global };
                    ctl.recv_wait[index] = cid;
                    1
                }
            }
            TraceOp::Barrier { id } => {
                for run in runs.iter_mut() {
                    run.lane.now[index] += 1;
                }
                ctl.block[index] = BlockReason::Barrier { id };
                ctl.op_idx[index] += 1;
                ctl.executed += 1;
                1
            }
            TraceOp::Halt { counted } => {
                self.halt_core(ctl, index);
                if counted {
                    ctl.executed += 1;
                }
                1
            }
        }
    }

    /// Mirror of the interpreter's finished-chip hand-off pass. Which
    /// chips retire and which transfers dispatch is shared control state;
    /// the fabric/port/landing arithmetic repeats per lane.
    fn retire_finished_chips(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        energy: &EnergyModel,
    ) {
        let trace = self.trace;
        if trace.chip_count == 1 {
            return;
        }
        for chip in 0..trace.chip_count {
            if !ctl.chip_started[chip]
                || ctl.chip_dispatched[chip]
                || ctl.chip_halted[chip] != trace.cores_per_chip
            {
                continue;
            }
            ctl.chip_dispatched[chip] = true;
            let cores = chip * trace.cores_per_chip..(chip + 1) * trace.cores_per_chip;
            for run in runs.iter_mut() {
                let lane = &mut run.lane;
                let cores_done = cores.clone().map(|g| lane.now[g]).max().unwrap_or(0);
                lane.chip_finish_time[chip] = cores_done.max(lane.last_input_landed[chip]);
            }
            for k in 0..trace.chip_transfers[chip].len() {
                let tindex = trace.chip_transfers[chip][k];
                if ctl.transfer_dispatched[tindex] {
                    continue;
                }
                ctl.transfer_dispatched[tindex] = true;
                let transfer = trace.transfers[tindex];
                let to = transfer.to_chip as usize;
                for run in runs.iter_mut() {
                    let lane = &mut run.lane;
                    let finish = lane.chip_finish_time[chip];
                    let outcome = lane.fabric.transfer(
                        transfer.from_chip,
                        transfer.to_chip,
                        transfer.bytes,
                        finish,
                    );
                    let port_start = outcome.arrival.max(lane.global_port_free[to]);
                    let landed =
                        port_start + lane.arch.chip().global_memory.transfer_cycles(transfer.bytes);
                    lane.global_port_free[to] = landed;
                    lane.landing_windows[to].push((port_start, landed));
                    lane.system_energy.interchip_pj +=
                        energy.interchip.transfer_pj(transfer.bytes, outcome.hops);
                    lane.system_energy.global_memory_pj += energy.sram.global_pj(transfer.bytes);
                    lane.chip_ready[to] = lane.chip_ready[to].max(landed);
                    lane.last_input_landed[to] = lane.last_input_landed[to].max(landed);
                }
                ctl.incoming_remaining[to] -= 1;
            }
        }
        self.start_ready_chips(ctl, runs);
    }

    /// Mirror of the interpreter's chip-start gate.
    fn start_ready_chips(&self, ctl: &mut ReplayCtl, runs: &mut [LaneRun]) {
        for chip in 0..self.trace.chip_count {
            if ctl.chip_started[chip] || ctl.incoming_remaining[chip] != 0 {
                continue;
            }
            ctl.chip_started[chip] = true;
            for run in runs.iter_mut() {
                let lane = &mut run.lane;
                lane.chip_start_time[chip] = lane.chip_ready[chip];
                for g in chip * self.trace.cores_per_chip..(chip + 1) * self.trace.cores_per_chip {
                    lane.now[g] = lane.chip_ready[chip];
                }
            }
        }
    }

    /// Mirror of the interpreter's per-stage streamed hand-off. `ends`
    /// holds each lane's barrier-release time, aligned with `runs`.
    fn stream_stage_transfers(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        energy: &EnergyModel,
        chip: usize,
        ordinal: usize,
        ends: &[u64],
    ) {
        let trace = self.trace;
        if trace.chip_count == 1 {
            return;
        }
        for k in 0..trace.chip_transfers[chip].len() {
            let tindex = trace.chip_transfers[chip][k];
            if ctl.transfer_dispatched[tindex] || trace.transfers[tindex].stage != Some(ordinal) {
                continue;
            }
            ctl.transfer_dispatched[tindex] = true;
            let to = trace.transfers[tindex].to_chip as usize;
            for (run, &end) in runs.iter_mut().zip(ends) {
                let lane = &mut run.lane;
                let window_start = lane.barrier_release[chip]
                    .get(&((ordinal * 2) as u16))
                    .copied()
                    .unwrap_or(lane.chip_start_time[chip])
                    .min(end);
                Self::dispatch_streamed(lane, energy, tindex, self.trace, window_start, end);
            }
            ctl.incoming_remaining[to] -= 1;
        }
        self.start_ready_chips(ctl, runs);
    }

    /// Mirror of the interpreter's tile-granular dispatch (pure lane-local
    /// arithmetic — the caller owns the shared dispatch bookkeeping).
    fn dispatch_streamed(
        lane: &mut ReplayLane,
        energy: &EnergyModel,
        tindex: usize,
        trace: &SimTrace,
        start: u64,
        end: u64,
    ) {
        let transfer = trace.transfers[tindex];
        let to = transfer.to_chip as usize;
        let tile = STREAM_TILE_BYTES.max(transfer.bytes.div_ceil(MAX_STREAM_TILES));
        let tiles = transfer.bytes.div_ceil(tile).max(1);
        let span = end.saturating_sub(start);
        let mut remaining = transfer.bytes;
        let mut first_landed = end;
        let mut last_landed = end;
        for i in 0..tiles {
            let size = remaining.min(tile);
            remaining -= size;
            let available = start + (span * (i + 1)) / tiles;
            let outcome =
                lane.fabric.transfer(transfer.from_chip, transfer.to_chip, size, available);
            let port_start = outcome.arrival.max(lane.global_port_free[to]);
            let landed = port_start + lane.arch.chip().global_memory.transfer_cycles(size);
            lane.global_port_free[to] = landed;
            lane.landing_windows[to].push((port_start, landed));
            lane.system_energy.interchip_pj += energy.interchip.transfer_pj(size, outcome.hops);
            lane.system_energy.global_memory_pj += energy.sram.global_pj(size);
            if i == 0 {
                first_landed = landed;
            }
            last_landed = landed;
        }
        lane.chip_ready[to] = lane.chip_ready[to].max(first_landed);
        lane.last_input_landed[to] = lane.last_input_landed[to].max(last_landed);
    }

    /// Mirror of the interpreter's barrier-release sweep.
    fn release_barriers(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        energy: &EnergyModel,
        options: SimOptions,
    ) -> bool {
        let mut released = false;
        for chip in 0..self.trace.chip_count {
            if ctl.chip_started[chip] {
                released |= self.release_barrier(ctl, runs, energy, options, chip);
            }
        }
        released
    }

    /// Mirror of the interpreter's per-chip barrier release. Membership
    /// and release order are shared control state; the release *times*
    /// are per lane.
    fn release_barrier(
        &self,
        ctl: &mut ReplayCtl,
        runs: &mut [LaneRun],
        energy: &EnergyModel,
        options: SimOptions,
        chip: usize,
    ) -> bool {
        let cores = chip * self.trace.cores_per_chip..(chip + 1) * self.trace.cores_per_chip;
        let mut waiting: Vec<(usize, u16)> = Vec::new();
        for i in cores.clone() {
            match ctl.block[i] {
                BlockReason::Barrier { id } => waiting.push((i, id)),
                BlockReason::Halted => {}
                _ => return false,
            }
        }
        if waiting.is_empty() {
            return false;
        }
        let min_id = waiting.iter().map(|(_, id)| *id).min().expect("non-empty");
        let members: Vec<usize> =
            waiting.iter().filter(|(_, id)| *id == min_id).map(|(i, _)| *i).collect();
        let halted = cores.filter(|i| ctl.block[*i] == BlockReason::Halted).count();
        if members.len() + halted != self.trace.cores_per_chip {
            return false;
        }
        let releases: Vec<u64> = runs
            .iter()
            .map(|run| members.iter().map(|i| run.lane.now[*i]).max().unwrap_or(0) + 1)
            .collect();
        for (run, &release) in runs.iter_mut().zip(&releases) {
            for &i in &members {
                run.lane.now[i] = release;
            }
            run.lane.barrier_release[chip].insert(min_id, release);
        }
        for &i in &members {
            ctl.block[i] = BlockReason::None;
        }
        if min_id % 2 == 1 {
            let ordinal = (min_id as usize - 1) / 2;
            if options.handoff == HandoffMode::TileStreaming {
                self.stream_stage_transfers(ctl, runs, energy, chip, ordinal, &releases);
            }
        }
        true
    }

    fn deadlock(&self, ctl: &ReplayCtl) -> SimError {
        let mut recv = Vec::new();
        let mut barrier = Vec::new();
        for (i, block) in ctl.block.iter().enumerate() {
            match block {
                BlockReason::Recv { .. } => recv.push(i as u32),
                BlockReason::Barrier { .. } => barrier.push(i as u32),
                _ => {}
            }
        }
        SimError::Deadlock { blocked_on_recv: recv, blocked_on_barrier: barrier }
    }

    /// Mirror of the interpreter's report assembly, substituting the
    /// recorded invariants where timing cannot reach. Called once per
    /// *point* with the point's own arch — lanes deduplicate frequency,
    /// so this is where frequency-dependent terms (static energy, the
    /// cycle↔time conversion constants) split back out.
    fn finish(&self, ctl: &ReplayCtl, lane: &ReplayLane, arch: &ArchConfig) -> SimReport {
        let trace = self.trace;
        let energy_model = EnergyModel::calibrated_28nm();
        let total_cycles = lane
            .now
            .iter()
            .copied()
            .chain(lane.last_input_landed.iter().copied())
            .chain(lane.chip_finish_time.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        let mut energy = EnergyBreakdown::new();
        for (i, inv) in trace.core_invariants.iter().enumerate() {
            let core_energy = EnergyBreakdown {
                compute_pj: inv.compute_pj,
                local_memory_pj: inv.local_memory_pj,
                noc_pj: lane.noc_pj[i],
                global_memory_pj: inv.global_memory_pj,
                control_pj: inv.control_pj,
                ..EnergyBreakdown::new()
            };
            energy.accumulate(&core_energy);
        }
        energy.accumulate(&lane.system_energy);
        energy.accumulate(&energy_model.static_energy(arch, total_cycles));

        let mg_per_core = arch.core.cim_unit.macro_groups.max(1) as f64;
        let core_utilization: Vec<f64> = trace
            .core_invariants
            .iter()
            .map(|inv| (inv.mg_busy_cycles as f64 / mg_per_core / total_cycles as f64).min(1.0))
            .collect();
        let cim_busy: u64 = trace.core_invariants.iter().map(|inv| inv.mg_busy_cycles).sum();
        let vector_busy: u64 = trace.core_invariants.iter().map(|inv| inv.vector_busy_cycles).sum();

        let chip_finish: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                if ctl.chip_dispatched[chip] {
                    lane.chip_finish_time[chip]
                } else {
                    (chip * trace.cores_per_chip..(chip + 1) * trace.cores_per_chip)
                        .map(|g| lane.now[g])
                        .max()
                        .unwrap_or(0)
                        .max(lane.last_input_landed[chip])
                }
            })
            .collect();
        let chip_cycles: Vec<u64> = chip_finish
            .iter()
            .zip(&lane.chip_start_time)
            .map(|(finish, start)| finish.saturating_sub(*start))
            .collect();
        let chip_stall_cycles: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                let (start, finish) = (lane.chip_start_time[chip], chip_finish[chip]);
                lane.landing_windows[chip]
                    .iter()
                    .map(|(from, to)| to.min(&finish).saturating_sub(*from.max(&start)))
                    .sum()
            })
            .collect();
        let chip_overlap_cycles: Vec<u64> = (0..trace.chip_count)
            .map(|chip| {
                lane.last_input_landed[chip]
                    .min(chip_finish[chip])
                    .saturating_sub(lane.chip_start_time[chip])
            })
            .collect();

        let mut noc = NocStats::default();
        for mesh in &lane.meshes {
            noc.merge(mesh.stats());
        }

        let mut report = SimReport {
            total_cycles,
            energy,
            dynamic_instructions: trace.dynamic_instructions.clone(),
            cim_activity: UnitActivity { busy_cycles: cim_busy, operations: trace.cim_ops },
            vector_activity: UnitActivity {
                busy_cycles: vector_busy,
                operations: trace.vector_ops,
            },
            noc,
            interchip: lane.fabric.stats().clone(),
            core_utilization,
            chip_cycles,
            chip_stall_cycles,
            chip_overlap_cycles,
            total_macs: trace.total_macs,
            frequency_mhz: 0,
            chip_count: 0,
        };
        report.attach_arch(arch);
        report
    }
}

/// Shared control state of one lockstep walk: everything whose evolution
/// is provably identical across lanes as long as their core picks agree —
/// op positions, block states, chip/transfer dispatch flags, channel
/// queue *lengths*, the slice budget. Cloned (cheaply — flat vectors of
/// primitives) when a divergent lane peels off mid-trace.
#[derive(Debug, Clone)]
struct ReplayCtl {
    /// Per core: next op in its stream.
    op_idx: Vec<usize>,
    /// Per core: instructions consumed of a partially-split advance run.
    advance_done: Vec<u32>,
    /// Per core: scheduler block state.
    block: Vec<BlockReason>,
    /// Per core: flat channel id of the blocking `Recv` (valid only while
    /// `block` is [`BlockReason::Recv`]) — the pick scan probes channel
    /// occupancy without hashing.
    recv_wait: Vec<u32>,
    /// Non-halted cores, ascending (the pick scan's tie-break order).
    live: Vec<usize>,
    /// Per channel: queue length (the arrival *values* are lane-local).
    channel_len: Vec<usize>,
    /// Per chip: hand-off bookkeeping (mirrors the interpreter's).
    chip_started: Vec<bool>,
    chip_dispatched: Vec<bool>,
    chip_halted: Vec<usize>,
    incoming_remaining: Vec<usize>,
    transfer_dispatched: Vec<bool>,
    executed: u64,
}

impl ReplayCtl {
    fn new(trace: &SimTrace, channel_count: usize) -> Self {
        let cores = trace.ops.len();
        let chips = trace.chip_count;
        let mut incoming_remaining = vec![0usize; chips];
        for transfer in &trace.transfers {
            incoming_remaining[transfer.to_chip as usize] += 1;
        }
        let chip_started: Vec<bool> =
            incoming_remaining.iter().map(|remaining| *remaining == 0).collect();
        ReplayCtl {
            op_idx: vec![0; cores],
            advance_done: vec![0; cores],
            block: vec![BlockReason::None; cores],
            recv_wait: vec![NO_CHANNEL; cores],
            live: (0..cores).collect(),
            channel_len: vec![0; channel_count],
            chip_started,
            chip_dispatched: vec![false; chips],
            chip_halted: vec![0; chips],
            incoming_remaining,
            transfer_dispatched: vec![false; trace.transfers.len()],
            executed: 0,
        }
    }
}

/// Per-lane timing state: the clocks, scoreboards, port cursors, meshes,
/// fabric and energy accumulators of one cycle-distinct design point.
/// The structure-of-arrays layout across lanes is a `Vec` of these —
/// each op updates every lane's block while the decode happens once.
#[derive(Debug)]
struct ReplayLane {
    /// The lane's (frequency-normalized) architecture — every
    /// cycle-domain constant the walk reads comes from here.
    arch: ArchConfig,
    /// Per core: local clock.
    now: Vec<u64>,
    /// Per core: vector-unit busy-until.
    vector_busy_until: Vec<u64>,
    /// Per core: point-dependent NoC energy (routing distance varies
    /// with the memory-port placement).
    noc_pj: Vec<f64>,
    /// Core-major flattened macro-group busy-until scoreboard.
    mg_busy_until: Vec<u64>,
    /// Core-major flattened accumulator-ready scoreboard.
    mg_acc_ready: Vec<u64>,
    /// Per chip: hand-off times (the shared flags live on the ctl).
    chip_ready: Vec<u64>,
    chip_start_time: Vec<u64>,
    chip_finish_time: Vec<u64>,
    last_input_landed: Vec<u64>,
    /// Per chip: the shared global-memory port's free time (used both by
    /// `GlobalCpy` ops and by landing cut activations — one port).
    global_port_free: Vec<u64>,
    barrier_release: Vec<HashMap<u16, u64>>,
    landing_windows: Vec<Vec<(u64, u64)>>,
    /// Per channel: in-flight arrival cycles (lengths are shared; byte
    /// counts are invariant and pre-resolved into the receiving op).
    channels: Vec<VecDeque<u64>>,
    meshes: Vec<Mesh>,
    fabric: InterChipFabric,
    system_energy: EnergyBreakdown,
}

impl ReplayLane {
    fn new(trace: &SimTrace, arch: &ArchConfig, channel_count: usize) -> Self {
        let cores = trace.ops.len();
        let chips = trace.chip_count;
        let noc_config = NocConfig {
            width: arch.chip().mesh.width,
            height: arch.chip().mesh.height,
            flit_bytes: arch.chip().noc_flit_bytes,
            hop_latency: arch.chip().noc_hop_latency,
            memory_port: arch.chip().memory_port,
        };
        let link = &arch.system.interconnect;
        ReplayLane {
            arch: *arch,
            now: vec![0; cores],
            vector_busy_until: vec![0; cores],
            noc_pj: vec![0.0; cores],
            mg_busy_until: vec![0; cores * trace.macro_groups],
            mg_acc_ready: vec![0; cores * trace.macro_groups],
            chip_ready: vec![0; chips],
            chip_start_time: vec![0; chips],
            chip_finish_time: vec![0; chips],
            last_input_landed: vec![0; chips],
            global_port_free: vec![0; chips],
            barrier_release: vec![HashMap::new(); chips],
            landing_windows: vec![Vec::new(); chips],
            channels: vec![VecDeque::new(); channel_count],
            meshes: (0..chips).map(|_| Mesh::new(noc_config)).collect(),
            fabric: InterChipFabric::new(cimflow_noc::InterChipConfig {
                chips: chips as u32,
                link_bytes: link.link_bytes_per_cycle,
                link_latency: link.link_latency_cycles,
                ring: link.topology == cimflow_arch::InterChipTopology::Ring,
            }),
            system_energy: EnergyBreakdown::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;

    #[test]
    fn recording_does_not_perturb_the_report() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized).unwrap();
        let plain = Simulator::new(&compiled).run().unwrap();
        let (trace, recorded) = Simulator::record(&compiled).unwrap();
        assert_eq!(plain, recorded);
        assert!(trace.op_count() > 0);
        assert!(trace.passes().fused_instructions > 0, "scalar runs fuse");
        assert!(
            (trace.op_count() as u64) < trace.instruction_count(),
            "the trace is denser than the dynamic stream"
        );
    }

    #[test]
    fn replay_of_the_recording_point_is_bit_exact() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::resnet18(32), &arch, Strategy::DpOptimized).unwrap();
        let (trace, baseline) = Simulator::record(&compiled).unwrap();
        let replayed = ReplayEngine::new(&trace).replay(&arch, SimOptions::default()).unwrap();
        assert_eq!(baseline, replayed);
    }

    #[test]
    fn replay_retimes_timing_only_points_bit_exactly() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let compiled = compile(&model, &base, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        for point in [base.with_frequency_mhz(500), base.with_memory_port(27)] {
            // The ground truth: a fresh compile + interpretation at the
            // point's own configuration.
            let recompiled = compile(&model, &point, Strategy::DpOptimized).unwrap();
            let interpreted = Simulator::new(&recompiled).run().unwrap();
            let replayed = engine.replay(&point, SimOptions::default()).unwrap();
            assert_eq!(interpreted, replayed);
        }
    }

    #[test]
    fn multichip_replay_matches_in_both_handoff_modes() {
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let model = models::vgg19(32);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        for handoff in [HandoffMode::TileStreaming, HandoffMode::AtRetirement] {
            let options = SimOptions { handoff, ..SimOptions::default() };
            let interpreted = Simulator::with_options(&compiled, options).run().unwrap();
            let replayed = engine.replay(&arch, options).unwrap();
            assert_eq!(interpreted, replayed, "handoff {handoff:?}");
        }
    }

    #[test]
    fn replay_refuses_incompatible_and_invalid_points() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        // Compile-affecting change: must recompile, not replay.
        let err =
            engine.replay(&arch.with_macros_per_group(16), SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::TraceMismatch { .. }), "{err}");
        // Invalid point (memory port outside the mesh): replay skips the
        // compiler's validation path, so it must validate itself.
        let err = engine.replay(&arch.with_memory_port(4096), SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::TraceMismatch { .. }), "{err}");
    }

    #[test]
    fn batch_replay_reuses_state_without_cross_talk() {
        let base = ArchConfig::paper_default();
        let compiled = compile(&models::resnet18(32), &base, Strategy::DpOptimized).unwrap();
        let (trace, baseline) = Simulator::record(&compiled).unwrap();
        let points = vec![
            (base, SimOptions::default()),
            (base.with_frequency_mhz(500), SimOptions::default()),
            (base.with_macros_per_group(16), SimOptions::default()), // incompatible
            (base, SimOptions::default()),
        ];
        let results = ReplayEngine::new(&trace).replay_batch(&points);
        assert_eq!(results.len(), 4);
        assert_eq!(*results[0].as_ref().unwrap(), baseline);
        assert!(results[1].is_ok());
        assert!(matches!(results[2], Err(SimError::TraceMismatch { .. })));
        assert_eq!(
            *results[3].as_ref().unwrap(),
            baseline,
            "a failed point must not poison the reused state"
        );
    }

    #[test]
    fn lockstep_lanes_deduplicate_frequency_and_match_scalar_replay() {
        let base = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &base, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        let points: Vec<(ArchConfig, SimOptions)> = [400, 800, 1000]
            .iter()
            .flat_map(|&mhz| {
                [0u32, 27].iter().map(move |&port| {
                    (base.with_frequency_mhz(mhz).with_memory_port(port), SimOptions::default())
                })
            })
            .collect();
        let (results, stats) = engine.replay_batch_stats(&points);
        // 3 frequencies × 2 ports collapse onto 2 cycle-distinct lanes.
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.lanes, 2);
        for (point, result) in points.iter().zip(&results) {
            let scalar = engine.replay(&point.0, point.1).unwrap();
            assert_eq!(*result.as_ref().unwrap(), scalar, "lockstep must equal scalar replay");
        }
    }

    #[test]
    fn single_lane_batches_never_count_as_lockstep() {
        let base = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &base, Strategy::DpOptimized).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let engine = ReplayEngine::new(&trace);
        let points = vec![
            (base, SimOptions::default()),
            (base.with_frequency_mhz(500), SimOptions::default()),
        ];
        let (results, stats) = engine.replay_batch_stats(&points);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(stats, LockstepStats::default(), "one cycle lane is the scalar path");
    }

    /// A hand-built trace whose `pick_core` argmin genuinely flips with
    /// the NoC hop latency. Core 0 materializes a clock from a message
    /// that crossed the whole mesh (arrival scales with the per-hop
    /// latency: ~78 cycles at latency 1, ~512 at latency 32); core 1
    /// holds a fixed 200-cycle clock sized between the two. Both then
    /// block on core 5, whose own recv chain (through core 7's 900-cycle
    /// copy) keeps it from producing until both consumers are waiting, so
    /// the next pick compares 78-vs-200 in one lane and 512-vs-200 in the
    /// other. Real model traces never reach this state (their dependency
    /// chains and the serializing global port pin the pick order), so the
    /// peel path gets its own trace.
    #[test]
    fn divergent_pick_orders_peel_into_scalar_lanes_bit_exactly() {
        use std::collections::BTreeMap;

        use crate::trace::{CoreInvariants, TracePasses};

        let arch = ArchConfig::paper_default();
        let cores = arch.chip().core_count as usize;
        let mut ops: Vec<Vec<TraceOp>> =
            (0..cores).map(|_| vec![TraceOp::Halt { counted: false }]).collect();
        ops[0] = vec![
            // Clock becomes the arrival of core 63's full-mesh crossing,
            // then core 0 itself releases the producer and waits on it —
            // so the producer cannot run before the clock materializes.
            TraceOp::Recv { src: 63, local_cycles: 0 },
            TraceOp::Send { dst: 5, bytes: 64, push: true },
            TraceOp::Recv { src: 5, local_cycles: 4 },
            TraceOp::Advance { insts: 32, penalty: false },
            TraceOp::Halt { counted: true },
        ];
        ops[1] = vec![
            TraceOp::LocalCpy { cycles: 200 },
            TraceOp::Recv { src: 5, local_cycles: 4 },
            TraceOp::Advance { insts: 16, penalty: false },
            TraceOp::Halt { counted: true },
        ];
        ops[5] = vec![
            TraceOp::Recv { src: 0, local_cycles: 0 },
            TraceOp::Send { dst: 0, bytes: 64, push: true },
            TraceOp::Send { dst: 1, bytes: 64, push: true },
            TraceOp::Halt { counted: true },
        ];
        ops[63] =
            vec![TraceOp::Send { dst: 0, bytes: 512, push: true }, TraceOp::Halt { counted: true }];
        let trace = SimTrace {
            arch,
            fingerprint: arch.compile_fingerprint(),
            cores_per_chip: cores,
            chip_count: 1,
            macro_groups: 1,
            ops,
            transfers: Vec::new(),
            chip_transfers: vec![Vec::new()],
            dynamic_instructions: BTreeMap::new(),
            cim_ops: 0,
            vector_ops: 0,
            total_macs: 0,
            executed: 69,
            core_invariants: vec![CoreInvariants::default(); cores],
            passes: TracePasses::default(),
        };
        let engine = ReplayEngine::new(&trace);
        let options = SimOptions::default();
        // Hop latency 1: the crossing beats the 200-cycle copy. Hop
        // latency 32: it loses. The wake order flips between the lanes.
        let mut slow_mesh = arch;
        slow_mesh.system.chip.noc_hop_latency = 32;
        let points: Vec<(ArchConfig, SimOptions)> = vec![(arch, options), (slow_mesh, options)];
        let (results, stats) = engine.replay_batch_stats(&points);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.lanes, 2);
        assert!(stats.fallback_lanes > 0, "the flipped wake order must peel: {stats:?}");
        for (point, result) in points.iter().zip(&results) {
            let scalar = engine.replay(&point.0, point.1).unwrap();
            assert_eq!(*result.as_ref().unwrap(), scalar, "peeled lanes must equal scalar replay");
        }
    }
}
