//! The multi-core simulation engine: conservative discrete-event
//! execution of the per-core programs with NoC, global-memory and barrier
//! coordination.

use std::collections::{BTreeMap, HashMap, VecDeque};

use cimflow_arch::{AddressMap, ArchConfig};
use cimflow_compiler::CompiledProgram;
use cimflow_energy::EnergyModel;
use cimflow_isa::{Instruction, OpcodeClass, Program};
use cimflow_noc::{Mesh, NocConfig};

use crate::core::{BlockReason, CoreState};
use crate::report::{SimReport, UnitActivity};
use crate::SimError;

/// Maximum dynamically executed instructions before the simulator aborts
/// (a defence against runaway generated code).
const INSTRUCTION_BUDGET: u64 = 2_000_000_000;
/// Number of instructions a core may execute before control returns to the
/// scheduler (keeps NoC contention interleaving reasonably accurate).
const SLICE: u64 = 4096;

/// A message in flight between two cores.
#[derive(Debug, Clone, Copy)]
struct Message {
    arrival: u64,
    bytes: u64,
}

/// The CIMFlow cycle-level simulator.
///
/// See the crate-level documentation for the modelled behaviour and the
/// crate example for typical usage.
#[derive(Debug)]
pub struct Simulator {
    arch: ArchConfig,
    programs: Vec<Program>,
    cores: Vec<CoreState>,
    mesh: Mesh,
    energy_model: EnergyModel,
    address_map: AddressMap,
    channels: HashMap<(u32, u32), VecDeque<Message>>,
    global_port_free: u64,
    dynamic: BTreeMap<OpcodeClass, u64>,
    cim_ops: u64,
    vector_ops: u64,
    total_macs: u64,
    executed: u64,
}

impl Simulator {
    /// Prepares a simulation of a compiled program.
    pub fn new(compiled: &CompiledProgram) -> Self {
        let arch = compiled.arch;
        let noc_config = NocConfig {
            width: arch.chip.mesh.width,
            height: arch.chip.mesh.height,
            flit_bytes: arch.chip.noc_flit_bytes,
            hop_latency: arch.chip.noc_hop_latency,
            memory_port: 0,
        };
        let cores = (0..arch.chip.core_count).map(|id| CoreState::new(id, &arch)).collect();
        let total_macs = compiled.condensed.groups().iter().map(|g| g.metrics.macs).sum();
        Simulator {
            arch,
            programs: compiled.per_core.clone(),
            cores,
            mesh: Mesh::new(noc_config),
            energy_model: EnergyModel::calibrated_28nm(),
            address_map: arch.address_map(),
            channels: HashMap::new(),
            global_port_free: 0,
            dynamic: BTreeMap::new(),
            cim_ops: 0,
            vector_ops: 0,
            total_macs,
            executed: 0,
        }
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no core can make progress,
    /// [`SimError::InvalidCore`] for out-of-range core references and
    /// [`SimError::CycleLimitExceeded`] when the instruction budget is
    /// exhausted.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        loop {
            if self.cores.iter().all(CoreState::is_halted) {
                break;
            }
            match self.pick_core() {
                Some(core) => self.run_slice(core)?,
                None => {
                    if self.release_barrier() {
                        continue;
                    }
                    return Err(self.deadlock());
                }
            }
            if self.executed > INSTRUCTION_BUDGET {
                return Err(SimError::CycleLimitExceeded { limit: INSTRUCTION_BUDGET });
            }
        }
        Ok(self.finish())
    }

    /// Chooses the runnable core with the smallest local time.
    fn pick_core(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, core) in self.cores.iter().enumerate() {
            let runnable = match core.block {
                BlockReason::None => true,
                BlockReason::Recv { src } => {
                    self.channels.get(&(src, core.id)).is_some_and(|q| !q.is_empty())
                }
                _ => false,
            };
            if runnable {
                best = match best {
                    Some(b) if self.cores[b].now <= core.now => Some(b),
                    _ => Some(i),
                };
            }
        }
        best
    }

    /// Releases the set of cores waiting at the lowest pending barrier if
    /// every non-halted core has reached a barrier. Returns whether any
    /// core was released.
    fn release_barrier(&mut self) -> bool {
        let mut waiting: Vec<(usize, u16)> = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            match core.block {
                BlockReason::Barrier { id } => waiting.push((i, id)),
                BlockReason::Halted => {}
                _ => return false,
            }
        }
        if waiting.is_empty() {
            return false;
        }
        let min_id = waiting.iter().map(|(_, id)| *id).min().expect("non-empty");
        let members: Vec<usize> =
            waiting.iter().filter(|(_, id)| *id == min_id).map(|(i, _)| *i).collect();
        // A barrier only opens once every participant has arrived; with the
        // codegen emitting every barrier on every core this means all
        // non-halted cores share the minimum id.
        if members.len() + self.cores.iter().filter(|c| c.is_halted()).count() != self.cores.len() {
            // Some core waits at a later barrier — structurally impossible
            // with the current code generator; treat as deadlock.
            return false;
        }
        let release = members.iter().map(|i| self.cores[*i].now).max().unwrap_or(0) + 1;
        for i in members {
            self.cores[i].now = release;
            self.cores[i].block = BlockReason::None;
        }
        true
    }

    fn deadlock(&self) -> SimError {
        let mut recv = Vec::new();
        let mut barrier = Vec::new();
        for core in &self.cores {
            match core.block {
                BlockReason::Recv { .. } => recv.push(core.id),
                BlockReason::Barrier { .. } => barrier.push(core.id),
                _ => {}
            }
        }
        SimError::Deadlock { blocked_on_recv: recv, blocked_on_barrier: barrier }
    }

    /// Executes up to [`SLICE`] instructions on one core.
    fn run_slice(&mut self, index: usize) -> Result<(), SimError> {
        self.cores[index].block = BlockReason::None;
        for _ in 0..SLICE {
            if !self.cores[index].is_runnable() {
                break;
            }
            self.step(index)?;
        }
        Ok(())
    }

    /// Executes one instruction on one core.
    fn step(&mut self, index: usize) -> Result<(), SimError> {
        let pc = self.cores[index].pc;
        let program = &self.programs[index];
        let Some(&inst) = program.instructions().get(pc) else {
            self.cores[index].block = BlockReason::Halted;
            return Ok(());
        };

        // Issue cost of the three-stage pipeline front end.
        let issue_pj = self.energy_model.digital.issue_pj_per_inst;
        let unit = self.arch.core.cim_unit;
        let local = self.arch.core.local_memory;
        let vector = self.arch.core.vector_unit;
        let core_id = self.cores[index].id;

        let mut advance = true;
        match inst {
            Instruction::CimMvm { rows, output: _, mg, input: _ } => {
                let core = &mut self.cores[index];
                let rows_value =
                    core.read_unsigned(rows).clamp(1, u64::from(unit.rows_per_operation())) as u32;
                let issue = unit.mvm_issue_cycles(rows_value);
                let latency = unit.mvm_latency_cycles(rows_value);
                let start = core.now;
                core.occupy_macro_group(mg as usize, start, issue, latency);
                core.now += 1;
                let macs = unit.macs_per_group_operation(rows_value);
                core.energy.compute_pj += self.energy_model.cim.compute_pj(macs);
                core.energy.local_memory_pj +=
                    self.energy_model.sram.local_read_pj(u64::from(rows_value));
                self.cim_ops += 1;
            }
            Instruction::CimLoad { rows, mg, weights: _ } => {
                let core = &mut self.cores[index];
                let rows_value =
                    core.read_unsigned(rows).clamp(1, u64::from(unit.rows_per_operation())) as u32;
                let cycles = unit.weight_load_cycles(rows_value);
                let start = core.now;
                core.occupy_macro_group(mg as usize, start, cycles, cycles);
                core.now += 1;
                let bytes = u64::from(rows_value) * u64::from(unit.output_channels_per_group());
                core.energy.compute_pj += self.energy_model.cim.weight_load_pj(bytes);
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes);
            }
            Instruction::CimStoreAcc { len, mg, output: _ } => {
                let core = &mut self.cores[index];
                let lanes = core.read_unsigned(len).max(1);
                let count = core.macro_groups.len().max(1);
                let ready = core.macro_groups[mg as usize % count].acc_ready;
                core.now = core.now.max(ready) + 1;
                core.energy.local_memory_pj += self.energy_model.sram.local_write_pj(lanes * 4);
            }
            Instruction::VecOp { len, .. }
            | Instruction::VecQuant { len, .. }
            | Instruction::VecMac { len, .. } => {
                let core = &mut self.cores[index];
                let elems = core.read_unsigned(len).max(1);
                let cycles = vector.cycles_for(elems);
                let start = core.now;
                core.occupy_vector_unit(start, cycles);
                core.now += 1;
                core.energy.compute_pj +=
                    self.energy_model.digital.vector_pj_per_elem * elems as f64;
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(elems)
                    + self.energy_model.sram.local_write_pj(elems);
                self.vector_ops += elems;
            }
            Instruction::VecPool { len, window, .. } => {
                let core = &mut self.cores[index];
                let elems = core.read_unsigned(len).max(1) * core.read_unsigned(window).max(1);
                let cycles = vector.cycles_for(elems);
                let start = core.now;
                core.occupy_vector_unit(start, cycles);
                core.now += 1;
                core.energy.compute_pj +=
                    self.energy_model.digital.vector_pj_per_elem * elems as f64;
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(elems);
                self.vector_ops += elems;
            }
            Instruction::MemCpy { src, dst, len, offset } => {
                let bytes = self.cores[index].read_unsigned(len).max(1);
                let src_addr = (self.cores[index].read(src) + i64::from(offset)).max(0) as u64;
                let dst_addr = self.cores[index].read_unsigned(dst);
                let src_global = self.address_map.is_global(src_addr);
                let dst_global = self.address_map.is_global(dst_addr);
                if src_global || dst_global {
                    let now = self.cores[index].now;
                    let outcome = if src_global {
                        self.mesh.transfer_from_memory(core_id, bytes, now)
                    } else {
                        self.mesh.transfer_to_memory(core_id, bytes, now)
                    };
                    let port_start = outcome.arrival.max(self.global_port_free);
                    let completion =
                        port_start + self.arch.chip.global_memory.transfer_cycles(bytes);
                    self.global_port_free = completion;
                    let core = &mut self.cores[index];
                    core.now = completion;
                    core.energy.global_memory_pj += self.energy_model.sram.global_pj(bytes);
                    core.energy.noc_pj += self.energy_model.noc.transfer_pj(
                        outcome.flits,
                        self.arch.chip.noc_flit_bytes,
                        outcome.hops.max(1),
                    );
                    core.energy.local_memory_pj += self.energy_model.sram.local_write_pj(bytes);
                } else {
                    let core = &mut self.cores[index];
                    core.now += local.transfer_cycles(bytes);
                    core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes)
                        + self.energy_model.sram.local_write_pj(bytes);
                }
            }
            Instruction::Send { len, dst_core, .. } => {
                let bytes = self.cores[index].read_unsigned(len).max(1);
                let dst = self.cores[index].read_unsigned(dst_core) as u32;
                if dst >= self.arch.chip.core_count {
                    return Err(SimError::InvalidCore { core: dst });
                }
                let now = self.cores[index].now;
                let outcome = self.mesh.transfer(core_id, dst, bytes, now);
                self.channels
                    .entry((core_id, dst))
                    .or_default()
                    .push_back(Message { arrival: outcome.arrival, bytes });
                let core = &mut self.cores[index];
                core.now += 1;
                core.energy.noc_pj += self.energy_model.noc.transfer_pj(
                    outcome.flits,
                    self.arch.chip.noc_flit_bytes,
                    outcome.hops.max(1),
                );
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes);
            }
            Instruction::Recv { src_core, .. } => {
                let src = self.cores[index].read_unsigned(src_core) as u32;
                if src >= self.arch.chip.core_count {
                    return Err(SimError::InvalidCore { core: src });
                }
                let queue = self.channels.entry((src, core_id)).or_default();
                match queue.pop_front() {
                    Some(message) => {
                        let core = &mut self.cores[index];
                        core.now =
                            core.now.max(message.arrival) + local.transfer_cycles(message.bytes);
                        core.energy.local_memory_pj +=
                            self.energy_model.sram.local_write_pj(message.bytes);
                    }
                    None => {
                        // Stay at this instruction until a message arrives.
                        self.cores[index].block = BlockReason::Recv { src };
                        return Ok(());
                    }
                }
            }
            Instruction::Jmp { offset } => {
                let core = &mut self.cores[index];
                core.now += 1;
                core.branch_penalty();
                core.pc = (core.pc as i64 + 1 + i64::from(offset)).max(0) as usize;
                advance = false;
            }
            Instruction::Beq { a, b, offset } | Instruction::Bne { a, b, offset } => {
                let core = &mut self.cores[index];
                let equal = core.read(a) == core.read(b);
                let taken = match inst {
                    Instruction::Beq { .. } => equal,
                    _ => !equal,
                };
                core.now += 1;
                if taken {
                    core.branch_penalty();
                    core.pc = (core.pc as i64 + 1 + i64::from(offset)).max(0) as usize;
                    advance = false;
                }
            }
            Instruction::Barrier { id } => {
                let core = &mut self.cores[index];
                core.now += 1;
                core.pc += 1;
                core.block = BlockReason::Barrier { id };
                advance = false;
            }
            Instruction::Halt => {
                self.cores[index].block = BlockReason::Halted;
                advance = false;
            }
            Instruction::Nop => {
                self.cores[index].now += 1;
            }
            _ => {
                // Scalar instructions: functional register update, one cycle.
                let core = &mut self.cores[index];
                core.execute_scalar(&inst);
                core.now += 1;
                core.energy.control_pj += self.energy_model.digital.scalar_pj_per_op;
            }
        }

        let core = &mut self.cores[index];
        core.energy.control_pj += issue_pj;
        core.executed += 1;
        self.executed += 1;
        *self.dynamic.entry(inst.class()).or_insert(0) += 1;
        if advance {
            core.pc += 1;
        }
        Ok(())
    }

    /// Collects the final report.
    fn finish(self) -> SimReport {
        let total_cycles = self.cores.iter().map(|c| c.now).max().unwrap_or(0).max(1);
        let mut energy = cimflow_energy::EnergyBreakdown::new();
        for core in &self.cores {
            energy.accumulate(&core.energy);
        }
        energy.accumulate(&self.energy_model.static_energy(&self.arch, total_cycles));

        let mg_per_core = self.arch.core.cim_unit.macro_groups.max(1) as f64;
        let core_utilization: Vec<f64> = self
            .cores
            .iter()
            .map(|c| {
                let busy: u64 = c.macro_groups.iter().map(|m| m.busy_cycles).sum();
                (busy as f64 / mg_per_core / total_cycles as f64).min(1.0)
            })
            .collect();
        let cim_busy: u64 =
            self.cores.iter().flat_map(|c| c.macro_groups.iter().map(|m| m.busy_cycles)).sum();
        let vector_busy: u64 = self.cores.iter().map(|c| c.vector_busy_cycles).sum();

        let mut report = SimReport {
            total_cycles,
            energy,
            dynamic_instructions: self
                .dynamic
                .into_iter()
                .map(|(class, count)| (class.to_string(), count))
                .collect(),
            cim_activity: UnitActivity { busy_cycles: cim_busy, operations: self.cim_ops },
            vector_activity: UnitActivity { busy_cycles: vector_busy, operations: self.vector_ops },
            noc: self.mesh.stats().clone(),
            core_utilization,
            total_macs: self.total_macs,
            frequency_mhz: 0,
        };
        report.attach_arch(&self.arch);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;

    fn simulate(model: cimflow_nn::Model, strategy: Strategy) -> SimReport {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&model, &arch, strategy).unwrap();
        Simulator::new(&compiled).run().unwrap()
    }

    #[test]
    fn mobilenet_simulation_completes_with_sane_metrics() {
        let report = simulate(models::mobilenet_v2(32), Strategy::DpOptimized);
        assert!(report.total_cycles > 0);
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.energy.compute_pj > 0.0);
        assert!(report.energy.local_memory_pj > 0.0);
        assert!(report.energy.noc_pj > 0.0);
        assert!(report.throughput_tops() > 0.0);
        assert!(report.mean_utilization() > 0.0 && report.mean_utilization() <= 1.0);
        assert!(report.total_dynamic_instructions() > 0);
        assert!(report.cim_activity.operations > 0);
    }

    #[test]
    fn dp_strategy_is_faster_than_generic_on_compact_models() {
        let generic = simulate(models::mobilenet_v2(32), Strategy::GenericMapping);
        let dp = simulate(models::mobilenet_v2(32), Strategy::DpOptimized);
        assert!(
            dp.total_cycles < generic.total_cycles,
            "dp {} !< generic {}",
            dp.total_cycles,
            generic.total_cycles
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate(models::resnet18(32), Strategy::DpOptimized);
        let b = simulate(models::resnet18(32), Strategy::DpOptimized);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.noc, b.noc);
        assert!((a.energy.total_pj() - b.energy.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn larger_macro_groups_do_not_hurt_resnet_throughput() {
        let arch_small = ArchConfig::paper_default().with_macros_per_group(4);
        let arch_large = ArchConfig::paper_default().with_macros_per_group(16);
        let model = models::resnet18(32);
        let small =
            Simulator::new(&compile(&model, &arch_small, Strategy::GenericMapping).unwrap())
                .run()
                .unwrap();
        let large =
            Simulator::new(&compile(&model, &arch_large, Strategy::GenericMapping).unwrap())
                .run()
                .unwrap();
        assert!(large.throughput_tops() >= small.throughput_tops() * 0.9);
    }
}
