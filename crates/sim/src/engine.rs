//! The multi-core, multi-chip simulation engine: conservative
//! discrete-event execution of the per-core programs with NoC,
//! global-memory and barrier coordination per chip, and inter-chip
//! transfers over the system-level fabric.

use std::collections::{BTreeMap, HashMap, VecDeque};

use cimflow_arch::{AddressMap, ArchConfig, InterChipTopology};
use cimflow_compiler::{CompiledProgram, SystemPlan, STREAM_TILE_BYTES};
use cimflow_energy::{EnergyBreakdown, EnergyModel};
use cimflow_isa::{Instruction, OpcodeClass, Program};
use cimflow_noc::{InterChipConfig, InterChipFabric, Interconnect, Mesh, NocConfig, NocStats};
use cimflow_obs::{new_track, AttrValue, Tracer};

use crate::core::{BlockReason, CoreState};
use crate::report::{SimReport, UnitActivity};
use crate::trace::{CoreInvariants, SimTrace, TraceOp, TraceRecorder, TraceTransfer};
use crate::SimError;

/// Maximum dynamically executed instructions before the simulator aborts
/// (a defence against runaway generated code).
pub(crate) const INSTRUCTION_BUDGET: u64 = 2_000_000_000;
/// Number of instructions a core may execute before control returns to the
/// scheduler (keeps NoC contention interleaving reasonably accurate).
pub(crate) const SLICE: u64 = 4096;
/// Upper bound on the tiles one cut activation streams as, so a huge
/// transfer does not degenerate into millions of fabric packets.
pub(crate) const MAX_STREAM_TILES: u64 = 64;

/// How cut activations hand off between chips of a multi-chip system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum HandoffMode {
    /// The historical conservative model: a chip ships every cut
    /// activation only when all of its cores have retired, and a consumer
    /// chip starts once every input has fully landed in its global
    /// memory.
    AtRetirement,
    /// Tile-granular streaming (the default): cut activations stream in
    /// tiles across the producing stage's execution window, and a
    /// consumer chip starts once the first tile of every input has
    /// landed — chips overlap *within* one inference, not just across
    /// consecutive inferences.
    #[default]
    TileStreaming,
}

/// Optional knobs of a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimOptions {
    /// The inter-chip hand-off model.
    pub handoff: HandoffMode,
    /// Record cycle-domain timeline events (per-chip busy spans, stage
    /// windows, fabric transfers, memory-port occupancy) into the tracer
    /// attached via [`Simulator::set_tracer`]. Off by default; with no
    /// tracer attached the flag is inert, so the untraced hot path pays
    /// nothing.
    pub profile: bool,
}

/// The cycle-domain profiling sink of one simulation: a tracer plus the
/// pre-allocated tracks its timelines render on (one per chip, one for
/// the inter-chip fabric). All timestamps are simulated cycles, not wall
/// time — export a profiled run into its own trace file rather than
/// mixing it with wall-clock spans.
#[derive(Debug)]
struct SimProfile {
    tracer: Tracer,
    /// Track of each chip's timeline (`chip-N`).
    chip_tracks: Vec<u64>,
    /// Track of the inter-chip fabric timeline.
    fabric_track: u64,
}

impl SimProfile {
    fn new(tracer: Tracer, chips: usize) -> Self {
        let chip_tracks: Vec<u64> = (0..chips).map(|_| new_track()).collect();
        for (chip, track) in chip_tracks.iter().enumerate() {
            tracer.set_track_name(*track, &format!("chip-{chip}"));
        }
        let fabric_track = new_track();
        tracer.set_track_name(fabric_track, "fabric");
        SimProfile { tracer, chip_tracks, fabric_track }
    }

    /// One fabric transfer (or streamed tile): departure → landed.
    fn fabric_transfer(&self, from: u32, to: u32, bytes: u64, depart: u64, landed: u64) {
        self.tracer.complete(
            "transfer",
            "sim.fabric",
            self.fabric_track,
            depart,
            landed.saturating_sub(depart),
            vec![
                ("from_chip".to_owned(), AttrValue::from(u64::from(from))),
                ("to_chip".to_owned(), AttrValue::from(u64::from(to))),
                ("bytes".to_owned(), AttrValue::from(bytes)),
            ],
        );
    }

    /// The memory-port window an incoming tile occupied on `chip`.
    fn port_landing(&self, chip: usize, port_start: u64, landed: u64, bytes: u64) {
        self.tracer.complete(
            "input-land",
            "sim.mem_port",
            self.chip_tracks[chip],
            port_start,
            landed.saturating_sub(port_start),
            vec![("bytes".to_owned(), AttrValue::from(bytes))],
        );
    }
}

/// A message in flight between two cores.
#[derive(Debug, Clone, Copy)]
struct Message {
    arrival: u64,
    bytes: u64,
}

/// What the trace recorder should note for one executed instruction,
/// resolved per [`Simulator::step`] arm and applied at the accounting
/// tail (so recording never interleaves with the timing updates).
enum Recorded {
    /// One fusible single-cycle instruction.
    Advance,
    /// A taken branch or jump: one cycle plus the squash penalty,
    /// terminating the current fused run.
    Penalty,
    /// A non-fusible timing op.
    Op(TraceOp),
}

/// The CIMFlow cycle-level simulator.
///
/// One chip is the paper's platform: every core runs its program against
/// the chip's mesh, global-memory port and barrier group. A multi-chip
/// system replicates that per chip — per-chip core states, meshes and
/// memory ports — and executes the compiler's [`SystemPlan`] on top: a
/// chip starts once every inter-chip activation feeding it has landed in
/// its global memory, and a finished chip ships its cut activations over
/// the [`InterChipFabric`], so one inference flows through the chips as a
/// pipeline.
///
/// See the crate-level documentation for the modelled behaviour and the
/// crate example for typical usage.
#[derive(Debug)]
pub struct Simulator {
    arch: ArchConfig,
    programs: Vec<Program>,
    /// All cores, chip-major: global core `g` is local core `g % cc` of
    /// chip `g / cc`. `CoreState::id` is the chip-local (mesh) id.
    cores: Vec<CoreState>,
    cores_per_chip: usize,
    meshes: Vec<Mesh>,
    fabric: InterChipFabric,
    system: SystemPlan,
    options: SimOptions,
    chip_started: Vec<bool>,
    chip_dispatched: Vec<bool>,
    chip_ready: Vec<u64>,
    chip_start_time: Vec<u64>,
    chip_finish_time: Vec<u64>,
    incoming_remaining: Vec<usize>,
    /// Whether each system transfer has been pushed onto the fabric yet.
    transfer_dispatched: Vec<bool>,
    /// Chip-local stage ordinal of each transfer's producing group
    /// (`None` when the producer is unplaced, e.g. legacy plans).
    transfer_stage: Vec<Option<usize>>,
    /// Per producing chip: ascending indices into the system transfer
    /// list, precomputed once so the per-retirement / per-stage dispatch
    /// passes scan only that chip's transfers instead of rescanning the
    /// whole list per chip.
    chip_transfers: Vec<Vec<usize>>,
    /// Per chip: release time of each barrier id, recorded as barriers
    /// open (stage `k` runs between barriers `2k` and `2k + 1`).
    barrier_release: Vec<HashMap<u16, u64>>,
    /// Per chip: the [port_start, landed) windows its incoming tiles
    /// occupied on the global-memory port (input-stall accounting).
    landing_windows: Vec<Vec<(u64, u64)>>,
    /// Per chip: when the last byte of its cut inputs landed.
    last_input_landed: Vec<u64>,
    /// Cycle-domain timeline sink; `Some` only when
    /// [`SimOptions::profile`] is set *and* a tracer was attached.
    profile: Option<SimProfile>,
    energy_model: EnergyModel,
    /// System-level energy not attributable to one core (inter-chip
    /// links, the landing writes into consumer global memories).
    system_energy: EnergyBreakdown,
    address_map: AddressMap,
    channels: HashMap<(u32, u32), VecDeque<Message>>,
    global_port_free: Vec<u64>,
    dynamic: BTreeMap<OpcodeClass, u64>,
    cim_ops: u64,
    vector_ops: u64,
    total_macs: u64,
    executed: u64,
    /// Trace recording hook; `Some` only inside [`Simulator::record`].
    recorder: Option<TraceRecorder>,
}

impl Simulator {
    /// Prepares a simulation of a compiled program with the default
    /// options (tile-streaming inter-chip hand-off).
    pub fn new(compiled: &CompiledProgram) -> Self {
        Self::with_options(compiled, SimOptions::default())
    }

    /// Prepares a simulation with explicit [`SimOptions`].
    pub fn with_options(compiled: &CompiledProgram, options: SimOptions) -> Self {
        let arch = compiled.arch;
        let chip_count = compiled.system.chip_count.max(1) as usize;
        let cores_per_chip = arch.chip().core_count as usize;
        let noc_config = NocConfig {
            width: arch.chip().mesh.width,
            height: arch.chip().mesh.height,
            flit_bytes: arch.chip().noc_flit_bytes,
            hop_latency: arch.chip().noc_hop_latency,
            memory_port: arch.chip().memory_port,
        };
        let link = &arch.system.interconnect;
        let fabric = InterChipFabric::new(InterChipConfig {
            chips: chip_count as u32,
            link_bytes: link.link_bytes_per_cycle,
            link_latency: link.link_latency_cycles,
            ring: link.topology == InterChipTopology::Ring,
        });
        let cores: Vec<CoreState> = (0..chip_count * cores_per_chip)
            .map(|g| CoreState::new((g % cores_per_chip) as u32, &arch))
            .collect();
        let mut incoming_remaining = vec![0usize; chip_count];
        for transfer in &compiled.system.transfers {
            incoming_remaining[transfer.to_chip as usize] += 1;
        }
        let chip_started: Vec<bool> = incoming_remaining.iter().map(|n| *n == 0).collect();
        let total_macs = compiled.condensed.groups().iter().map(|g| g.metrics.macs).sum();

        // Chip-local stage ordinal of every placed group: the merged plan
        // lists each chip's stages contiguously, and the per-chip code
        // generator emitted barrier pair (2k, 2k + 1) around its local
        // stage k — that pairing is what lets the streaming hand-off tie
        // a cut activation to the execution window producing it.
        let mut group_stage: HashMap<usize, usize> = HashMap::new();
        let mut stages_seen = vec![0usize; chip_count];
        for stage in &compiled.plan.stages {
            let Some(first) = stage.placements.first() else { continue };
            let chip = compiled.system.assignment.get(first.group).copied().unwrap_or(0) as usize;
            let ordinal = stages_seen[chip.min(chip_count - 1)];
            stages_seen[chip.min(chip_count - 1)] += 1;
            for placement in &stage.placements {
                group_stage.insert(placement.group, ordinal);
            }
        }
        let transfer_stage: Vec<Option<usize>> = compiled
            .system
            .transfers
            .iter()
            .map(|t| group_stage.get(&t.producer).copied())
            .collect();
        let mut chip_transfers: Vec<Vec<usize>> = vec![Vec::new(); chip_count];
        for (index, transfer) in compiled.system.transfers.iter().enumerate() {
            let from = transfer.from_chip as usize;
            if from < chip_count {
                chip_transfers[from].push(index);
            }
        }

        Simulator {
            arch,
            programs: compiled.per_core.clone(),
            cores,
            cores_per_chip,
            meshes: vec![Mesh::new(noc_config); chip_count],
            fabric,
            system: compiled.system.clone(),
            options,
            chip_started,
            chip_dispatched: vec![false; chip_count],
            chip_ready: vec![0; chip_count],
            chip_start_time: vec![0; chip_count],
            chip_finish_time: vec![0; chip_count],
            incoming_remaining,
            transfer_dispatched: vec![false; compiled.system.transfers.len()],
            transfer_stage,
            chip_transfers,
            barrier_release: vec![HashMap::new(); chip_count],
            landing_windows: vec![Vec::new(); chip_count],
            last_input_landed: vec![0; chip_count],
            profile: None,
            energy_model: EnergyModel::calibrated_28nm(),
            system_energy: EnergyBreakdown::new(),
            address_map: arch.address_map(),
            channels: HashMap::new(),
            global_port_free: vec![0; chip_count],
            dynamic: BTreeMap::new(),
            cim_ops: 0,
            vector_ops: 0,
            total_macs,
            executed: 0,
            recorder: None,
        }
    }

    /// Attaches a tracer for the cycle-domain timeline events enabled by
    /// [`SimOptions::profile`] (without the flag the tracer is ignored).
    /// Timestamps are simulated cycles: per-chip busy spans (`sim.chip`,
    /// one per chip, summing to [`SimReport::chip_cycles`]), per-stage
    /// execution windows (`sim.stage`), fabric transfers (`sim.fabric`)
    /// and memory-port occupancy (`sim.mem_port`).
    pub fn set_tracer(&mut self, tracer: &Tracer) {
        if self.options.profile {
            self.profile = Some(SimProfile::new(tracer.clone(), self.chip_count()));
        }
    }

    /// Number of chips being simulated.
    fn chip_count(&self) -> usize {
        self.meshes.len()
    }

    /// Global core ids of one chip.
    fn chip_cores(&self, chip: usize) -> std::ops::Range<usize> {
        chip * self.cores_per_chip..(chip + 1) * self.cores_per_chip
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no core can make progress,
    /// [`SimError::InvalidCore`] for out-of-range core references and
    /// [`SimError::CycleLimitExceeded`] when the instruction budget is
    /// exhausted.
    pub fn run(mut self) -> Result<SimReport, SimError> {
        self.run_loop()?;
        Ok(self.finish())
    }

    /// Runs the simulation to completion *while recording a trace*,
    /// returning the [`SimTrace`] alongside the ordinary report. The
    /// report is identical to what [`Simulator::run`] would produce —
    /// recording only appends to side buffers and never influences
    /// timing — and the trace replays to that same report through a
    /// [`ReplayEngine`](crate::ReplayEngine) for any design point whose
    /// [`compile_fingerprint`](ArchConfig::compile_fingerprint) matches.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Simulator::run`].
    pub fn record(compiled: &CompiledProgram) -> Result<(SimTrace, SimReport), SimError> {
        Self::record_with_options(compiled, SimOptions::default())
    }

    /// [`Simulator::record`] with explicit [`SimOptions`]. The recorded
    /// trace itself is option-independent (op streams never depend on the
    /// hand-off mode); only the returned report reflects `options`.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Simulator::run`].
    pub fn record_with_options(
        compiled: &CompiledProgram,
        options: SimOptions,
    ) -> Result<(SimTrace, SimReport), SimError> {
        let mut sim = Self::with_options(compiled, options);
        sim.recorder = Some(TraceRecorder::new(sim.cores.len()));
        sim.run_loop()?;
        let trace = sim.build_trace();
        Ok((trace, sim.finish()))
    }

    /// The main scheduling loop shared by [`Simulator::run`] and the
    /// recording entry points.
    fn run_loop(&mut self) -> Result<(), SimError> {
        loop {
            self.retire_finished_chips();
            if self.cores.iter().all(CoreState::is_halted) {
                break;
            }
            match self.pick_core() {
                Some(core) => self.run_slice(core)?,
                None => {
                    if self.release_barriers() {
                        continue;
                    }
                    return Err(self.deadlock());
                }
            }
            if self.executed > INSTRUCTION_BUDGET {
                return Err(SimError::CycleLimitExceeded { limit: INSTRUCTION_BUDGET });
            }
        }
        Ok(())
    }

    /// Harvests the recorder into a [`SimTrace`] (must only be called
    /// after a successful [`Simulator::run_loop`] with a recorder set).
    fn build_trace(&mut self) -> SimTrace {
        let recorder = self.recorder.take().expect("build_trace without recorder");
        let (ops, passes) = recorder.finish(self.cores_per_chip);
        let core_invariants: Vec<CoreInvariants> = self
            .cores
            .iter()
            .map(|core| CoreInvariants {
                mg_busy_cycles: core.macro_groups.iter().map(|m| m.busy_cycles).sum(),
                vector_busy_cycles: core.vector_busy_cycles,
                compute_pj: core.energy.compute_pj,
                local_memory_pj: core.energy.local_memory_pj,
                global_memory_pj: core.energy.global_memory_pj,
                control_pj: core.energy.control_pj,
            })
            .collect();
        let transfers: Vec<TraceTransfer> = self
            .system
            .transfers
            .iter()
            .zip(&self.transfer_stage)
            .map(|(t, stage)| TraceTransfer {
                from_chip: t.from_chip,
                to_chip: t.to_chip,
                bytes: t.bytes,
                stage: *stage,
            })
            .collect();
        SimTrace {
            arch: self.arch,
            fingerprint: self.arch.compile_fingerprint(),
            cores_per_chip: self.cores_per_chip,
            chip_count: self.chip_count(),
            macro_groups: self.arch.core.cim_unit.macro_groups.max(1) as usize,
            ops,
            transfers,
            chip_transfers: self.chip_transfers.clone(),
            dynamic_instructions: self
                .dynamic
                .iter()
                .map(|(class, count)| (class.to_string(), *count))
                .collect(),
            cim_ops: self.cim_ops,
            vector_ops: self.vector_ops,
            total_macs: self.total_macs,
            executed: self.executed,
            core_invariants,
            passes,
        }
    }

    /// Ships the remaining cut activations of every chip that has just
    /// finished over the inter-chip fabric, and starts every chip whose
    /// hand-off gate has opened. Under tile streaming most transfers have
    /// already been dispatched at their producing stage's end barrier;
    /// this pass catches whatever is left (and is the whole hand-off
    /// under [`HandoffMode::AtRetirement`]).
    fn retire_finished_chips(&mut self) {
        if self.chip_count() == 1 {
            return;
        }
        for chip in 0..self.chip_count() {
            if !self.chip_started[chip]
                || self.chip_dispatched[chip]
                || !self.chip_cores(chip).all(|g| self.cores[g].is_halted())
            {
                continue;
            }
            let cores_done = self.chip_cores(chip).map(|g| self.cores[g].now).max().unwrap_or(0);
            // A streamed consumer may outrun the timing model's port
            // coupling; it can never truly finish before its inputs
            // exist, so the chip's retirement is clamped to the last
            // landing.
            let finish = cores_done.max(self.last_input_landed[chip]);
            self.chip_finish_time[chip] = finish;
            self.chip_dispatched[chip] = true;
            for k in 0..self.chip_transfers[chip].len() {
                let index = self.chip_transfers[chip][k];
                let transfer = self.system.transfers[index];
                if self.transfer_dispatched[index] {
                    continue;
                }
                self.transfer_dispatched[index] = true;
                let to = transfer.to_chip as usize;
                let outcome = self.fabric.transfer(
                    transfer.from_chip,
                    transfer.to_chip,
                    transfer.bytes,
                    finish,
                );
                // The activation lands in the consumer chip's global
                // memory through its (shared) memory port.
                let port_start = outcome.arrival.max(self.global_port_free[to]);
                let landed =
                    port_start + self.arch.chip().global_memory.transfer_cycles(transfer.bytes);
                self.global_port_free[to] = landed;
                self.landing_windows[to].push((port_start, landed));
                if let Some(profile) = &self.profile {
                    profile.fabric_transfer(
                        transfer.from_chip,
                        transfer.to_chip,
                        transfer.bytes,
                        finish,
                        outcome.arrival,
                    );
                    profile.port_landing(to, port_start, landed, transfer.bytes);
                }
                self.system_energy.interchip_pj +=
                    self.energy_model.interchip.transfer_pj(transfer.bytes, outcome.hops);
                self.system_energy.global_memory_pj +=
                    self.energy_model.sram.global_pj(transfer.bytes);
                self.chip_ready[to] = self.chip_ready[to].max(landed);
                self.last_input_landed[to] = self.last_input_landed[to].max(landed);
                self.incoming_remaining[to] -= 1;
            }
        }
        self.start_ready_chips();
    }

    /// Starts every chip whose hand-off gate has opened (all inputs fully
    /// landed at retirement granularity; first tiles landed under
    /// streaming).
    fn start_ready_chips(&mut self) {
        for chip in 0..self.chip_count() {
            if self.chip_started[chip] || self.incoming_remaining[chip] != 0 {
                continue;
            }
            self.chip_started[chip] = true;
            self.chip_start_time[chip] = self.chip_ready[chip];
            for g in self.chip_cores(chip) {
                self.cores[g].now = self.chip_ready[chip];
            }
        }
    }

    /// Streams every not-yet-dispatched transfer produced by local stage
    /// `ordinal` of `chip`, whose execution window just closed at `end`.
    fn stream_stage_transfers(&mut self, chip: usize, ordinal: usize, end: u64) {
        if self.chip_count() == 1 {
            return;
        }
        let window_start = self.barrier_release[chip]
            .get(&((ordinal * 2) as u16))
            .copied()
            .unwrap_or(self.chip_start_time[chip])
            .min(end);
        for k in 0..self.chip_transfers[chip].len() {
            let index = self.chip_transfers[chip][k];
            if self.transfer_dispatched[index] || self.transfer_stage[index] != Some(ordinal) {
                continue;
            }
            self.transfer_dispatched[index] = true;
            self.dispatch_streamed(index, window_start, end);
        }
        self.start_ready_chips();
    }

    /// Ships one cut activation as tiles spread across the producing
    /// stage's `[start, end]` window: the producer emits its output
    /// pixels incrementally, so tile `i` enters the fabric once its share
    /// of the stage has executed. The consumer's hand-off gate opens at
    /// the first landed tile; the remaining tiles occupy its memory port
    /// (and are tracked for the stall/overlap metrics).
    fn dispatch_streamed(&mut self, index: usize, start: u64, end: u64) {
        let transfer = self.system.transfers[index];
        let to = transfer.to_chip as usize;
        let tile = STREAM_TILE_BYTES.max(transfer.bytes.div_ceil(MAX_STREAM_TILES));
        let tiles = transfer.bytes.div_ceil(tile).max(1);
        let span = end.saturating_sub(start);
        let mut remaining = transfer.bytes;
        let mut first_landed = end;
        let mut last_landed = end;
        for i in 0..tiles {
            let size = remaining.min(tile);
            remaining -= size;
            let available = start + (span * (i + 1)) / tiles;
            let outcome =
                self.fabric.transfer(transfer.from_chip, transfer.to_chip, size, available);
            let port_start = outcome.arrival.max(self.global_port_free[to]);
            let landed = port_start + self.arch.chip().global_memory.transfer_cycles(size);
            self.global_port_free[to] = landed;
            self.landing_windows[to].push((port_start, landed));
            if let Some(profile) = &self.profile {
                profile.fabric_transfer(
                    transfer.from_chip,
                    transfer.to_chip,
                    size,
                    available,
                    outcome.arrival,
                );
                profile.port_landing(to, port_start, landed, size);
            }
            self.system_energy.interchip_pj +=
                self.energy_model.interchip.transfer_pj(size, outcome.hops);
            self.system_energy.global_memory_pj += self.energy_model.sram.global_pj(size);
            if i == 0 {
                first_landed = landed;
            }
            last_landed = landed;
        }
        self.chip_ready[to] = self.chip_ready[to].max(first_landed);
        self.last_input_landed[to] = self.last_input_landed[to].max(last_landed);
        self.incoming_remaining[to] -= 1;
    }

    /// Chooses the runnable core with the smallest local time.
    fn pick_core(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, core) in self.cores.iter().enumerate() {
            if !self.chip_started[i / self.cores_per_chip] {
                continue;
            }
            let runnable = match core.block {
                BlockReason::None => true,
                BlockReason::Recv { src } => {
                    self.channels.get(&(src, i as u32)).is_some_and(|q| !q.is_empty())
                }
                _ => false,
            };
            if runnable {
                best = match best {
                    Some(b) if self.cores[b].now <= core.now => Some(b),
                    _ => Some(i),
                };
            }
        }
        best
    }

    /// Tries to release the lowest pending barrier of every started chip.
    /// Returns whether any core was released.
    fn release_barriers(&mut self) -> bool {
        let mut released = false;
        for chip in 0..self.chip_count() {
            if self.chip_started[chip] {
                released |= self.release_barrier(chip);
            }
        }
        released
    }

    /// Releases the set of cores of `chip` waiting at its lowest pending
    /// barrier if every non-halted core of the chip has reached a barrier
    /// (barriers are chip-local: the code generator emits them per chip).
    /// Returns whether any core was released.
    fn release_barrier(&mut self, chip: usize) -> bool {
        let mut waiting: Vec<(usize, u16)> = Vec::new();
        for i in self.chip_cores(chip) {
            match self.cores[i].block {
                BlockReason::Barrier { id } => waiting.push((i, id)),
                BlockReason::Halted => {}
                _ => return false,
            }
        }
        if waiting.is_empty() {
            return false;
        }
        let min_id = waiting.iter().map(|(_, id)| *id).min().expect("non-empty");
        let members: Vec<usize> =
            waiting.iter().filter(|(_, id)| *id == min_id).map(|(i, _)| *i).collect();
        // A barrier only opens once every participant has arrived; with the
        // codegen emitting every barrier on every core of the chip this
        // means all its non-halted cores share the minimum id.
        let halted = self.chip_cores(chip).filter(|i| self.cores[*i].is_halted()).count();
        if members.len() + halted != self.cores_per_chip {
            // Some core waits at a later barrier — structurally impossible
            // with the current code generator; treat as deadlock.
            return false;
        }
        let release = members.iter().map(|i| self.cores[*i].now).max().unwrap_or(0) + 1;
        for i in members {
            self.cores[i].now = release;
            self.cores[i].block = BlockReason::None;
        }
        self.barrier_release[chip].insert(min_id, release);
        // An odd barrier id closes local stage (id - 1) / 2; under tile
        // streaming its cut activations enter the fabric now, backdated
        // across the stage window they were produced in.
        if min_id % 2 == 1 {
            let ordinal = (min_id as usize - 1) / 2;
            if let Some(profile) = &self.profile {
                let start = self.barrier_release[chip]
                    .get(&((ordinal * 2) as u16))
                    .copied()
                    .unwrap_or(self.chip_start_time[chip])
                    .min(release);
                profile.tracer.complete(
                    &format!("stage-{ordinal}"),
                    "sim.stage",
                    profile.chip_tracks[chip],
                    start,
                    release - start,
                    vec![("cores".to_owned(), AttrValue::from(self.cores_per_chip))],
                );
            }
            if self.options.handoff == HandoffMode::TileStreaming {
                self.stream_stage_transfers(chip, ordinal, release);
            }
        }
        true
    }

    fn deadlock(&self) -> SimError {
        let mut recv = Vec::new();
        let mut barrier = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            match core.block {
                BlockReason::Recv { .. } => recv.push(i as u32),
                BlockReason::Barrier { .. } => barrier.push(i as u32),
                _ => {}
            }
        }
        SimError::Deadlock { blocked_on_recv: recv, blocked_on_barrier: barrier }
    }

    /// Executes up to [`SLICE`] instructions on one core.
    fn run_slice(&mut self, index: usize) -> Result<(), SimError> {
        self.cores[index].block = BlockReason::None;
        for _ in 0..SLICE {
            if !self.cores[index].is_runnable() {
                break;
            }
            self.step(index)?;
        }
        Ok(())
    }

    /// Executes one instruction on one core.
    fn step(&mut self, index: usize) -> Result<(), SimError> {
        let pc = self.cores[index].pc;
        let program = &self.programs[index];
        let Some(&inst) = program.instructions().get(pc) else {
            self.cores[index].block = BlockReason::Halted;
            if let Some(rec) = &mut self.recorder {
                // Running past the end halts without counting as an
                // instruction; the trace keeps the distinction.
                rec.push(index, TraceOp::Halt { counted: false });
            }
            return Ok(());
        };

        // Issue cost of the three-stage pipeline front end.
        let issue_pj = self.energy_model.digital.issue_pj_per_inst;
        let unit = self.arch.core.cim_unit;
        let local = self.arch.core.local_memory;
        let vector = self.arch.core.vector_unit;
        let chip = index / self.cores_per_chip;
        // Chip-local (mesh) id; programs address peers chip-locally.
        let core_id = self.cores[index].id;

        let mut advance = true;
        let mut recorded = Recorded::Advance;
        match inst {
            Instruction::CimMvm { rows, output: _, mg, input: _ } => {
                let core = &mut self.cores[index];
                let rows_value =
                    core.read_unsigned(rows).clamp(1, u64::from(unit.rows_per_operation())) as u32;
                let issue = unit.mvm_issue_cycles(rows_value);
                let latency = unit.mvm_latency_cycles(rows_value);
                let start = core.now;
                core.occupy_macro_group(mg as usize, start, issue, latency);
                core.now += 1;
                let macs = unit.macs_per_group_operation(rows_value);
                core.energy.compute_pj += self.energy_model.cim.compute_pj(macs);
                core.energy.local_memory_pj +=
                    self.energy_model.sram.local_read_pj(u64::from(rows_value));
                let count = core.macro_groups.len().max(1);
                recorded = Recorded::Op(TraceOp::CimMvm {
                    mg: (mg as usize % count) as u32,
                    issue,
                    latency,
                });
                self.cim_ops += 1;
            }
            Instruction::CimLoad { rows, mg, weights: _ } => {
                let core = &mut self.cores[index];
                let rows_value =
                    core.read_unsigned(rows).clamp(1, u64::from(unit.rows_per_operation())) as u32;
                let cycles = unit.weight_load_cycles(rows_value);
                let start = core.now;
                core.occupy_macro_group(mg as usize, start, cycles, cycles);
                core.now += 1;
                let bytes = u64::from(rows_value) * u64::from(unit.output_channels_per_group());
                core.energy.compute_pj += self.energy_model.cim.weight_load_pj(bytes);
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes);
                let count = core.macro_groups.len().max(1);
                recorded =
                    Recorded::Op(TraceOp::CimLoad { mg: (mg as usize % count) as u32, cycles });
            }
            Instruction::CimStoreAcc { len, mg, output: _ } => {
                let core = &mut self.cores[index];
                let lanes = core.read_unsigned(len).max(1);
                let count = core.macro_groups.len().max(1);
                let ready = core.macro_groups[mg as usize % count].acc_ready;
                core.now = core.now.max(ready) + 1;
                core.energy.local_memory_pj += self.energy_model.sram.local_write_pj(lanes * 4);
                recorded = Recorded::Op(TraceOp::CimStoreAcc { mg: (mg as usize % count) as u32 });
            }
            Instruction::VecOp { len, .. }
            | Instruction::VecQuant { len, .. }
            | Instruction::VecMac { len, .. } => {
                let core = &mut self.cores[index];
                let elems = core.read_unsigned(len).max(1);
                let cycles = vector.cycles_for(elems);
                let start = core.now;
                core.occupy_vector_unit(start, cycles);
                core.now += 1;
                core.energy.compute_pj +=
                    self.energy_model.digital.vector_pj_per_elem * elems as f64;
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(elems)
                    + self.energy_model.sram.local_write_pj(elems);
                recorded = Recorded::Op(TraceOp::Vector { cycles });
                self.vector_ops += elems;
            }
            Instruction::VecPool { len, window, .. } => {
                let core = &mut self.cores[index];
                let elems = core.read_unsigned(len).max(1) * core.read_unsigned(window).max(1);
                let cycles = vector.cycles_for(elems);
                let start = core.now;
                core.occupy_vector_unit(start, cycles);
                core.now += 1;
                core.energy.compute_pj +=
                    self.energy_model.digital.vector_pj_per_elem * elems as f64;
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(elems);
                recorded = Recorded::Op(TraceOp::Vector { cycles });
                self.vector_ops += elems;
            }
            Instruction::MemCpy { src, dst, len, offset } => {
                let bytes = self.cores[index].read_unsigned(len).max(1);
                let src_addr = (self.cores[index].read(src) + i64::from(offset)).max(0) as u64;
                let dst_addr = self.cores[index].read_unsigned(dst);
                let src_global = self.address_map.is_global(src_addr);
                let dst_global = self.address_map.is_global(dst_addr);
                if src_global || dst_global {
                    let now = self.cores[index].now;
                    let mesh = &mut self.meshes[chip];
                    let outcome = if src_global {
                        mesh.transfer_from_memory(core_id, bytes, now)
                    } else {
                        mesh.transfer_to_memory(core_id, bytes, now)
                    };
                    let port_start = outcome.arrival.max(self.global_port_free[chip]);
                    let port_cycles = self.arch.chip().global_memory.transfer_cycles(bytes);
                    let completion = port_start + port_cycles;
                    self.global_port_free[chip] = completion;
                    // Profile only the *contended* port windows (the
                    // request waited behind another occupant) — the
                    // interesting signal, at a fraction of the events.
                    if port_start > outcome.arrival {
                        if let Some(profile) = &self.profile {
                            profile.tracer.complete(
                                "port-contention",
                                "sim.mem_port",
                                profile.chip_tracks[chip],
                                outcome.arrival,
                                completion - outcome.arrival,
                                vec![
                                    ("bytes".to_owned(), AttrValue::from(bytes)),
                                    (
                                        "waited".to_owned(),
                                        AttrValue::from(port_start - outcome.arrival),
                                    ),
                                ],
                            );
                        }
                    }
                    let core = &mut self.cores[index];
                    core.now = completion;
                    core.energy.global_memory_pj += self.energy_model.sram.global_pj(bytes);
                    core.energy.noc_pj += self.energy_model.noc.transfer_pj(
                        outcome.flits,
                        self.arch.chip().noc_flit_bytes,
                        outcome.hops.max(1),
                    );
                    core.energy.local_memory_pj += self.energy_model.sram.local_write_pj(bytes);
                    recorded = Recorded::Op(TraceOp::GlobalCpy {
                        bytes,
                        from_memory: src_global,
                        port_cycles,
                    });
                } else {
                    let core = &mut self.cores[index];
                    let cycles = local.transfer_cycles(bytes);
                    core.now += cycles;
                    core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes)
                        + self.energy_model.sram.local_write_pj(bytes);
                    recorded = Recorded::Op(TraceOp::LocalCpy { cycles });
                }
            }
            Instruction::Send { len, dst_core, .. } => {
                let bytes = self.cores[index].read_unsigned(len).max(1);
                let dst = self.cores[index].read_unsigned(dst_core) as u32;
                if dst >= self.cores_per_chip as u32 {
                    return Err(SimError::InvalidCore { core: dst });
                }
                let now = self.cores[index].now;
                let outcome = self.meshes[chip].transfer(core_id, dst, bytes, now);
                let dst_global = (chip * self.cores_per_chip) as u32 + dst;
                self.channels
                    .entry((index as u32, dst_global))
                    .or_default()
                    .push_back(Message { arrival: outcome.arrival, bytes });
                let core = &mut self.cores[index];
                core.now += 1;
                core.energy.noc_pj += self.energy_model.noc.transfer_pj(
                    outcome.flits,
                    self.arch.chip().noc_flit_bytes,
                    outcome.hops.max(1),
                );
                core.energy.local_memory_pj += self.energy_model.sram.local_read_pj(bytes);
                recorded = Recorded::Op(TraceOp::Send { dst, bytes, push: true });
            }
            Instruction::Recv { src_core, .. } => {
                let src = self.cores[index].read_unsigned(src_core) as u32;
                if src >= self.cores_per_chip as u32 {
                    return Err(SimError::InvalidCore { core: src });
                }
                let src_global = (chip * self.cores_per_chip) as u32 + src;
                let queue = self.channels.entry((src_global, index as u32)).or_default();
                match queue.pop_front() {
                    Some(message) => {
                        let core = &mut self.cores[index];
                        let local_cycles = local.transfer_cycles(message.bytes);
                        core.now = core.now.max(message.arrival) + local_cycles;
                        core.energy.local_memory_pj +=
                            self.energy_model.sram.local_write_pj(message.bytes);
                        recorded = Recorded::Op(TraceOp::Recv { src, local_cycles });
                    }
                    None => {
                        // Stay at this instruction until a message arrives.
                        self.cores[index].block = BlockReason::Recv { src: src_global };
                        return Ok(());
                    }
                }
            }
            Instruction::Jmp { offset } => {
                let core = &mut self.cores[index];
                core.now += 1;
                core.branch_penalty();
                core.pc = (core.pc as i64 + 1 + i64::from(offset)).max(0) as usize;
                advance = false;
                recorded = Recorded::Penalty;
            }
            Instruction::Beq { a, b, offset } | Instruction::Bne { a, b, offset } => {
                let core = &mut self.cores[index];
                let equal = core.read(a) == core.read(b);
                let taken = match inst {
                    Instruction::Beq { .. } => equal,
                    _ => !equal,
                };
                core.now += 1;
                if taken {
                    core.branch_penalty();
                    core.pc = (core.pc as i64 + 1 + i64::from(offset)).max(0) as usize;
                    advance = false;
                    recorded = Recorded::Penalty;
                }
            }
            Instruction::Barrier { id } => {
                let core = &mut self.cores[index];
                core.now += 1;
                core.pc += 1;
                core.block = BlockReason::Barrier { id };
                advance = false;
                recorded = Recorded::Op(TraceOp::Barrier { id });
            }
            Instruction::Halt => {
                self.cores[index].block = BlockReason::Halted;
                advance = false;
                recorded = Recorded::Op(TraceOp::Halt { counted: true });
            }
            Instruction::Nop => {
                self.cores[index].now += 1;
            }
            _ => {
                // Scalar instructions: functional register update, one cycle.
                let core = &mut self.cores[index];
                core.execute_scalar(&inst);
                core.now += 1;
                core.energy.control_pj += self.energy_model.digital.scalar_pj_per_op;
            }
        }

        let core = &mut self.cores[index];
        core.energy.control_pj += issue_pj;
        core.executed += 1;
        self.executed += 1;
        *self.dynamic.entry(inst.class()).or_insert(0) += 1;
        if advance {
            core.pc += 1;
        }
        if let Some(rec) = &mut self.recorder {
            match recorded {
                Recorded::Advance => rec.advance(index),
                Recorded::Penalty => rec.advance_penalty(index),
                Recorded::Op(op) => rec.push(index, op),
            }
        }
        Ok(())
    }

    /// Collects the final report.
    fn finish(self) -> SimReport {
        // The per-inference latency covers the last core's retirement and
        // the last landing of any streamed activation (a consumer cannot
        // truly finish before its inputs exist).
        let total_cycles = self
            .cores
            .iter()
            .map(|c| c.now)
            .chain(self.last_input_landed.iter().copied())
            .chain(self.chip_finish_time.iter().copied())
            .max()
            .unwrap_or(0)
            .max(1);
        let mut energy = cimflow_energy::EnergyBreakdown::new();
        for core in &self.cores {
            energy.accumulate(&core.energy);
        }
        energy.accumulate(&self.system_energy);
        energy.accumulate(&self.energy_model.static_energy(&self.arch, total_cycles));

        let mg_per_core = self.arch.core.cim_unit.macro_groups.max(1) as f64;
        let core_utilization: Vec<f64> = self
            .cores
            .iter()
            .map(|c| {
                let busy: u64 = c.macro_groups.iter().map(|m| m.busy_cycles).sum();
                (busy as f64 / mg_per_core / total_cycles as f64).min(1.0)
            })
            .collect();
        let cim_busy: u64 =
            self.cores.iter().flat_map(|c| c.macro_groups.iter().map(|m| m.busy_cycles)).sum();
        let vector_busy: u64 = self.cores.iter().map(|c| c.vector_busy_cycles).sum();

        // Per-chip busy spans: the bottleneck chip bounds the steady-state
        // pipeline throughput of a multi-chip system. On a single chip the
        // one span equals the total latency.
        let chip_finish: Vec<u64> = (0..self.chip_count())
            .map(|chip| {
                if self.chip_dispatched[chip] {
                    self.chip_finish_time[chip]
                } else {
                    self.chip_cores(chip)
                        .map(|g| self.cores[g].now)
                        .max()
                        .unwrap_or(0)
                        .max(self.last_input_landed[chip])
                }
            })
            .collect();
        let chip_cycles: Vec<u64> = chip_finish
            .iter()
            .zip(&self.chip_start_time)
            .map(|(finish, start)| finish.saturating_sub(*start))
            .collect();
        // One busy span per chip, emitted from the report's own numbers:
        // the trace's `sim.chip` durations sum to `chip_cycles` exactly.
        if let Some(profile) = &self.profile {
            for (chip, cycles) in chip_cycles.iter().enumerate() {
                profile.tracer.complete(
                    "chip-busy",
                    "sim.chip",
                    profile.chip_tracks[chip],
                    self.chip_start_time[chip],
                    *cycles,
                    vec![("chip".to_owned(), AttrValue::from(chip))],
                );
            }
        }
        // Input-stall accounting: the port time incoming tiles consumed
        // *inside* a chip's active span. In steady state those landings
        // overlap the previous inference, so the pipeline interval
        // excludes them; at-retirement hand-off lands everything before
        // the chip starts and accrues zero.
        let chip_stall_cycles: Vec<u64> = (0..self.chip_count())
            .map(|chip| {
                let (start, finish) = (self.chip_start_time[chip], chip_finish[chip]);
                self.landing_windows[chip]
                    .iter()
                    .map(|(from, to)| to.min(&finish).saturating_sub(*from.max(&start)))
                    .sum()
            })
            .collect();
        // Intra-inference overlap: how long a chip ran while its cut
        // inputs were still streaming in (zero without tile streaming).
        let chip_overlap_cycles: Vec<u64> = (0..self.chip_count())
            .map(|chip| {
                self.last_input_landed[chip]
                    .min(chip_finish[chip])
                    .saturating_sub(self.chip_start_time[chip])
            })
            .collect();

        let mut noc = NocStats::default();
        for mesh in &self.meshes {
            noc.merge(mesh.stats());
        }

        let mut report = SimReport {
            total_cycles,
            energy,
            dynamic_instructions: self
                .dynamic
                .into_iter()
                .map(|(class, count)| (class.to_string(), count))
                .collect(),
            cim_activity: UnitActivity { busy_cycles: cim_busy, operations: self.cim_ops },
            vector_activity: UnitActivity { busy_cycles: vector_busy, operations: self.vector_ops },
            noc,
            interchip: self.fabric.stats().clone(),
            core_utilization,
            chip_cycles,
            chip_stall_cycles,
            chip_overlap_cycles,
            total_macs: self.total_macs,
            frequency_mhz: 0,
            chip_count: 0,
        };
        report.attach_arch(&self.arch);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;

    fn simulate(model: cimflow_nn::Model, strategy: Strategy) -> SimReport {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&model, &arch, strategy).unwrap();
        Simulator::new(&compiled).run().unwrap()
    }

    #[test]
    fn mobilenet_simulation_completes_with_sane_metrics() {
        let report = simulate(models::mobilenet_v2(32), Strategy::DpOptimized);
        assert!(report.total_cycles > 0);
        assert!(report.energy.total_pj() > 0.0);
        assert!(report.energy.compute_pj > 0.0);
        assert!(report.energy.local_memory_pj > 0.0);
        assert!(report.energy.noc_pj > 0.0);
        assert_eq!(report.energy.interchip_pj, 0.0, "one chip never crosses the fabric");
        assert!(report.throughput_tops() > 0.0);
        assert!(report.mean_utilization() > 0.0 && report.mean_utilization() <= 1.0);
        assert!(report.total_dynamic_instructions() > 0);
        assert!(report.cim_activity.operations > 0);
        assert_eq!(report.chip_count, 1);
        assert_eq!(report.chip_cycles, vec![report.total_cycles]);
        assert_eq!(report.pipeline_interval_cycles(), report.total_cycles);
    }

    #[test]
    fn dp_strategy_is_faster_than_generic_on_compact_models() {
        let generic = simulate(models::mobilenet_v2(32), Strategy::GenericMapping);
        let dp = simulate(models::mobilenet_v2(32), Strategy::DpOptimized);
        assert!(
            dp.total_cycles < generic.total_cycles,
            "dp {} !< generic {}",
            dp.total_cycles,
            generic.total_cycles
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate(models::resnet18(32), Strategy::DpOptimized);
        let b = simulate(models::resnet18(32), Strategy::DpOptimized);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.noc, b.noc);
        assert!((a.energy.total_pj() - b.energy.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn larger_macro_groups_do_not_hurt_resnet_throughput() {
        let arch_small = ArchConfig::paper_default().with_macros_per_group(4);
        let arch_large = ArchConfig::paper_default().with_macros_per_group(16);
        let model = models::resnet18(32);
        let small =
            Simulator::new(&compile(&model, &arch_small, Strategy::GenericMapping).unwrap())
                .run()
                .unwrap();
        let large =
            Simulator::new(&compile(&model, &arch_large, Strategy::GenericMapping).unwrap())
                .run()
                .unwrap();
        assert!(large.throughput_tops() >= small.throughput_tops() * 0.9);
    }

    #[test]
    fn multichip_simulation_pipelines_across_chips() {
        let model = models::resnet18(32);
        let single = simulate(model.clone(), Strategy::DpOptimized);
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let report = Simulator::new(&compiled).run().unwrap();

        assert_eq!(report.chip_count, 2);
        assert_eq!(report.chip_cycles.len(), 2);
        assert_eq!(report.core_utilization.len(), 128);
        // The inter-chip fabric carried every cut activation byte; with
        // tile streaming one transfer may cross as several packets.
        assert!(report.interchip.packets >= compiled.system.transfers.len() as u64);
        assert_eq!(report.interchip.bytes, compiled.system.cut_bytes());
        assert!(report.energy.interchip_pj > 0.0);
        // Per-inference latency covers both chips' spans; the pipeline
        // bottleneck (one chip's span) is well below the single-chip run.
        assert!(report.total_cycles >= report.chip_cycles.iter().copied().max().unwrap());
        assert!(report.pipeline_interval_cycles() < single.total_cycles);
        // Work actually executed on both chips.
        assert!(report.chip_cycles.iter().all(|c| *c > 0));
    }

    #[test]
    fn tile_streaming_overlaps_chips_within_one_inference() {
        // VGG19's chain split cuts activations large enough to stream as
        // several tiles, so consumer chips start while producers run.
        let model = models::vgg19(32);
        let arch = ArchConfig::paper_default().with_chip_count(4);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let retire = Simulator::with_options(
            &compiled,
            SimOptions { handoff: HandoffMode::AtRetirement, ..SimOptions::default() },
        )
        .run()
        .unwrap();
        let stream = Simulator::new(&compiled).run().unwrap();

        assert_eq!(retire.total_overlap_cycles(), 0, "at-retirement never overlaps");
        assert!(stream.total_overlap_cycles() > 0, "streaming overlaps chips");
        assert!(
            stream.total_cycles < retire.total_cycles,
            "overlap shortens the per-inference latency ({} !< {})",
            stream.total_cycles,
            retire.total_cycles
        );
        assert!(
            stream.pipeline_interval_cycles() <= retire.pipeline_interval_cycles(),
            "input-landing stalls are excluded from the steady-state interval"
        );
        // Same work either way: identical dynamic instruction streams and
        // cut traffic, just re-timed.
        assert_eq!(stream.total_dynamic_instructions(), retire.total_dynamic_instructions());
        assert_eq!(stream.interchip.bytes, retire.interchip.bytes);
        assert!(stream.interchip.packets > retire.interchip.packets, "tiles are packets");
    }

    #[test]
    fn single_chip_runs_are_identical_across_handoff_modes() {
        let model = models::mobilenet_v2(32);
        let arch = ArchConfig::paper_default();
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let stream = Simulator::new(&compiled).run().unwrap();
        let retire = Simulator::with_options(
            &compiled,
            SimOptions { handoff: HandoffMode::AtRetirement, ..SimOptions::default() },
        )
        .run()
        .unwrap();
        assert_eq!(stream.total_cycles, retire.total_cycles);
        assert_eq!(stream.noc, retire.noc);
        assert!((stream.energy.total_pj() - retire.energy.total_pj()).abs() < 1e-9);
        assert_eq!(stream.chip_stall_cycles, vec![0]);
        assert_eq!(stream.chip_overlap_cycles, vec![0]);
    }

    #[test]
    fn profiled_chip_busy_spans_sum_to_the_reported_chip_cycles() {
        let model = models::vgg19(32);
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();

        let tracer = Tracer::new(1 << 16);
        let mut sim = Simulator::with_options(
            &compiled,
            SimOptions { profile: true, ..SimOptions::default() },
        );
        sim.set_tracer(&tracer);
        let report = sim.run().unwrap();

        // The acceptance contract: the trace's per-chip busy spans are
        // the report's chip spans, so their durations sum exactly.
        let busy: Vec<_> =
            tracer.events().into_iter().filter(|e| e.category == "sim.chip").collect();
        assert_eq!(busy.len(), 2, "one busy span per chip");
        assert_eq!(
            busy.iter().map(|e| e.duration).sum::<u64>(),
            report.chip_cycles.iter().sum::<u64>()
        );
        for event in &busy {
            let chip = event
                .attrs
                .iter()
                .find_map(|(k, v)| match (k.as_str(), v) {
                    ("chip", AttrValue::U64(chip)) => Some(*chip as usize),
                    _ => None,
                })
                .expect("chip attr");
            assert_eq!(event.duration, report.chip_cycles[chip]);
        }

        // Stage windows and fabric transfers landed on their categories,
        // and every timeline stays within the simulated time range.
        let events = tracer.events();
        assert!(events.iter().any(|e| e.category == "sim.stage"));
        assert!(events.iter().any(|e| e.category == "sim.fabric"));
        for event in &events {
            assert!(event.start + event.duration <= report.total_cycles);
        }
        // The exported JSON names the chip timelines.
        let json = tracer.to_chrome_json();
        assert!(json.contains("chip-0") && json.contains("chip-1") && json.contains("fabric"));
    }

    #[test]
    fn profiling_is_inert_when_disabled_or_untraced() {
        let model = models::resnet18(32);
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let compiled = compile(&model, &arch, Strategy::DpOptimized).unwrap();
        let baseline = Simulator::new(&compiled).run().unwrap();

        // profile=false with a tracer attached: no events, same timing.
        let silent = Tracer::new(1024);
        let mut sim = Simulator::new(&compiled);
        sim.set_tracer(&silent);
        let report = sim.run().unwrap();
        assert!(silent.is_empty(), "profile=false must not record");
        assert_eq!(report.total_cycles, baseline.total_cycles);

        // profile=true without a tracer: the flag alone changes nothing.
        let report = Simulator::with_options(
            &compiled,
            SimOptions { profile: true, ..SimOptions::default() },
        )
        .run()
        .unwrap();
        assert_eq!(report.total_cycles, baseline.total_cycles);
        assert_eq!(report.chip_cycles, baseline.chip_cycles);
    }

    #[test]
    fn memory_port_placement_changes_contention_not_correctness() {
        let model = models::mobilenet_v2(32);
        let arch = ArchConfig::paper_default().with_memory_port(27);
        let compiled = compile(&model, &arch, Strategy::GenericMapping).unwrap();
        let moved = Simulator::new(&compiled).run().unwrap();
        let default = simulate(model, Strategy::GenericMapping);
        assert!(moved.total_cycles > 0);
        // Same work, same dynamic instruction stream, different timing.
        assert_eq!(moved.total_dynamic_instructions(), default.total_dynamic_instructions());
        assert_ne!(moved.noc, default.noc, "the port node shapes the traffic pattern");
    }
}
