//! The simulation trace IR: one recording run of the interpreter lowered
//! into flat, typed per-core op streams that a [`ReplayEngine`](crate::ReplayEngine) can
//! re-time for many design points without re-interpreting (or even
//! re-compiling) the program.
//!
//! # Why a trace is re-timable at all
//!
//! The interpreter's per-core dynamic instruction stream is fully
//! determined by the program and the register file: no instruction ever
//! writes a register from *timing* (cycle counts) or from message
//! *content*. Branch directions, row/length operands, addresses and
//! send/recv peers all come from registers, so two simulations of the
//! same [`CompiledProgram`](cimflow_compiler::CompiledProgram) execute
//! byte-identical per-core op sequences regardless of mesh latencies,
//! memory-port placement, clock frequency or hand-off mode — only the
//! *times* at which the ops happen differ. A [`SimTrace`] is that
//! invariant sequence with every register-derived operand resolved
//! (rows → issue/latency cycles, lengths → byte counts), so replay needs
//! neither a register file nor instruction decode.
//!
//! Which [`ArchConfig`] fields may vary across the points replaying one
//! trace is exactly the contract of
//! [`ArchConfig::compile_fingerprint`]: two configurations replay the
//! same trace iff their fingerprints are equal. [`ReplayEngine::replay`](crate::ReplayEngine::replay)
//! enforces this and refuses mismatching points instead of approximating.
//!
//! # What is recorded vs recomputed
//!
//! Per-core energy that only depends on the op stream (compute, local
//! and global memory, control) is accumulated in program order during
//! recording and stored as final `f64` values — replay reuses them
//! bitwise. NoC energy depends on routing distance (the memory-port
//! node is timing-only), so replay re-accumulates it per point from its
//! own mesh outcomes, in the same program order the interpreter would.
//! Everything that is genuinely timing-dependent — clocks, port queues,
//! barrier releases, inter-chip landings, mesh/fabric statistics — is
//! recomputed per point by the replay engine with the interpreter's
//! exact rules.
//!
//! # Trace passes
//!
//! Recording itself performs *advance fusion*: runs of single-cycle
//! instructions (scalar ALU ops, nops, not-taken branches), optionally
//! terminated by one taken branch, collapse into one splittable
//! [`TraceOp::Advance`] — the bulk of the op-count reduction, since
//! control and scalar instructions dominate the dynamic mix. A
//! post-pass elides dead channel pushes (a `Send` whose message no
//! `Recv` ever pops keeps its mesh transfer but skips the queue push).
//! Two passes named in the design were evaluated and rejected as **not
//! timing-neutral**: coalescing adjacent inter-chip tiles would change
//! the fabric's packet count and per-packet head latencies, and folding
//! back-to-back barriers would drop a synchronization point that costs
//! one cycle and a release re-alignment — either would break bit-exact
//! equality with the interpreter, which this IR never trades away.

use std::collections::BTreeMap;

use cimflow_arch::ArchConfig;

/// One timing-relevant operation of a core's recorded stream.
///
/// Operand values that the interpreter read from registers arrive here
/// pre-resolved into cycle costs or byte counts using the
/// compile-affecting (hence trace-invariant) architecture parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A fused run of `insts` single-cycle instructions (scalars, nops,
    /// not-taken branches). With `penalty`, the final instruction is a
    /// taken branch or jump and costs the 2-cycle squash on top of its
    /// issue cycle. The run is splittable at instruction granularity so
    /// replay can honor the interpreter's scheduling-slice boundaries
    /// exactly: consuming `m < insts` instructions costs `m` cycles, and
    /// the penalty lands only with the last instruction.
    Advance {
        /// Number of fused instructions.
        insts: u32,
        /// Whether the final instruction pays the taken-branch penalty.
        penalty: bool,
    },
    /// A CIM matrix-vector multiply: occupies macro group `mg` for
    /// `issue` cycles with the accumulator ready after `latency`.
    CimMvm {
        /// Resolved (modulo group count) macro-group index.
        mg: u32,
        /// Issue occupancy in cycles.
        issue: u64,
        /// Result latency in cycles.
        latency: u64,
    },
    /// A CIM weight load occupying macro group `mg` for `cycles`.
    CimLoad {
        /// Resolved macro-group index.
        mg: u32,
        /// Load occupancy in cycles.
        cycles: u64,
    },
    /// Drains macro group `mg`'s accumulator (waits for `acc_ready`).
    CimStoreAcc {
        /// Resolved macro-group index.
        mg: u32,
    },
    /// A vector-unit operation occupying the unit for `cycles`.
    Vector {
        /// Unit occupancy in cycles.
        cycles: u64,
    },
    /// A local-to-local memory copy advancing the core by `cycles`.
    LocalCpy {
        /// Copy duration in cycles.
        cycles: u64,
    },
    /// A global-memory transaction over the mesh and the shared memory
    /// port.
    GlobalCpy {
        /// Transferred bytes (the mesh packet size).
        bytes: u64,
        /// Direction: `true` reads from global memory, `false` writes.
        from_memory: bool,
        /// Port occupancy in cycles (`global_memory.transfer_cycles`).
        port_cycles: u64,
    },
    /// A message send to chip-local core `dst` over the mesh.
    Send {
        /// Chip-local destination core.
        dst: u32,
        /// Message bytes (the mesh packet size).
        bytes: u64,
        /// Whether the message is ever received; dead pushes are elided
        /// by the trace pass (the mesh transfer itself always happens).
        push: bool,
    },
    /// A *successful* message receive (blocked attempts are a scheduler
    /// condition, not an op; replay re-evaluates them per point).
    Recv {
        /// Chip-local source core.
        src: u32,
        /// Cycles to copy the message into local memory.
        local_cycles: u64,
    },
    /// A barrier arrival.
    Barrier {
        /// Barrier identifier.
        id: u16,
    },
    /// End of the core's stream. `counted` distinguishes an explicit
    /// `Halt` instruction (which the interpreter counts and charges
    /// issue energy for) from running past the end of the program
    /// (which it does not); both are timing-identical.
    Halt {
        /// Whether the halt was a counted instruction.
        counted: bool,
    },
}

/// The timing-invariant final state of one core: unit busy totals and
/// the energy components whose accumulation never depends on timing.
/// Recorded once, reused bitwise by every replayed point.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CoreInvariants {
    /// Summed macro-group busy cycles (utilization numerator).
    pub mg_busy_cycles: u64,
    /// Vector-unit busy cycles.
    pub vector_busy_cycles: u64,
    /// Final compute energy in pJ.
    pub compute_pj: f64,
    /// Final local-memory energy in pJ.
    pub local_memory_pj: f64,
    /// Final global-memory energy in pJ.
    pub global_memory_pj: f64,
    /// Final control (issue + scalar) energy in pJ.
    pub control_pj: f64,
}

/// One inter-chip cut transfer of the system plan, as the replay engine
/// needs it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TraceTransfer {
    /// Producing chip.
    pub from_chip: u32,
    /// Consuming chip.
    pub to_chip: u32,
    /// Cut activation bytes.
    pub bytes: u64,
    /// Chip-local stage ordinal of the producer (streaming hand-off).
    pub stage: Option<usize>,
}

/// Statistics of the recording-time trace passes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracePasses {
    /// Dynamic instructions fused into [`TraceOp::Advance`] runs.
    pub fused_instructions: u64,
    /// `Send` ops whose channel push was elided as dead (never popped).
    pub elided_sends: u64,
}

/// A recorded simulation trace: the flat, typed per-core op streams of
/// one `(model, strategy, search, chip_count)` compile plus the
/// timing-invariant totals of its run. Produced by
/// [`Simulator::record`](crate::Simulator::record); consumed by
/// [`ReplayEngine`](crate::ReplayEngine).
///
/// A trace is valid for any [`SimOptions`](crate::SimOptions): the op
/// streams do not depend on the hand-off mode (only the engine-side
/// dispatch logic, which replay re-runs per point, does) and profiling
/// never affects timing.
#[derive(Debug, Clone)]
pub struct SimTrace {
    /// The recording configuration (all compile-affecting fields are
    /// shared with every replayable point by construction).
    pub(crate) arch: ArchConfig,
    /// `arch.compile_fingerprint()` — the share/compatibility key.
    pub(crate) fingerprint: u64,
    /// Cores per chip.
    pub(crate) cores_per_chip: usize,
    /// Chips in the system.
    pub(crate) chip_count: usize,
    /// Macro groups per core (for scoreboard sizing / index resolution).
    pub(crate) macro_groups: usize,
    /// Per-core op streams, chip-major like the interpreter's cores.
    pub(crate) ops: Vec<Vec<TraceOp>>,
    /// The system plan's inter-chip transfers.
    pub(crate) transfers: Vec<TraceTransfer>,
    /// Per producing chip: indices into `transfers`, ascending.
    pub(crate) chip_transfers: Vec<Vec<usize>>,
    /// Timing-invariant report material.
    pub(crate) dynamic_instructions: BTreeMap<String, u64>,
    /// Total CIM operations.
    pub(crate) cim_ops: u64,
    /// Total vector elements processed.
    pub(crate) vector_ops: u64,
    /// Workload MACs.
    pub(crate) total_macs: u64,
    /// Total counted dynamic instructions.
    pub(crate) executed: u64,
    /// Per-core invariant totals.
    pub(crate) core_invariants: Vec<CoreInvariants>,
    /// Pass statistics.
    pub(crate) passes: TracePasses,
}

impl SimTrace {
    /// The compile fingerprint this trace was recorded under; a point
    /// replays iff its [`ArchConfig::compile_fingerprint`] matches.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of chips the trace spans.
    pub fn chip_count(&self) -> usize {
        self.chip_count
    }

    /// Total trace ops across all cores (after fusion).
    pub fn op_count(&self) -> usize {
        self.ops.iter().map(Vec::len).sum()
    }

    /// Dynamic instructions the recording run executed — the work one
    /// interpreter pass performs that each replay pass avoids
    /// re-decoding.
    pub fn instruction_count(&self) -> u64 {
        self.executed
    }

    /// Statistics of the recording-time trace passes.
    pub fn passes(&self) -> TracePasses {
        self.passes
    }

    /// Whether `arch` can replay this trace: every compile-affecting
    /// field equal (fingerprint match). Timing-only fields are free to
    /// differ — that is the point.
    pub fn is_compatible(&self, arch: &ArchConfig) -> bool {
        arch.compile_fingerprint() == self.fingerprint
    }

    /// The configuration the trace was recorded under.
    pub fn recorded_arch(&self) -> &ArchConfig {
        &self.arch
    }
}

/// The recording hook the interpreter drives: builds per-core op
/// streams with advance fusion as instructions execute.
#[derive(Debug)]
pub(crate) struct TraceRecorder {
    /// Per-core op streams under construction.
    pub(crate) ops: Vec<Vec<TraceOp>>,
    /// Per core: single-cycle instructions awaiting fusion.
    pending: Vec<u32>,
    /// Instructions fused into `Advance` runs so far.
    fused: u64,
}

impl TraceRecorder {
    pub(crate) fn new(cores: usize) -> Self {
        TraceRecorder { ops: vec![Vec::new(); cores], pending: vec![0; cores], fused: 0 }
    }

    /// Records one single-cycle instruction (fused lazily).
    pub(crate) fn advance(&mut self, core: usize) {
        self.pending[core] += 1;
    }

    /// Records a taken branch / jump: one instruction plus the 2-cycle
    /// penalty, terminating the current fused run.
    pub(crate) fn advance_penalty(&mut self, core: usize) {
        self.pending[core] += 1;
        let insts = std::mem::take(&mut self.pending[core]);
        self.fused += u64::from(insts);
        self.ops[core].push(TraceOp::Advance { insts, penalty: true });
    }

    /// Records a non-fusible op, flushing any pending fused run first.
    pub(crate) fn push(&mut self, core: usize, op: TraceOp) {
        self.flush(core);
        self.ops[core].push(op);
    }

    /// Flushes the pending fused run of one core.
    pub(crate) fn flush(&mut self, core: usize) {
        let insts = std::mem::take(&mut self.pending[core]);
        if insts > 0 {
            self.fused += u64::from(insts);
            self.ops[core].push(TraceOp::Advance { insts, penalty: false });
        }
    }

    /// Finalizes the streams: flushes every core and runs the
    /// dead-channel-push elision pass. Returns the streams and the pass
    /// statistics.
    pub(crate) fn finish(mut self, cores_per_chip: usize) -> (Vec<Vec<TraceOp>>, TracePasses) {
        for core in 0..self.ops.len() {
            self.flush(core);
        }
        let elided = elide_dead_pushes(&mut self.ops, cores_per_chip);
        (self.ops, TracePasses { fused_instructions: self.fused, elided_sends: elided })
    }
}

/// Marks `push: false` on every `Send` whose message is never popped by
/// a matching `Recv`. Channels are single-writer single-reader FIFOs
/// keyed by (global sender, global receiver): the k-th pop always takes
/// the k-th push regardless of arrival times, so any push past the
/// reader's total pop count is dead for every replayed point. The mesh
/// transfer (timing + energy) is kept — only the queue push goes.
fn elide_dead_pushes(ops: &mut [Vec<TraceOp>], cores_per_chip: usize) -> u64 {
    let mut recvs: BTreeMap<(u32, u32), u64> = BTreeMap::new();
    for (receiver, stream) in ops.iter().enumerate() {
        let chip_base = (receiver / cores_per_chip * cores_per_chip) as u32;
        for op in stream {
            if let TraceOp::Recv { src, .. } = op {
                *recvs.entry((chip_base + src, receiver as u32)).or_insert(0) += 1;
            }
        }
    }
    let mut elided = 0;
    for (sender, stream) in ops.iter_mut().enumerate() {
        let chip_base = (sender / cores_per_chip * cores_per_chip) as u32;
        let mut sent: BTreeMap<u32, u64> = BTreeMap::new();
        for op in stream {
            if let TraceOp::Send { dst, push, .. } = op {
                let key = (sender as u32, chip_base + *dst);
                let seq = sent.entry(*dst).or_insert(0);
                *seq += 1;
                if *seq > recvs.get(&key).copied().unwrap_or(0) {
                    *push = false;
                    elided += 1;
                }
            }
        }
    }
    elided
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_fusion_splits_on_non_fusible_ops_and_penalties() {
        let mut rec = TraceRecorder::new(1);
        rec.advance(0);
        rec.advance(0);
        rec.advance_penalty(0);
        rec.advance(0);
        rec.push(0, TraceOp::Barrier { id: 3 });
        rec.push(0, TraceOp::Halt { counted: true });
        let (ops, passes) = rec.finish(1);
        assert_eq!(
            ops[0],
            vec![
                TraceOp::Advance { insts: 3, penalty: true },
                TraceOp::Advance { insts: 1, penalty: false },
                TraceOp::Barrier { id: 3 },
                TraceOp::Halt { counted: true },
            ]
        );
        assert_eq!(passes.fused_instructions, 4);
    }

    #[test]
    fn dead_sends_lose_their_push_but_stay_in_the_stream() {
        // Core 0 sends twice to core 1, which receives only once: the
        // second push is dead; the op (and its mesh transfer) remains.
        let mut ops = vec![
            vec![
                TraceOp::Send { dst: 1, bytes: 64, push: true },
                TraceOp::Send { dst: 1, bytes: 64, push: true },
            ],
            vec![TraceOp::Recv { src: 0, local_cycles: 2 }],
        ];
        let elided = elide_dead_pushes(&mut ops, 2);
        assert_eq!(elided, 1);
        assert_eq!(ops[0][0], TraceOp::Send { dst: 1, bytes: 64, push: true });
        assert_eq!(ops[0][1], TraceOp::Send { dst: 1, bytes: 64, push: false });
    }
}
