//! Per-core execution state: the three-stage pipeline abstraction, the
//! register file, the unit scoreboard and per-core statistics.

use cimflow_arch::ArchConfig;
use cimflow_energy::EnergyBreakdown;
use cimflow_isa::{GReg, Instruction, SReg};

/// Why a core is currently unable to advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The core is runnable.
    None,
    /// Waiting for a message from the given source core.
    Recv {
        /// The sender the core is waiting for.
        src: u32,
    },
    /// Waiting at a barrier.
    Barrier {
        /// The barrier identifier.
        id: u16,
    },
    /// The program has halted.
    Halted,
}

/// Scoreboard entry of one macro group.
#[derive(Debug, Clone, Copy, Default)]
pub struct MacroGroupState {
    /// The macro group is busy issuing an MVM until this cycle.
    pub busy_until: u64,
    /// Its accumulator holds the result of the last MVM at this cycle.
    pub acc_ready: u64,
    /// Cumulative busy cycles (utilization accounting).
    pub busy_cycles: u64,
}

/// The execution state of one core.
#[derive(Debug, Clone)]
pub struct CoreState {
    /// Core identifier.
    pub id: u32,
    /// Program counter.
    pub pc: usize,
    /// Local cycle counter (fetch/decode overhead is folded into the
    /// single-cycle issue of every instruction).
    pub now: u64,
    /// General-purpose register file.
    pub regs: [i64; 32],
    /// Special registers.
    pub sregs: [i64; 8],
    /// Per-macro-group scoreboard.
    pub macro_groups: Vec<MacroGroupState>,
    /// The vector unit is busy until this cycle.
    pub vector_busy_until: u64,
    /// Cumulative vector-unit busy cycles.
    pub vector_busy_cycles: u64,
    /// Why the core cannot advance.
    pub block: BlockReason,
    /// Energy charged to this core.
    pub energy: EnergyBreakdown,
    /// Dynamically executed instructions.
    pub executed: u64,
}

impl CoreState {
    /// Creates an idle core.
    pub fn new(id: u32, arch: &ArchConfig) -> Self {
        let mut sregs = [0i64; 8];
        sregs[SReg::CoreId.index() as usize] = i64::from(id);
        CoreState {
            id,
            pc: 0,
            now: 0,
            regs: [0; 32],
            sregs,
            macro_groups: vec![
                MacroGroupState::default();
                arch.core.cim_unit.macro_groups as usize
            ],
            vector_busy_until: 0,
            vector_busy_cycles: 0,
            block: BlockReason::None,
            energy: EnergyBreakdown::new(),
            executed: 0,
        }
    }

    /// Reads a general register (the zero register always reads zero).
    pub fn read(&self, reg: GReg) -> i64 {
        if reg == GReg::ZERO {
            0
        } else {
            self.regs[reg.index() as usize]
        }
    }

    /// Reads a general register as an unsigned byte count / address.
    pub fn read_unsigned(&self, reg: GReg) -> u64 {
        self.read(reg).max(0) as u64
    }

    /// Writes a general register (writes to the zero register are ignored).
    pub fn write(&mut self, reg: GReg, value: i64) {
        if reg != GReg::ZERO {
            self.regs[reg.index() as usize] = value;
        }
    }

    /// Whether the core has halted.
    pub fn is_halted(&self) -> bool {
        self.block == BlockReason::Halted
    }

    /// Whether the core can currently advance.
    pub fn is_runnable(&self) -> bool {
        self.block == BlockReason::None
    }

    /// Applies the taken-branch penalty of the three-stage pipeline
    /// (fetch and decode of the wrong-path instructions are squashed).
    pub fn branch_penalty(&mut self) {
        self.now += 2;
    }

    /// Marks `cycles` of occupancy on the given macro group starting at
    /// `start`, returning the completion times `(issue_done, result_ready)`.
    pub fn occupy_macro_group(
        &mut self,
        index: usize,
        start: u64,
        issue_cycles: u64,
        latency: u64,
    ) -> (u64, u64) {
        let count = self.macro_groups.len().max(1);
        let mg = &mut self.macro_groups[index % count];
        let begin = start.max(mg.busy_until);
        mg.busy_until = begin + issue_cycles;
        mg.acc_ready = begin + latency;
        mg.busy_cycles += issue_cycles;
        (mg.busy_until, mg.acc_ready)
    }

    /// Marks the vector unit busy for `cycles` starting at `start`,
    /// returning the completion time.
    pub fn occupy_vector_unit(&mut self, start: u64, cycles: u64) -> u64 {
        let begin = start.max(self.vector_busy_until);
        self.vector_busy_until = begin + cycles;
        self.vector_busy_cycles += cycles;
        self.vector_busy_until
    }

    /// Executes the functional (register-file) effect of a scalar
    /// instruction. Non-scalar instructions are handled by the engine.
    pub fn execute_scalar(&mut self, inst: &Instruction) {
        match *inst {
            Instruction::ScAlu { op, dst, a, b } => {
                let value = op.eval(self.read(a) as i32, self.read(b) as i32);
                self.write(dst, i64::from(value));
            }
            Instruction::ScAlui { op, dst, src, imm } => {
                let value = op.eval(self.read(src) as i32, i32::from(imm));
                self.write(dst, i64::from(value));
            }
            Instruction::ScLi { dst, imm } => self.write(dst, i64::from(imm)),
            Instruction::ScLui { dst, imm } => {
                let low = self.read(dst) as u32 & 0xFFFF;
                self.write(dst, i64::from((u32::from(imm) << 16) | low));
            }
            Instruction::ScRdSpecial { dst, sreg } => {
                self.write(dst, self.sregs[sreg.index() as usize]);
            }
            Instruction::ScWrSpecial { sreg, src } => {
                self.sregs[sreg.index() as usize] = self.read(src);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_isa::ScalarAluOp;

    fn core() -> CoreState {
        CoreState::new(3, &ArchConfig::paper_default())
    }

    fn g(i: u8) -> GReg {
        GReg::new(i).unwrap()
    }

    #[test]
    fn register_semantics() {
        let mut c = core();
        c.write(g(5), 42);
        assert_eq!(c.read(g(5)), 42);
        c.write(GReg::ZERO, 99);
        assert_eq!(c.read(GReg::ZERO), 0);
        assert_eq!(c.read_unsigned(g(5)), 42);
        c.write(g(5), -7);
        assert_eq!(c.read_unsigned(g(5)), 0);
    }

    #[test]
    fn scalar_execution_updates_registers() {
        let mut c = core();
        c.execute_scalar(&Instruction::ScLi { dst: g(1), imm: 0x1234 });
        c.execute_scalar(&Instruction::ScLui { dst: g(1), imm: 0x6 });
        assert_eq!(c.read(g(1)), 0x0006_1234);
        c.execute_scalar(&Instruction::ScAlui {
            op: ScalarAluOp::Add,
            dst: g(2),
            src: g(1),
            imm: 4,
        });
        assert_eq!(c.read(g(2)), 0x0006_1238);
        c.execute_scalar(&Instruction::ScAlu { op: ScalarAluOp::Sub, dst: g(3), a: g(2), b: g(1) });
        assert_eq!(c.read(g(3)), 4);
        c.execute_scalar(&Instruction::ScRdSpecial { dst: g(4), sreg: SReg::CoreId });
        assert_eq!(c.read(g(4)), 3);
        c.execute_scalar(&Instruction::ScWrSpecial { sreg: SReg::StageId, src: g(3) });
        assert_eq!(c.sregs[SReg::StageId.index() as usize], 4);
    }

    #[test]
    fn macro_group_scoreboard_serializes_back_to_back_mvms() {
        let mut c = core();
        let (busy1, ready1) = c.occupy_macro_group(0, 10, 256, 262);
        assert_eq!(busy1, 266);
        assert_eq!(ready1, 272);
        // A second MVM on the same group waits for the first issue to drain.
        let (busy2, _) = c.occupy_macro_group(0, 20, 256, 262);
        assert_eq!(busy2, 266 + 256);
        // A different group is independent.
        let (busy3, _) = c.occupy_macro_group(1, 20, 256, 262);
        assert_eq!(busy3, 20 + 256);
        assert_eq!(c.macro_groups[0].busy_cycles, 512);
    }

    #[test]
    fn vector_unit_occupancy_accumulates() {
        let mut c = core();
        assert_eq!(c.occupy_vector_unit(5, 10), 15);
        assert_eq!(c.occupy_vector_unit(0, 10), 25);
        assert_eq!(c.vector_busy_cycles, 20);
    }

    #[test]
    fn block_states() {
        let mut c = core();
        assert!(c.is_runnable());
        c.block = BlockReason::Recv { src: 7 };
        assert!(!c.is_runnable());
        assert!(!c.is_halted());
        c.block = BlockReason::Halted;
        assert!(c.is_halted());
        let before = c.now;
        c.block = BlockReason::None;
        c.branch_penalty();
        assert_eq!(c.now, before + 2);
    }
}
