//! The detailed simulation report: latency, energy breakdown, utilization
//! and traffic statistics (the paper's "Detailed Report" output).

use std::collections::BTreeMap;
use std::fmt;

use cimflow_arch::ArchConfig;
use cimflow_energy::EnergyBreakdown;
use cimflow_noc::NocStats;
use serde::{Deserialize, Serialize};

/// Busy-cycle accounting of one execution unit family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UnitActivity {
    /// Cycles during which at least one instance of the unit was busy.
    pub busy_cycles: u64,
    /// Operations executed by the unit.
    pub operations: u64,
}

/// The result of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total execution latency in cycles (the slowest core's finish time).
    pub total_cycles: u64,
    /// Per-component energy in picojoules.
    pub energy: EnergyBreakdown,
    /// Dynamically executed instructions per operation class (keyed by the
    /// class name: `cim`, `vector`, `scalar`, `communication`, `control`).
    pub dynamic_instructions: BTreeMap<String, u64>,
    /// Aggregate macro-group busy cycles across all cores.
    pub cim_activity: UnitActivity,
    /// Aggregate vector-unit activity across all cores.
    pub vector_activity: UnitActivity,
    /// NoC traffic statistics, aggregated over all chips' meshes.
    pub noc: NocStats,
    /// Inter-chip fabric traffic statistics (all-zero on one chip).
    pub interchip: NocStats,
    /// Per-core busy fraction (0..1) relative to the total latency,
    /// chip-major across all chips.
    pub core_utilization: Vec<f64>,
    /// Active span of each chip (finish minus start); one entry equal to
    /// [`SimReport::total_cycles`] on a single chip.
    pub chip_cycles: Vec<u64>,
    /// Per chip: memory-port cycles its incoming cut activations consumed
    /// *inside* its active span (tile-streaming hand-off only; zero under
    /// transfer-at-retirement, where every input lands before the chip
    /// starts). The steady-state pipeline interval excludes these — in a
    /// saturated pipeline the landings overlap the previous inference.
    pub chip_stall_cycles: Vec<u64>,
    /// Per chip: cycles it ran while its cut inputs were still streaming
    /// in — the intra-inference overlap the tile-granular hand-off wins
    /// over transfer-at-retirement (always zero for the latter).
    pub chip_overlap_cycles: Vec<u64>,
    /// Multiply-accumulate operations represented by the workload.
    pub total_macs: u64,
    /// Clock frequency used for time/throughput conversions, in MHz.
    pub frequency_mhz: u32,
    /// Number of chips the workload ran on.
    pub chip_count: u32,
}

impl SimReport {
    /// Execution latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.total_cycles as f64 / (f64::from(self.frequency_mhz.max(1)) * 1.0e6)
    }

    /// Achieved throughput in tera-operations per second (2 ops per MAC),
    /// i.e. the metric plotted on the Fig. 6 / Fig. 7 throughput axes.
    pub fn throughput_tops(&self) -> f64 {
        let seconds = self.latency_seconds();
        if seconds <= 0.0 {
            return 0.0;
        }
        (self.total_macs as f64 * 2.0) / seconds / 1.0e12
    }

    /// Total energy in millijoules (the Fig. 6 energy axis).
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy efficiency in TOPS per watt.
    pub fn tops_per_watt(&self) -> f64 {
        let joules = self.energy.total_pj() * 1.0e-12;
        if joules <= 0.0 {
            return 0.0;
        }
        (self.total_macs as f64 * 2.0) / joules / 1.0e12
    }

    /// Steady-state pipeline initiation interval in cycles: the busy span
    /// of the bottleneck chip — its active span minus the input-landing
    /// stalls that vanish once consecutive inferences overlap. On a
    /// single chip this is the total latency; on a multi-chip pipeline
    /// one inference completes every interval.
    pub fn pipeline_interval_cycles(&self) -> u64 {
        self.chip_cycles
            .iter()
            .enumerate()
            .map(|(chip, span)| {
                span.saturating_sub(self.chip_stall_cycles.get(chip).copied().unwrap_or(0))
            })
            .max()
            .unwrap_or(self.total_cycles)
            .max(1)
    }

    /// Total intra-inference overlap across chips: cycles chips spent
    /// executing while their cut inputs were still streaming in. Zero on
    /// a single chip and under the transfer-at-retirement hand-off.
    pub fn total_overlap_cycles(&self) -> u64 {
        self.chip_overlap_cycles.iter().sum()
    }

    /// Steady-state pipelined throughput in TOPS: the rate sustained when
    /// consecutive inferences stream through the chip pipeline (equals
    /// [`SimReport::throughput_tops`] on one chip).
    pub fn pipelined_throughput_tops(&self) -> f64 {
        let seconds =
            self.pipeline_interval_cycles() as f64 / (f64::from(self.frequency_mhz.max(1)) * 1.0e6);
        if seconds <= 0.0 {
            return 0.0;
        }
        (self.total_macs as f64 * 2.0) / seconds / 1.0e12
    }

    /// Mean core utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.core_utilization.is_empty() {
            return 0.0;
        }
        self.core_utilization.iter().sum::<f64>() / self.core_utilization.len() as f64
    }

    /// Total dynamically executed instructions.
    pub fn total_dynamic_instructions(&self) -> u64 {
        self.dynamic_instructions.values().sum()
    }

    /// Records the architecture-derived constants of the run.
    pub(crate) fn attach_arch(&mut self, arch: &ArchConfig) {
        self.frequency_mhz = arch.chip().frequency_mhz;
        self.chip_count = arch.chip_count();
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cycles:          {}", self.total_cycles)?;
        writeln!(f, "latency:         {:.3} ms", self.latency_seconds() * 1e3)?;
        writeln!(f, "throughput:      {:.3} TOPS", self.throughput_tops())?;
        writeln!(f, "energy:          {:.3} mJ", self.energy_mj())?;
        writeln!(f, "  compute:       {:.3} mJ", self.energy.compute_pj * 1e-9)?;
        writeln!(f, "  local memory:  {:.3} mJ", self.energy.local_memory_pj * 1e-9)?;
        writeln!(f, "  noc:           {:.3} mJ", self.energy.noc_pj * 1e-9)?;
        writeln!(f, "  global memory: {:.3} mJ", self.energy.global_memory_pj * 1e-9)?;
        writeln!(f, "  control:       {:.3} mJ", self.energy.control_pj * 1e-9)?;
        if self.chip_count > 1 {
            writeln!(f, "  inter-chip:    {:.3} mJ", self.energy.interchip_pj * 1e-9)?;
            writeln!(f, "chips:           {}", self.chip_count)?;
            writeln!(f, "pipeline intvl.: {} cycles", self.pipeline_interval_cycles())?;
            writeln!(f, "pipelined tput.: {:.3} TOPS", self.pipelined_throughput_tops())?;
            writeln!(f, "chip overlap:    {} cycles", self.total_overlap_cycles())?;
        }
        writeln!(f, "mean core util.: {:.1} %", self.mean_utilization() * 100.0)?;
        writeln!(f, "dyn. instr.:     {}", self.total_dynamic_instructions())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        SimReport {
            total_cycles: 1_000_000,
            energy: EnergyBreakdown {
                compute_pj: 4.0e9,
                local_memory_pj: 2.0e9,
                noc_pj: 1.0e9,
                global_memory_pj: 0.5e9,
                control_pj: 0.5e9,
                ..EnergyBreakdown::default()
            },
            total_macs: 1_800_000_000,
            frequency_mhz: 1000,
            chip_count: 1,
            core_utilization: vec![0.5, 0.25, 0.75],
            chip_cycles: vec![1_000_000],
            ..SimReport::default()
        }
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = sample();
        assert!((r.latency_seconds() - 1.0e-3).abs() < 1e-12);
        // 3.6 GOP in 1 ms = 3.6 TOPS.
        assert!((r.throughput_tops() - 3.6).abs() < 1e-9);
        assert!((r.energy_mj() - 8.0).abs() < 1e-9);
        assert!(r.tops_per_watt() > 0.0);
        assert!((r.mean_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn zero_report_is_well_behaved() {
        let r = SimReport::default();
        assert_eq!(r.throughput_tops(), 0.0);
        assert_eq!(r.tops_per_watt(), 0.0);
        assert_eq!(r.mean_utilization(), 0.0);
        assert_eq!(r.total_dynamic_instructions(), 0);
        assert_eq!(r.pipelined_throughput_tops(), 0.0);
        assert_eq!(r.pipeline_interval_cycles(), 1, "the interval never divides by zero");
    }

    #[test]
    fn pipeline_metrics_follow_the_bottleneck_chip() {
        let mut r = sample();
        assert_eq!(r.pipeline_interval_cycles(), r.total_cycles);
        assert!((r.pipelined_throughput_tops() - r.throughput_tops()).abs() < 1e-12);
        // Two chips whose spans halve the bottleneck double the rate.
        r.chip_count = 2;
        r.chip_cycles = vec![500_000, 400_000];
        assert_eq!(r.pipeline_interval_cycles(), 500_000);
        assert!(r.pipelined_throughput_tops() > r.throughput_tops());
        let text = r.to_string();
        assert!(text.contains("pipeline intvl."));
        assert!(text.contains("inter-chip"));
    }

    #[test]
    fn display_reports_all_components() {
        let text = sample().to_string();
        for needle in ["cycles", "throughput", "local memory", "noc", "global memory"] {
            assert!(text.contains(needle), "missing `{needle}`");
        }
    }

    #[test]
    fn serde_round_trip() {
        let r = sample();
        let back: SimReport = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
