//! Serving mode: online inference traffic over the cycle engine.
//!
//! [`Simulator::serve`] drives the `cimflow-traffic` request queue +
//! dynamic batcher with timing taken from the cycle engine itself:
//! each served model is either interpreted and recorded once
//! ([`Simulator::record`]) or — when the caller already holds a
//! recorded [`SimTrace`] whose key matches — re-timed through the
//! [`ReplayEngine`]. Either way the engine runs **once per model, not
//! once per request**: the replayed report is bit-exact for every
//! batch of the same model on the same architecture (that is the PR 7
//! replay guarantee), so steady-state serving reuses it instead of
//! re-interpreting the program per dispatch.
//!
//! Consequences worth spelling out:
//!
//! * On an idle system a request's end-to-end latency is **exactly**
//!   the single-inference `SimReport::total_cycles` of its model — the
//!   queueing arithmetic is integer ticks (cycles), so serving results
//!   at low load are bit-consistent with the classic one-inference
//!   report.
//! * Saturation throughput approaches one inference per
//!   `SimReport::pipeline_interval_cycles` for a single model — the
//!   same steady-state bound `pipelined_throughput_tops` reports.
//! * Model switches drain the chip pipeline; the dynamic batcher
//!   exists to amortize exactly that cost under co-location.

use cimflow_arch::ArchConfig;
use cimflow_compiler::CompiledProgram;
use cimflow_obs::{HistogramSnapshot, MetricsRegistry};
use cimflow_traffic::{run_queue, ModelTiming, WorkloadSpec};

use crate::engine::{SimOptions, Simulator};
use crate::error::SimError;
use crate::replay::ReplayEngine;
use crate::report::SimReport;
use crate::trace::SimTrace;

/// Longest queue-depth timeline kept on a [`ServingReport`] (older
/// samples are decimated, never dropped from one end).
const TIMELINE_CAP: usize = 256;

/// Where a served model's program comes from.
#[derive(Debug)]
pub enum ServeSource<'a> {
    /// A compiled program: interpreted + recorded once by the driver.
    Compiled(&'a CompiledProgram),
    /// An already-recorded trace, re-timed for `arch` (which must share
    /// the recording's
    /// [`compile_fingerprint`](ArchConfig::compile_fingerprint)).
    Trace {
        /// The recorded trace.
        trace: &'a SimTrace,
        /// The architecture to re-time it for.
        arch: ArchConfig,
    },
}

/// One model taking part in a serving run.
#[derive(Debug)]
pub struct ServeModel<'a> {
    /// Display name (also the `model` label of serving metrics).
    pub name: String,
    /// The program source.
    pub source: ServeSource<'a>,
}

impl<'a> ServeModel<'a> {
    /// A served model from a compiled program.
    pub fn compiled(name: impl Into<String>, program: &'a CompiledProgram) -> Self {
        ServeModel { name: name.into(), source: ServeSource::Compiled(program) }
    }

    /// A served model from a recorded trace re-timed for `arch`.
    pub fn traced(name: impl Into<String>, trace: &'a SimTrace, arch: ArchConfig) -> Self {
        ServeModel { name: name.into(), source: ServeSource::Trace { trace, arch } }
    }
}

/// Exact latency statistics in cycles (computed from the full sorted
/// sample, nearest-rank quantiles — no binning error).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencyStats {
    /// Smallest observed latency.
    pub min: u64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
    /// Largest observed latency.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    fn from_sorted(sorted: &[u64]) -> Self {
        if sorted.is_empty() {
            return LatencyStats { min: 0, p50: 0, p99: 0, max: 0, mean: 0.0 };
        }
        let rank = |q: f64| {
            let n = sorted.len();
            let index = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
            sorted[index]
        };
        LatencyStats {
            min: sorted[0],
            p50: rank(0.50),
            p99: rank(0.99),
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
        }
    }
}

/// Per-model serving results.
#[derive(Debug, Clone)]
pub struct ModelServing {
    /// Model name.
    pub model: String,
    /// Requests served (open loop: everything offered completes).
    pub requests: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Mean batch size.
    pub mean_batch: f64,
    /// Exact end-to-end latency statistics in cycles.
    pub latency: LatencyStats,
    /// The same latencies (in µs) through a `cimflow-obs` histogram —
    /// the serving counterpart of the wire metrics surface.
    pub histogram: HistogramSnapshot,
    /// The model's single-inference report on this design point
    /// (recorded or bit-exactly replayed — never approximated).
    pub single: SimReport,
    /// Dynamic energy under load: requests × single-inference energy,
    /// in millijoules.
    pub energy_mj: f64,
}

/// The result of one serving run: SLO metrics under open-loop load.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Offered request rate (requests per second, all models).
    pub offered_qps: u64,
    /// Clock frequency the cycle↔time conversion uses.
    pub frequency_mhz: u32,
    /// Requests served.
    pub requests: u64,
    /// Aggregate latency statistics in cycles (all models).
    pub latency: LatencyStats,
    /// Achieved goodput: completed requests over the serving makespan.
    pub goodput_qps: f64,
    /// Pipeline-bound saturation rate of the offered mix: one request
    /// per mix-weighted `pipeline_interval_cycles` (drain costs at
    /// model switches push the achievable rate slightly below this).
    pub saturation_qps: f64,
    /// Dynamic energy under load (all models), in millijoules.
    pub energy_mj: f64,
    /// Deepest request backlog observed.
    pub peak_queue_depth: u64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Cycle of the last completion.
    pub makespan_cycles: u64,
    /// `(cycle, queued)` backlog samples at dispatch points, decimated
    /// to at most 256 entries.
    pub queue_depth_timeline: Vec<(u64, u64)>,
    /// Per-model breakdown, in the order the models were passed.
    pub per_model: Vec<ModelServing>,
}

impl ServingReport {
    /// Converts cycles to microseconds at the serving frequency.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / f64::from(self.frequency_mhz)
    }

    /// Aggregate median latency in µs.
    pub fn p50_latency_us(&self) -> f64 {
        self.cycles_to_us(self.latency.p50)
    }

    /// Aggregate 99th-percentile latency in µs.
    pub fn p99_latency_us(&self) -> f64 {
        self.cycles_to_us(self.latency.p99)
    }

    /// Aggregate worst-case latency in µs.
    pub fn max_latency_us(&self) -> f64 {
        self.cycles_to_us(self.latency.max)
    }

    /// Serving makespan in µs.
    pub fn makespan_us(&self) -> f64 {
        self.cycles_to_us(self.makespan_cycles)
    }
}

impl std::fmt::Display for ServingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "serving @ {} qps: {} requests, goodput {:.1} qps (saturation ~{:.1}), \
             p50 {:.1} us, p99 {:.1} us, max {:.1} us, mean batch {:.2}, peak queue {}, \
             energy {:.3} mJ",
            self.offered_qps,
            self.requests,
            self.goodput_qps,
            self.saturation_qps,
            self.p50_latency_us(),
            self.p99_latency_us(),
            self.max_latency_us(),
            self.mean_batch,
            self.peak_queue_depth,
            self.energy_mj
        )?;
        for m in &self.per_model {
            writeln!(
                f,
                "  {}: {} requests in {} batches, p50 {:.1} us, p99 {:.1} us, max {:.1} us",
                m.model,
                m.requests,
                m.batches,
                self.cycles_to_us(m.latency.p50),
                self.cycles_to_us(m.latency.p99),
                self.cycles_to_us(m.latency.max),
            )?;
        }
        Ok(())
    }
}

impl Simulator {
    /// Serves an open-loop workload over one (multi-chip) system
    /// time-shared by `models`, at `offered_qps` requests per second.
    ///
    /// See the `serving` module docs for the execution model. The run is
    /// deterministic: one `(models, workload, qps, options)` tuple, one
    /// report.
    ///
    /// # Errors
    ///
    /// [`SimError::Traffic`] for invalid workloads (zero rate, bad mix,
    /// unusable trace file, mismatched frequencies across models);
    /// [`SimError::TraceMismatch`] when a supplied trace cannot replay
    /// on its architecture; plus any error of the underlying engine
    /// runs.
    pub fn serve(
        models: &[ServeModel<'_>],
        workload: &WorkloadSpec,
        offered_qps: u64,
        options: SimOptions,
    ) -> Result<ServingReport, SimError> {
        Self::serve_observed(models, workload, offered_qps, options, None)
    }

    /// [`Simulator::serve`] recording `traffic.*` metrics (request and
    /// batch counters, per-model latency and queue-wait histograms in
    /// µs, the peak queue depth gauge) into `metrics`.
    ///
    /// # Errors
    ///
    /// See [`Simulator::serve`].
    pub fn serve_observed(
        models: &[ServeModel<'_>],
        workload: &WorkloadSpec,
        offered_qps: u64,
        options: SimOptions,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<ServingReport, SimError> {
        let singles = Self::resolve_singles(models, options)?;
        Self::serve_from_singles(models, singles, workload, offered_qps, metrics)
    }

    /// Serves the same co-located mix at every rate of a ladder, running
    /// the cycle engine **once per model for the whole ladder** — the
    /// single-inference reports are resolved up front and reused across
    /// every rate, so an N-rung `--objective p99` ladder costs one replay
    /// per model instead of N. Each rung gets its own result (e.g. a
    /// zero-QPS rung errors individually without failing the ladder).
    ///
    /// # Errors
    ///
    /// Fails as a whole only when the singles cannot be resolved (see
    /// [`Simulator::serve`] for the conditions); per-rate failures land
    /// in the corresponding slot of the returned vector.
    pub fn serve_ladder(
        models: &[ServeModel<'_>],
        workload: &WorkloadSpec,
        rates: &[u64],
        options: SimOptions,
    ) -> Result<Vec<Result<ServingReport, SimError>>, SimError> {
        let singles = Self::resolve_singles(models, options)?;
        Ok(rates
            .iter()
            .map(|&qps| Self::serve_from_singles(models, singles.clone(), workload, qps, None))
            .collect())
    }

    /// One engine run per model — recorded or replayed, never per
    /// request. The replayed report is bit-exact for every batch of
    /// the model (same trace key, same arch), so it is computed once
    /// and reused across all of them (and, via [`Simulator::serve_ladder`],
    /// across every rung of a rate ladder).
    fn resolve_singles(
        models: &[ServeModel<'_>],
        options: SimOptions,
    ) -> Result<Vec<SimReport>, SimError> {
        if models.is_empty() {
            return Err(SimError::Traffic { detail: "no models to serve".to_owned() });
        }
        let mut singles = Vec::with_capacity(models.len());
        for model in models {
            let report = match &model.source {
                ServeSource::Compiled(compiled) => {
                    let (trace, recorded) = Simulator::record_with_options(compiled, options)?;
                    let replayed = ReplayEngine::new(&trace).replay(&compiled.arch, options)?;
                    debug_assert_eq!(
                        recorded.total_cycles, replayed.total_cycles,
                        "replay must be bit-exact on the recording arch"
                    );
                    replayed
                }
                ServeSource::Trace { trace, arch } => {
                    ReplayEngine::new(trace).replay(arch, options)?
                }
            };
            singles.push(report);
        }
        Ok(singles)
    }

    /// Queueing + report assembly from already-resolved single-inference
    /// reports (pure integer-tick arithmetic; no engine runs).
    fn serve_from_singles(
        models: &[ServeModel<'_>],
        singles: Vec<SimReport>,
        workload: &WorkloadSpec,
        offered_qps: u64,
        metrics: Option<&MetricsRegistry>,
    ) -> Result<ServingReport, SimError> {
        let frequency_mhz = singles[0].frequency_mhz;
        if singles.iter().any(|r| r.frequency_mhz != frequency_mhz) {
            return Err(SimError::Traffic {
                detail: "co-located models must share one clock frequency".to_owned(),
            });
        }
        let ticks_per_second = u64::from(frequency_mhz) * 1_000_000;

        let requests = workload
            .generate(models.len(), offered_qps, ticks_per_second)
            .map_err(|e| SimError::Traffic { detail: e.to_string() })?;
        let timings: Vec<ModelTiming> = singles
            .iter()
            .map(|r| ModelTiming {
                latency: r.total_cycles,
                interval: r.pipeline_interval_cycles(),
            })
            .collect();
        let outcome = run_queue(
            &requests,
            &timings,
            workload.max_batch,
            workload.max_queue_delay_ticks(ticks_per_second),
        );

        // Saturation: one request per mix-weighted pipeline interval.
        let counts: Vec<u64> = (0..models.len())
            .map(|m| requests.iter().filter(|r| r.model == m).count() as u64)
            .collect();
        let total = requests.len() as u64;
        let weighted_interval: f64 = timings
            .iter()
            .zip(&counts)
            .map(|(t, n)| t.interval as f64 * *n as f64 / total as f64)
            .sum();
        let saturation_qps = ticks_per_second as f64 / weighted_interval.max(1.0);

        let cycles_to_us = |cycles: u64| cycles as f64 / f64::from(frequency_mhz);
        let mut per_model = Vec::with_capacity(models.len());
        for (index, (model, single)) in models.iter().zip(singles).enumerate() {
            let mut latencies: Vec<u64> = outcome
                .completions
                .iter()
                .filter(|c| c.model == index)
                .map(|c| c.latency())
                .collect();
            latencies.sort_unstable();
            let histogram = cimflow_obs::Histogram::new();
            for latency in &latencies {
                histogram.record(cycles_to_us(*latency).round() as u64);
            }
            let batches = outcome.batches.iter().filter(|b| b.model == index).count() as u64;
            let requests_served = latencies.len() as u64;
            per_model.push(ModelServing {
                model: model.name.clone(),
                requests: requests_served,
                batches,
                mean_batch: if batches == 0 {
                    1.0
                } else {
                    requests_served as f64 / batches as f64
                },
                latency: LatencyStats::from_sorted(&latencies),
                histogram: histogram.snapshot(),
                energy_mj: single.energy_mj() * requests_served as f64,
                single,
            });
        }
        let mut all: Vec<u64> = outcome.completions.iter().map(|c| c.latency()).collect();
        all.sort_unstable();
        let makespan_seconds = outcome.makespan as f64 / ticks_per_second as f64;
        let goodput_qps = if outcome.makespan == 0 {
            0.0
        } else {
            outcome.completions.len() as f64 / makespan_seconds
        };

        let stride = outcome.depth_timeline.len().div_ceil(TIMELINE_CAP).max(1);
        let queue_depth_timeline: Vec<(u64, u64)> =
            outcome.depth_timeline.iter().step_by(stride).copied().collect();

        if let Some(registry) = metrics {
            registry.counter("traffic.requests").add(total);
            registry.counter("traffic.batches").add(outcome.batches.len() as u64);
            registry.gauge("traffic.queue_depth_peak").set(outcome.peak_depth as i64);
            let queue_wait = registry.histogram("traffic.queue_wait_us");
            let latency_by_model: Vec<cimflow_obs::Histogram> = models
                .iter()
                .map(|m| registry.histogram_with("traffic.latency_us", &[("model", &m.name)]))
                .collect();
            for c in &outcome.completions {
                latency_by_model[c.model].record(cycles_to_us(c.latency()).round() as u64);
                queue_wait.record(cycles_to_us(c.dispatched - c.arrival).round() as u64);
            }
        }

        Ok(ServingReport {
            offered_qps,
            frequency_mhz,
            requests: total,
            latency: LatencyStats::from_sorted(&all),
            goodput_qps,
            saturation_qps,
            energy_mj: per_model.iter().map(|m| m.energy_mj).sum(),
            peak_queue_depth: outcome.peak_depth,
            mean_batch: outcome.mean_batch(),
            makespan_cycles: outcome.makespan,
            queue_depth_timeline,
            per_model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;

    fn serve_once(qps: u64) -> ServingReport {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let compiled = compile(&model, &arch, Strategy::GenericMapping).unwrap();
        let workload = WorkloadSpec { requests: 64, ..WorkloadSpec::default() };
        Simulator::serve(
            &[ServeModel::compiled("mobilenetv2", &compiled)],
            &workload,
            qps,
            SimOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn low_qps_latency_is_bit_consistent_with_the_single_inference_report() {
        let report = serve_once(2); // far below saturation
        let single = &report.per_model[0].single;
        assert_eq!(
            report.latency.min, single.total_cycles,
            "idle serving latency must equal SimReport::total_cycles exactly"
        );
        assert_eq!(report.latency.max, single.total_cycles);
        assert_eq!(report.latency.p50, report.latency.p99);
        // The obs histogram agrees on the exact min/max (µs, rounded).
        let us = report.cycles_to_us(single.total_cycles).round() as u64;
        assert_eq!(report.per_model[0].histogram.min, us);
        assert_eq!(report.per_model[0].histogram.max, us);
    }

    #[test]
    fn serving_is_deterministic() {
        let a = serve_once(500);
        let b = serve_once(500);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.queue_depth_timeline, b.queue_depth_timeline);
    }

    #[test]
    fn traced_and_compiled_sources_agree() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let compiled = compile(&model, &arch, Strategy::GenericMapping).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let workload = WorkloadSpec { requests: 32, ..WorkloadSpec::default() };
        let from_compiled = Simulator::serve(
            &[ServeModel::compiled("m", &compiled)],
            &workload,
            100,
            SimOptions::default(),
        )
        .unwrap();
        let from_trace = Simulator::serve(
            &[ServeModel::traced("m", &trace, arch)],
            &workload,
            100,
            SimOptions::default(),
        )
        .unwrap();
        assert_eq!(from_compiled.latency, from_trace.latency);
        assert_eq!(from_compiled.makespan_cycles, from_trace.makespan_cycles);
        assert_eq!(
            from_compiled.per_model[0].single.total_cycles,
            from_trace.per_model[0].single.total_cycles
        );
    }

    #[test]
    fn rate_ladders_match_individually_served_rungs() {
        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::GenericMapping).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        let workload = WorkloadSpec { requests: 32, ..WorkloadSpec::default() };
        let served = [ServeModel::traced("m", &trace, arch)];
        let rates = [50u64, 500, 0, 2000];
        let ladder =
            Simulator::serve_ladder(&served, &workload, &rates, SimOptions::default()).unwrap();
        assert_eq!(ladder.len(), rates.len());
        for (&qps, rung) in rates.iter().zip(&ladder) {
            let solo = Simulator::serve(&served, &workload, qps, SimOptions::default());
            match (rung, solo) {
                (Ok(rung), Ok(solo)) => {
                    assert_eq!(rung.latency, solo.latency, "qps {qps}");
                    assert_eq!(rung.makespan_cycles, solo.makespan_cycles, "qps {qps}");
                }
                (Err(rung), Err(solo)) => assert_eq!(rung.to_string(), solo.to_string()),
                (rung, solo) => panic!("qps {qps}: ladder {rung:?} vs solo {solo:?}"),
            }
        }
    }

    #[test]
    fn empty_model_lists_and_bad_workloads_are_rejected() {
        let workload = WorkloadSpec::default();
        let err = Simulator::serve(&[], &workload, 100, SimOptions::default()).unwrap_err();
        assert!(matches!(err, SimError::Traffic { .. }));

        let arch = ArchConfig::paper_default();
        let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::GenericMapping).unwrap();
        let err = Simulator::serve(
            &[ServeModel::compiled("m", &compiled)],
            &workload,
            0,
            SimOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("QPS"), "{err}");
    }
}
