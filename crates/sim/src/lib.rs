//! # cimflow-sim
//!
//! The CIMFlow cycle-level simulator (paper Sec. III-D): it executes the
//! per-core ISA programs produced by `cimflow-compiler` on a detailed
//! model of the digital CIM architecture and reports execution latency,
//! per-component energy and hardware utilization.
//!
//! The original simulator is written in SystemC; this reproduction uses a
//! conservative parallel discrete-event engine in safe Rust (see DESIGN.md
//! for the substitution note). The modelled behaviour follows the paper:
//!
//! * each core executes its instruction stream in order through a
//!   three-stage pipeline (fetch / decode / execute) with a scoreboard
//!   that stalls on busy execution units and un-drained accumulators,
//! * the execute stage dispatches to fine-grained unit models: the CIM
//!   compute unit (per-macro-group bit-serial MVM timing from
//!   `cimflow-arch`), the vector unit, the scalar ALU and the transfer
//!   unit,
//! * inter-core `send`/`recv` pairs travel over the `cimflow-noc` mesh
//!   with link contention; global-memory copies additionally queue on the
//!   shared memory port,
//! * `barrier` instructions synchronize all cores (stage boundaries),
//! * every event is charged to the `cimflow-energy` models, producing the
//!   compute / local-memory / NoC / global-memory breakdown plotted in
//!   Fig. 6.
//!
//! # Example
//!
//! ```
//! use cimflow_arch::ArchConfig;
//! use cimflow_compiler::{compile, Strategy};
//! use cimflow_nn::models;
//! use cimflow_sim::Simulator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let arch = ArchConfig::paper_default();
//! let compiled = compile(&models::mobilenet_v2(32), &arch, Strategy::DpOptimized)?;
//! let report = Simulator::new(&compiled).run()?;
//! assert!(report.total_cycles > 0);
//! assert!(report.energy.total_pj() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod engine;
mod error;
mod replay;
mod report;
mod serving;
mod trace;

pub use engine::{HandoffMode, SimOptions, Simulator};
pub use error::SimError;
pub use replay::{LockstepStats, ReplayEngine, LOCKSTEP_LANES};
pub use report::{SimReport, UnitActivity};
pub use serving::{LatencyStats, ModelServing, ServeModel, ServeSource, ServingReport};
pub use trace::{SimTrace, TraceOp, TracePasses};
