//! Integration suite for the lockstep multi-lane replay fast path.
//!
//! The contract under test: for every point a scalar
//! [`ReplayEngine::replay`] accepts, the batched lockstep walk must
//! produce the **same** [`SimReport`](cimflow_sim::SimReport) bit for
//! bit — across the full seed-model × chip-count × handoff-mode grid,
//! with invalid points isolated from their batch, and with the
//! divergence fallback (lane peeling) exercised rather than averaged
//! away.

use std::collections::HashSet;

use cimflow_arch::ArchConfig;
use cimflow_compiler::{compile, Strategy as MappingStrategy};
use cimflow_nn::models;
use cimflow_sim::{HandoffMode, ReplayEngine, SimError, SimOptions, Simulator, LOCKSTEP_LANES};
use proptest::collection;
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// Random timing-only lanes: frequency / memory-port retunings that keep
/// the trace's compile fingerprint (the paper-default mesh is 8×8, so
/// ports 0..64 are all valid placements).
fn arb_lanes() -> impl Strategy<Value = Vec<(u32, u32)>> {
    collection::vec((200u32..2000, 0u32..64), 2..6)
}

#[test]
fn lockstep_matches_scalar_replay_across_models_chips_and_handoffs() {
    let lanes_strategy = arb_lanes();
    let mut rng = TestRng::deterministic();
    for model in models::benchmark_suite(32) {
        for chips in [1u32, 2, 4] {
            let base = ArchConfig::paper_default().with_chip_count(chips);
            let compiled = compile(&model, &base, MappingStrategy::DpOptimized)
                .expect("seed models compile at every chip count");
            let (trace, _) = Simulator::record(&compiled).expect("recording succeeds");
            let engine = ReplayEngine::new(&trace);
            for handoff in [HandoffMode::TileStreaming, HandoffMode::AtRetirement] {
                let options = SimOptions { handoff, ..SimOptions::default() };
                let lanes = Strategy::generate(&lanes_strategy, &mut rng);
                let points: Vec<(ArchConfig, SimOptions)> = lanes
                    .iter()
                    .map(|&(mhz, port)| {
                        (base.with_frequency_mhz(mhz).with_memory_port(port), options)
                    })
                    .collect();
                let (results, stats) = engine.replay_batch_stats(&points);
                for ((point, opts), result) in points.iter().zip(&results) {
                    let scalar = engine.replay(point, *opts).expect("timing-only lane replays");
                    let lockstep = result.as_ref().expect("timing-only lane replays in batch");
                    prop_assert_eq!(
                        lockstep,
                        &scalar,
                        "lockstep diverged from scalar replay: {} chips={chips} \
                         handoff={handoff:?} point={point:?}",
                        model.name
                    );
                }
                // Frequency never enters cycle-domain timing, so the
                // batch must collapse onto one lane per distinct port;
                // a single surviving lane is scalar, not lockstep.
                let ports: HashSet<u32> = lanes.iter().map(|&(_, port)| port).collect();
                assert!(points.len() <= LOCKSTEP_LANES, "grid stays within one chunk");
                if ports.len() >= 2 {
                    prop_assert_eq!(stats.batches, 1);
                    prop_assert_eq!(stats.lanes, ports.len() as u64);
                } else {
                    prop_assert_eq!(stats.lanes, 0);
                }
            }
        }
    }
}

#[test]
fn invalid_points_do_not_poison_the_batch() {
    let base = ArchConfig::paper_default();
    let compiled = compile(&models::mobilenet_v2(32), &base, MappingStrategy::DpOptimized)
        .expect("seed model compiles");
    let (trace, baseline) = Simulator::record(&compiled).expect("recording succeeds");
    let engine = ReplayEngine::new(&trace);
    let options = SimOptions::default();
    let points = vec![
        (base.with_memory_port(27), options),
        // Compile-affecting change: must be refused (recompile instead).
        (base.with_macros_per_group(16), options),
        // Invalid placement (port outside the 8×8 mesh): must be refused.
        (base.with_memory_port(4096), options),
        (base, options),
        (base.with_frequency_mhz(500).with_memory_port(27), options),
    ];
    let results = engine.replay_batch(&points);
    assert_eq!(results.len(), points.len());
    assert!(matches!(results[1], Err(SimError::TraceMismatch { .. })));
    assert!(matches!(results[2], Err(SimError::TraceMismatch { .. })));
    // The valid lanes around the failures stay bit-exact.
    for index in [0usize, 3, 4] {
        let scalar = engine.replay(&points[index].0, options).expect("valid lane");
        assert_eq!(results[index].as_ref().expect("valid lane"), &scalar, "lane {index}");
    }
    assert_eq!(results[3].as_ref().expect("recording point"), &baseline);
}

/// A full-width ladder of maximally spread timing knobs: every lane gets
/// its own memory port AND its own NoC hop latency, the two knobs that
/// skew per-core clocks hardest. On real model traces the send/recv
/// dependency chains and the serializing global-memory port pin the pick
/// order, so the ladder must replay in one agreed pass — and whenever a
/// pick ever does flip (the hand-built flipping trace lives in the
/// engine's unit tests, `divergent_pick_orders_peel_into_scalar_lanes_
/// bit_exactly`), the peel fallback accounts for it in `fallback_lanes`
/// rather than approximating. Either way the contract is the same and is
/// asserted here: lane reports identical to scalar replay, divergence
/// accounted, never averaged.
#[test]
fn full_width_ladders_replay_bit_exactly_with_divergence_accounted() {
    let base = ArchConfig::paper_default();
    let compiled = compile(&models::resnet18(32), &base, MappingStrategy::DpOptimized)
        .expect("seed model compiles");
    let (trace, _) = Simulator::record(&compiled).expect("recording succeeds");
    let engine = ReplayEngine::new(&trace);
    let options = SimOptions::default();
    let points: Vec<(ArchConfig, SimOptions)> = (0..LOCKSTEP_LANES as u32)
        .map(|lane| {
            let mut arch = base.with_memory_port(lane * 9 % 64);
            arch.system.chip.noc_hop_latency = 1 + lane;
            (arch, options)
        })
        .collect();
    let (results, stats) = engine.replay_batch_stats(&points);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.lanes, LOCKSTEP_LANES as u64, "every point is its own lane");
    assert!(
        stats.fallback_lanes as usize <= LOCKSTEP_LANES,
        "peeled lanes are a subset of the batch: {stats:?}"
    );
    for ((point, opts), result) in points.iter().zip(&results) {
        let scalar = engine.replay(point, *opts).expect("valid lane");
        let port = point.chip().memory_port;
        assert_eq!(result.as_ref().expect("valid lane"), &scalar, "port {port}");
    }
}
