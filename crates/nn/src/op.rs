//! DNN operator kinds with shape inference, weight footprints and MAC
//! counts.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::tensor::TensorShape;
use crate::NnError;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6.
    Relu6,
    /// Hard-swish (`x · relu6(x + 3) / 6`).
    HardSwish,
    /// Logistic sigmoid.
    Sigmoid,
}

impl fmt::Display for ActivationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivationKind::Relu => "relu",
            ActivationKind::Relu6 => "relu6",
            ActivationKind::HardSwish => "hardswish",
            ActivationKind::Sigmoid => "sigmoid",
        };
        f.write_str(s)
    }
}

/// The operator vocabulary needed by the four benchmark models
/// (ResNet18, VGG19, MobileNetV2, EfficientNetB0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OpKind {
    /// 2-D convolution (`groups == in_channels` expresses depth-wise
    /// convolution).
    Conv2d {
        /// Number of output channels.
        out_channels: u32,
        /// Kernel height and width.
        kernel: (u32, u32),
        /// Stride along height and width.
        stride: (u32, u32),
        /// Zero padding along height and width.
        padding: (u32, u32),
        /// Channel groups (1 = dense, `in_channels` = depth-wise).
        groups: u32,
    },
    /// Fully connected layer.
    Linear {
        /// Number of output features.
        out_features: u32,
    },
    /// Max pooling.
    MaxPool {
        /// Pooling window.
        kernel: (u32, u32),
        /// Stride along height and width.
        stride: (u32, u32),
        /// Zero padding along height and width.
        padding: (u32, u32),
    },
    /// Average pooling.
    AvgPool {
        /// Pooling window.
        kernel: (u32, u32),
        /// Stride along height and width.
        stride: (u32, u32),
        /// Zero padding along height and width.
        padding: (u32, u32),
    },
    /// Global average pooling down to `C × 1 × 1`.
    GlobalAvgPool,
    /// Element-wise activation.
    Activation(ActivationKind),
    /// Element-wise addition of two tensors (residual connections).
    Add,
    /// Element-wise multiplication, broadcasting `C × 1 × 1` gates
    /// (squeeze-and-excitation).
    Mul,
    /// Batch normalization (folded into the preceding convolution by the
    /// compiler's preprocessing, kept for model fidelity).
    BatchNorm,
    /// Flatten the feature map into a vector.
    Flatten,
}

impl OpKind {
    /// Whether the operator is an MVM-based operator mapped onto the CIM
    /// arrays (the compiler partitions the graph around these).
    pub fn is_mvm_based(&self) -> bool {
        matches!(self, OpKind::Conv2d { .. } | OpKind::Linear { .. })
    }

    /// Whether the operator has two activation inputs.
    pub fn is_binary(&self) -> bool {
        matches!(self, OpKind::Add | OpKind::Mul)
    }

    /// Short human-readable kind name.
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Conv2d { groups, .. } if *groups > 1 => "dwconv",
            OpKind::Conv2d { .. } => "conv",
            OpKind::Linear { .. } => "linear",
            OpKind::MaxPool { .. } => "maxpool",
            OpKind::AvgPool { .. } => "avgpool",
            OpKind::GlobalAvgPool => "gap",
            OpKind::Activation(_) => "act",
            OpKind::Add => "add",
            OpKind::Mul => "mul",
            OpKind::BatchNorm => "batchnorm",
            OpKind::Flatten => "flatten",
        }
    }

    /// Infers the output shape from the (primary) input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the input shape is not
    /// compatible with the operator attributes.
    pub fn output_shape(&self, input: TensorShape) -> Result<TensorShape, NnError> {
        let err = |reason: String| NnError::ShapeMismatch { op: self.name().to_owned(), reason };
        match *self {
            OpKind::Conv2d { out_channels, kernel, stride, padding, groups } => {
                if groups == 0 || !input.c.is_multiple_of(groups) || out_channels % groups != 0 {
                    return Err(err(format!(
                        "groups {groups} must divide in_channels {} and out_channels {out_channels}",
                        input.c
                    )));
                }
                let (oh, ow) = conv_spatial(input.h, input.w, kernel, stride, padding)
                    .ok_or_else(|| err("kernel larger than padded input".into()))?;
                Ok(TensorShape::new(input.n, out_channels, oh, ow))
            }
            OpKind::Linear { out_features } => Ok(TensorShape::new(input.n, out_features, 1, 1)),
            OpKind::MaxPool { kernel, stride, padding }
            | OpKind::AvgPool { kernel, stride, padding } => {
                let (oh, ow) = conv_spatial(input.h, input.w, kernel, stride, padding)
                    .ok_or_else(|| err("pooling window larger than padded input".into()))?;
                Ok(TensorShape::new(input.n, input.c, oh, ow))
            }
            OpKind::GlobalAvgPool => Ok(TensorShape::new(input.n, input.c, 1, 1)),
            OpKind::Activation(_) | OpKind::Add | OpKind::Mul | OpKind::BatchNorm => Ok(input),
            OpKind::Flatten => {
                Ok(TensorShape::new(input.n, (input.elements_per_item()) as u32, 1, 1))
            }
        }
    }

    /// Number of weight parameters (INT8 values) owned by the operator,
    /// including biases (stored as INT32 but counted in bytes separately
    /// by [`Self::weight_bytes`]).
    pub fn weight_count(&self, input: TensorShape) -> u64 {
        match *self {
            OpKind::Conv2d { out_channels, kernel, groups, .. } => {
                u64::from(out_channels)
                    * u64::from(input.c / groups.max(1))
                    * u64::from(kernel.0)
                    * u64::from(kernel.1)
            }
            OpKind::Linear { out_features } => u64::from(out_features) * input.elements_per_item(),
            OpKind::BatchNorm => u64::from(input.c) * 2,
            _ => 0,
        }
    }

    /// Weight footprint in bytes (INT8 weights plus INT32 biases).
    pub fn weight_bytes(&self, input: TensorShape) -> u64 {
        let bias = match *self {
            OpKind::Conv2d { out_channels, .. } => u64::from(out_channels) * 4,
            OpKind::Linear { out_features } => u64::from(out_features) * 4,
            _ => 0,
        };
        self.weight_count(input) + bias
    }

    /// Number of multiply-accumulate operations performed on one input.
    pub fn macs(&self, input: TensorShape) -> u64 {
        match *self {
            OpKind::Conv2d { kernel, groups, .. } => {
                let output = self.output_shape(input).unwrap_or(TensorShape::new(input.n, 0, 0, 0));
                output.elements()
                    * u64::from(input.c / groups.max(1))
                    * u64::from(kernel.0)
                    * u64::from(kernel.1)
            }
            OpKind::Linear { out_features } => {
                u64::from(input.n) * u64::from(out_features) * input.elements_per_item()
            }
            _ => 0,
        }
    }

    /// Element operations (activations, additions, pooling comparisons)
    /// handled by the vector unit.
    pub fn vector_elems(&self, input: TensorShape) -> u64 {
        match self {
            OpKind::Activation(_) | OpKind::Add | OpKind::Mul | OpKind::BatchNorm => {
                input.elements()
            }
            OpKind::MaxPool { kernel, .. } | OpKind::AvgPool { kernel, .. } => {
                let out = self.output_shape(input).map(|s| s.elements()).unwrap_or(0);
                out * u64::from(kernel.0) * u64::from(kernel.1)
            }
            OpKind::GlobalAvgPool => input.elements(),
            _ => 0,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpKind::Conv2d { out_channels, kernel, stride, groups, .. } => write!(
                f,
                "{} {out_channels}ch {}x{}/{} g{groups}",
                self.name(),
                kernel.0,
                kernel.1,
                stride.0
            ),
            OpKind::Linear { out_features } => write!(f, "linear {out_features}"),
            OpKind::Activation(kind) => write!(f, "{kind}"),
            _ => f.write_str(self.name()),
        }
    }
}

fn conv_spatial(
    h: u32,
    w: u32,
    kernel: (u32, u32),
    stride: (u32, u32),
    padding: (u32, u32),
) -> Option<(u32, u32)> {
    let padded_h = h + 2 * padding.0;
    let padded_w = w + 2 * padding.1;
    if padded_h < kernel.0 || padded_w < kernel.1 || stride.0 == 0 || stride.1 == 0 {
        return None;
    }
    Some(((padded_h - kernel.0) / stride.0 + 1, (padded_w - kernel.1) / stride.1 + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out: u32, k: u32, s: u32, p: u32, groups: u32) -> OpKind {
        OpKind::Conv2d {
            out_channels: out,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            groups,
        }
    }

    #[test]
    fn conv_shape_inference() {
        let input = TensorShape::feature_map(3, 224, 224);
        let c = conv(64, 7, 2, 3, 1);
        assert_eq!(c.output_shape(input).unwrap(), TensorShape::feature_map(64, 112, 112));
        let same = conv(64, 3, 1, 1, 1);
        let x = TensorShape::feature_map(64, 56, 56);
        assert_eq!(same.output_shape(x).unwrap(), x);
    }

    #[test]
    fn depthwise_conv_shapes_and_weights() {
        let input = TensorShape::feature_map(32, 112, 112);
        let dw = conv(32, 3, 1, 1, 32);
        assert_eq!(dw.output_shape(input).unwrap(), input);
        assert_eq!(dw.weight_count(input), 32 * 3 * 3);
        assert_eq!(dw.name(), "dwconv");
        assert!(dw.is_mvm_based());
    }

    #[test]
    fn invalid_conv_groups_are_rejected() {
        let input = TensorShape::feature_map(30, 10, 10);
        assert!(conv(64, 3, 1, 1, 4).output_shape(input).is_err());
        assert!(conv(64, 3, 1, 1, 0).output_shape(input).is_err());
        assert!(conv(64, 13, 1, 1, 1).output_shape(TensorShape::feature_map(30, 8, 8)).is_err());
    }

    #[test]
    fn linear_weights_and_macs() {
        let input = TensorShape::vector(512);
        let fc = OpKind::Linear { out_features: 1000 };
        assert_eq!(fc.output_shape(input).unwrap(), TensorShape::vector(1000));
        assert_eq!(fc.weight_count(input), 512 * 1000);
        assert_eq!(fc.macs(input), 512 * 1000);
        assert_eq!(fc.weight_bytes(input), 512 * 1000 + 4000);
    }

    #[test]
    fn conv_mac_count_matches_formula() {
        let input = TensorShape::feature_map(64, 56, 56);
        let c = conv(128, 3, 2, 1, 1);
        // output 128×28×28, each from 64×3×3 MACs.
        assert_eq!(c.macs(input), 128 * 28 * 28 * 64 * 9);
    }

    #[test]
    fn pooling_and_elementwise_shapes() {
        let input = TensorShape::feature_map(64, 112, 112);
        let pool = OpKind::MaxPool { kernel: (3, 3), stride: (2, 2), padding: (1, 1) };
        assert_eq!(pool.output_shape(input).unwrap(), TensorShape::feature_map(64, 56, 56));
        assert_eq!(OpKind::GlobalAvgPool.output_shape(input).unwrap(), TensorShape::vector(64));
        assert_eq!(OpKind::Add.output_shape(input).unwrap(), input);
        assert_eq!(
            OpKind::Flatten.output_shape(TensorShape::feature_map(512, 7, 7)).unwrap(),
            TensorShape::vector(512 * 49)
        );
        assert!(OpKind::Add.is_binary());
        assert!(!OpKind::Add.is_mvm_based());
        assert!(pool.vector_elems(input) > 0);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(conv(64, 3, 1, 1, 1).to_string(), "conv 64ch 3x3/1 g1");
        assert_eq!(OpKind::Linear { out_features: 10 }.to_string(), "linear 10");
        assert_eq!(OpKind::Activation(ActivationKind::Relu).to_string(), "relu");
    }

    #[test]
    fn serde_round_trip() {
        let ops = vec![
            conv(64, 3, 1, 1, 1),
            OpKind::Linear { out_features: 10 },
            OpKind::Activation(ActivationKind::HardSwish),
            OpKind::GlobalAvgPool,
        ];
        for op in ops {
            let back: OpKind = serde_json::from_str(&serde_json::to_string(&op).unwrap()).unwrap();
            assert_eq!(back, op);
        }
    }
}
