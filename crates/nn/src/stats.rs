//! Workload statistics used by the compiler's cost model and the
//! experiment reports.

use serde::{Deserialize, Serialize};

use crate::graph::OpId;

/// Per-operator statistics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// The operator.
    pub id: OpId,
    /// Operator name.
    pub name: String,
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Weight footprint in bytes (INT8 weights + INT32 biases).
    pub weight_bytes: u64,
    /// Total activation input bytes.
    pub input_bytes: u64,
    /// Activation output bytes.
    pub output_bytes: u64,
    /// Element-wise operations handled by the vector unit.
    pub vector_elems: u64,
    /// Whether the operator maps onto the CIM arrays.
    pub is_mvm: bool,
}

/// Aggregated statistics of a whole workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Per-operator breakdown in node order.
    pub per_op: Vec<OpStats>,
    /// Total multiply-accumulate count.
    pub total_macs: u64,
    /// Total weight footprint in bytes.
    pub total_weight_bytes: u64,
    /// Total activation traffic (inputs + outputs) in bytes.
    pub total_activation_bytes: u64,
    /// Number of MVM-based operators.
    pub mvm_op_count: usize,
    /// Largest single-operator weight footprint in bytes.
    pub max_weight_bytes: u64,
}

impl WorkloadStats {
    /// Aggregates per-operator statistics.
    pub fn from_ops(per_op: Vec<OpStats>) -> Self {
        let total_macs = per_op.iter().map(|o| o.macs).sum();
        let total_weight_bytes = per_op.iter().map(|o| o.weight_bytes).sum();
        let total_activation_bytes = per_op.iter().map(|o| o.input_bytes + o.output_bytes).sum();
        let mvm_op_count = per_op.iter().filter(|o| o.is_mvm).count();
        let max_weight_bytes = per_op.iter().map(|o| o.weight_bytes).max().unwrap_or(0);
        WorkloadStats {
            per_op,
            total_macs,
            total_weight_bytes,
            total_activation_bytes,
            mvm_op_count,
            max_weight_bytes,
        }
    }

    /// Total operation count (2 × MACs), the numerator of TOPS figures.
    pub fn total_ops(&self) -> u64 {
        self.total_macs * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(id: usize, macs: u64, weights: u64, mvm: bool) -> OpStats {
        OpStats {
            id: OpId(id),
            name: format!("op{id}"),
            macs,
            weight_bytes: weights,
            input_bytes: 10,
            output_bytes: 20,
            vector_elems: 5,
            is_mvm: mvm,
        }
    }

    #[test]
    fn aggregation_sums_and_maxima() {
        let stats = WorkloadStats::from_ops(vec![
            op(0, 100, 50, true),
            op(1, 0, 0, false),
            op(2, 300, 200, true),
        ]);
        assert_eq!(stats.total_macs, 400);
        assert_eq!(stats.total_ops(), 800);
        assert_eq!(stats.total_weight_bytes, 250);
        assert_eq!(stats.total_activation_bytes, 90);
        assert_eq!(stats.mvm_op_count, 2);
        assert_eq!(stats.max_weight_bytes, 200);
    }

    #[test]
    fn empty_workload_is_zero() {
        let stats = WorkloadStats::from_ops(vec![]);
        assert_eq!(stats.total_macs, 0);
        assert_eq!(stats.max_weight_bytes, 0);
        assert_eq!(stats.mvm_op_count, 0);
    }
}
