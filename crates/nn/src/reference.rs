//! Golden reference executor for functional validation.
//!
//! The CIMFlow compiler validates generated code against the expected
//! execution results (the "Functional Validation / Exec. Result Check" box
//! in Fig. 2). This module provides the bit-exact INT8 golden model that
//! compiler and simulator tests compare against: direct convolution,
//! im2col + matrix multiplication (to validate the compiler's virtual
//! mapping), fully connected layers, pooling and element-wise operators.
//!
//! Weights are synthetic: they are generated deterministically from the
//! operator name so that the compiler, the simulator and the reference
//! model all observe identical values without shipping real checkpoints
//! (see DESIGN.md, substitution table).

use crate::graph::{Graph, Node};
use crate::op::{ActivationKind, OpKind};
use crate::quant::requantize;
use crate::tensor::TensorShape;
use crate::NnError;

/// A dense INT8 activation tensor in `N × C × H × W` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tensor {
    /// Shape of the tensor.
    pub shape: TensorShape,
    /// Row-major (`n`, `c`, `h`, `w`) element data.
    pub data: Vec<i8>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    pub fn zeros(shape: TensorShape) -> Self {
        Tensor { shape, data: vec![0; shape.elements() as usize] }
    }

    /// Creates a tensor with deterministic pseudo-random contents derived
    /// from `seed`.
    pub fn synthetic(shape: TensorShape, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let data = (0..shape.elements())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 17) as i8 - 8
            })
            .collect();
        Tensor { shape, data }
    }

    /// Reads one element (zero for out-of-bounds reads, matching zero
    /// padding semantics).
    pub fn at(&self, n: u32, c: u32, h: i64, w: i64) -> i8 {
        if h < 0 || w < 0 || h >= i64::from(self.shape.h) || w >= i64::from(self.shape.w) {
            return 0;
        }
        let idx = ((u64::from(n) * u64::from(self.shape.c) + u64::from(c))
            * u64::from(self.shape.h)
            + h as u64)
            * u64::from(self.shape.w)
            + w as u64;
        self.data[idx as usize]
    }

    fn set(&mut self, n: u32, c: u32, h: u32, w: u32, value: i8) {
        let idx = ((u64::from(n) * u64::from(self.shape.c) + u64::from(c))
            * u64::from(self.shape.h)
            + u64::from(h))
            * u64::from(self.shape.w)
            + u64::from(w);
        self.data[idx as usize] = value;
    }
}

/// Deterministic synthetic weights for an operator: `count` INT8 values in
/// `[-8, 8]` derived from the operator name.
pub fn synthetic_weights(name: &str, count: u64) -> Vec<i8> {
    let mut state: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        state ^= u64::from(b);
        state = state.wrapping_mul(0x1000_0000_01B3);
    }
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 17) as i8 - 8
        })
        .collect()
}

/// The requantization shift applied after every MVM-based operator in the
/// reference flow (and by the generated `vec_quant` instructions).
pub const REQUANT_SHIFT: u32 = 8;

/// Direct 2-D convolution with zero padding, INT32 accumulation and
/// right-shift requantization to INT8.
pub fn conv2d(
    input: &Tensor,
    weights: &[i8],
    out_channels: u32,
    kernel: (u32, u32),
    stride: (u32, u32),
    padding: (u32, u32),
    groups: u32,
) -> Result<Tensor, NnError> {
    let op = OpKind::Conv2d { out_channels, kernel, stride, padding, groups };
    let out_shape = op.output_shape(input.shape)?;
    let in_per_group = input.shape.c / groups;
    let out_per_group = out_channels / groups;
    let mut output = Tensor::zeros(out_shape);
    for n in 0..input.shape.n {
        for oc in 0..out_channels {
            let group = oc / out_per_group;
            for oh in 0..out_shape.h {
                for ow in 0..out_shape.w {
                    let mut acc: i32 = 0;
                    for ic in 0..in_per_group {
                        for kh in 0..kernel.0 {
                            for kw in 0..kernel.1 {
                                let ih = i64::from(oh * stride.0 + kh) - i64::from(padding.0);
                                let iw = i64::from(ow * stride.1 + kw) - i64::from(padding.1);
                                let x = input.at(n, group * in_per_group + ic, ih, iw);
                                let widx = ((u64::from(oc) * u64::from(in_per_group)
                                    + u64::from(ic))
                                    * u64::from(kernel.0)
                                    + u64::from(kh))
                                    * u64::from(kernel.1)
                                    + u64::from(kw);
                                let w = weights[widx as usize];
                                acc += i32::from(x) * i32::from(w);
                            }
                        }
                    }
                    output.set(n, oc, oh, ow, requantize(acc, REQUANT_SHIFT));
                }
            }
        }
    }
    Ok(output)
}

/// The im2col lowering of a convolution input: one row per output spatial
/// position, one column per `(channel, kh, kw)` weight position.
///
/// This is the transformation the compiler's virtual-mapping phase applies
/// before mapping the weight matrix onto the 2-D CIM array; the unit test
/// in this module proves `im2col + matmul == direct convolution`.
pub fn im2col(
    input: &Tensor,
    kernel: (u32, u32),
    stride: (u32, u32),
    padding: (u32, u32),
) -> (Vec<i8>, usize, usize) {
    let op = OpKind::Conv2d { out_channels: 1, kernel, stride, padding, groups: 1 };
    let out = op.output_shape(input.shape).expect("caller validated the geometry");
    let rows = (out.h * out.w * input.shape.n) as usize;
    let cols = (input.shape.c * kernel.0 * kernel.1) as usize;
    let mut matrix = vec![0i8; rows * cols];
    let mut row = 0usize;
    for n in 0..input.shape.n {
        for oh in 0..out.h {
            for ow in 0..out.w {
                let mut col = 0usize;
                for c in 0..input.shape.c {
                    for kh in 0..kernel.0 {
                        for kw in 0..kernel.1 {
                            let ih = i64::from(oh * stride.0 + kh) - i64::from(padding.0);
                            let iw = i64::from(ow * stride.1 + kw) - i64::from(padding.1);
                            matrix[row * cols + col] = input.at(n, c, ih, iw);
                            col += 1;
                        }
                    }
                }
                row += 1;
            }
        }
    }
    (matrix, rows, cols)
}

/// INT8 matrix multiplication with INT32 accumulation:
/// `a` is `rows × k` (row-major), `b` is `k × cols` (row-major), the result
/// is `rows × cols` of INT32 accumulators.
pub fn matmul_i8(a: &[i8], b: &[i8], rows: usize, k: usize, cols: usize) -> Vec<i32> {
    let mut out = vec![0i32; rows * cols];
    for r in 0..rows {
        for kk in 0..k {
            let av = i32::from(a[r * k + kk]);
            if av == 0 {
                continue;
            }
            for c in 0..cols {
                out[r * cols + c] += av * i32::from(b[kk * cols + c]);
            }
        }
    }
    out
}

/// Fully connected layer over the flattened input.
pub fn linear(input: &Tensor, weights: &[i8], out_features: u32) -> Tensor {
    let in_features = input.shape.elements_per_item() as usize;
    let mut output = Tensor::zeros(TensorShape::new(input.shape.n, out_features, 1, 1));
    for n in 0..input.shape.n as usize {
        for o in 0..out_features as usize {
            let mut acc = 0i32;
            for i in 0..in_features {
                let x = input.data[n * in_features + i];
                let w = weights[o * in_features + i];
                acc += i32::from(x) * i32::from(w);
            }
            output.data[n * out_features as usize + o] = requantize(acc, REQUANT_SHIFT);
        }
    }
    output
}

/// Element-wise activation.
pub fn activation(input: &Tensor, kind: ActivationKind) -> Tensor {
    let data = input
        .data
        .iter()
        .map(|&x| match kind {
            ActivationKind::Relu => x.max(0),
            ActivationKind::Relu6 => x.clamp(0, 6),
            ActivationKind::HardSwish => {
                let xi = i32::from(x);
                let gate = (xi + 3).clamp(0, 6);
                ((xi * gate) / 6).clamp(-128, 127) as i8
            }
            ActivationKind::Sigmoid => {
                if x > 4 {
                    127
                } else if x < -4 {
                    0
                } else {
                    (64 + i32::from(x) * 16).clamp(0, 127) as i8
                }
            }
        })
        .collect();
    Tensor { shape: input.shape, data }
}

/// Element-wise saturating addition of two same-shape tensors.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let data = a
        .data
        .iter()
        .zip(&b.data)
        .map(|(&x, &y)| (i32::from(x) + i32::from(y)).clamp(-128, 127) as i8)
        .collect();
    Tensor { shape: a.shape, data }
}

/// Element-wise multiplication broadcasting a `C × 1 × 1` gate tensor.
pub fn mul_broadcast(a: &Tensor, gate: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(a.shape);
    for n in 0..a.shape.n {
        for c in 0..a.shape.c {
            let g = i32::from(gate.at(n, c, 0, 0));
            for h in 0..a.shape.h {
                for w in 0..a.shape.w {
                    let v = (i32::from(a.at(n, c, i64::from(h), i64::from(w))) * g / 64)
                        .clamp(-128, 127);
                    out.set(n, c, h, w, v as i8);
                }
            }
        }
    }
    out
}

/// Window pooling (max or average).
pub fn pool(
    input: &Tensor,
    kernel: (u32, u32),
    stride: (u32, u32),
    padding: (u32, u32),
    max: bool,
) -> Result<Tensor, NnError> {
    let op = if max {
        OpKind::MaxPool { kernel, stride, padding }
    } else {
        OpKind::AvgPool { kernel, stride, padding }
    };
    let out_shape = op.output_shape(input.shape)?;
    let mut output = Tensor::zeros(out_shape);
    for n in 0..input.shape.n {
        for c in 0..input.shape.c {
            for oh in 0..out_shape.h {
                for ow in 0..out_shape.w {
                    let mut best = i32::from(i8::MIN);
                    let mut sum = 0i32;
                    let mut count = 0i32;
                    for kh in 0..kernel.0 {
                        for kw in 0..kernel.1 {
                            let ih = i64::from(oh * stride.0 + kh) - i64::from(padding.0);
                            let iw = i64::from(ow * stride.1 + kw) - i64::from(padding.1);
                            let v = i32::from(input.at(n, c, ih, iw));
                            best = best.max(v);
                            sum += v;
                            count += 1;
                        }
                    }
                    let value = if max { best } else { sum / count.max(1) };
                    output.set(n, c, oh, ow, value.clamp(-128, 127) as i8);
                }
            }
        }
    }
    Ok(output)
}

/// Global average pooling down to `C × 1 × 1`.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let mut output = Tensor::zeros(TensorShape::new(input.shape.n, input.shape.c, 1, 1));
    let spatial = input.shape.spatial().max(1) as i32;
    for n in 0..input.shape.n {
        for c in 0..input.shape.c {
            let mut sum = 0i32;
            for h in 0..input.shape.h {
                for w in 0..input.shape.w {
                    sum += i32::from(input.at(n, c, i64::from(h), i64::from(w)));
                }
            }
            output.set(n, c, 0, 0, (sum / spatial).clamp(-128, 127) as i8);
        }
    }
    output
}

/// Executes a whole graph with synthetic weights, returning the tensor
/// values of every graph tensor. Intended for small validation graphs.
///
/// # Errors
///
/// Returns an error if an operator receives an incompatible shape.
pub fn execute(graph: &Graph, input: &Tensor) -> Result<Vec<Tensor>, NnError> {
    let mut values: Vec<Option<Tensor>> = vec![None; graph.tensors().len()];
    for (graph_input, _) in graph.inputs().iter().zip(std::iter::repeat(())) {
        values[graph_input.0] = Some(input.clone());
    }
    for id in graph.topological_order() {
        let node = graph.node(id);
        let result = execute_node(graph, node, &values)?;
        values[node.output.0] = Some(result);
    }
    Ok(values
        .into_iter()
        .map(|v| v.unwrap_or_else(|| Tensor::zeros(TensorShape::vector(1))))
        .collect())
}

fn execute_node(graph: &Graph, node: &Node, values: &[Option<Tensor>]) -> Result<Tensor, NnError> {
    let fetch = |t: crate::graph::TensorId| -> Result<&Tensor, NnError> {
        values[t.0].as_ref().ok_or_else(|| NnError::InvalidGraph {
            reason: format!("tensor {t} used before production"),
        })
    };
    let input = fetch(node.inputs[0])?;
    let input_shape = graph.tensor(node.inputs[0]).shape;
    match node.op {
        OpKind::Conv2d { out_channels, kernel, stride, padding, groups } => {
            let weights = synthetic_weights(&node.name, node.op.weight_count(input_shape));
            conv2d(input, &weights, out_channels, kernel, stride, padding, groups)
        }
        OpKind::Linear { out_features } => {
            let weights = synthetic_weights(&node.name, node.op.weight_count(input_shape));
            Ok(linear(input, &weights, out_features))
        }
        OpKind::MaxPool { kernel, stride, padding } => pool(input, kernel, stride, padding, true),
        OpKind::AvgPool { kernel, stride, padding } => pool(input, kernel, stride, padding, false),
        OpKind::GlobalAvgPool => Ok(global_avg_pool(input)),
        OpKind::Activation(kind) => Ok(activation(input, kind)),
        OpKind::Add => Ok(add(input, fetch(node.inputs[1])?)),
        OpKind::Mul => Ok(mul_broadcast(input, fetch(node.inputs[1])?)),
        OpKind::BatchNorm => Ok(input.clone()),
        OpKind::Flatten => {
            Ok(Tensor { shape: node.op.output_shape(input_shape)?, data: input.data.clone() })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    #[test]
    fn im2col_matmul_matches_direct_convolution() {
        let input = Tensor::synthetic(TensorShape::feature_map(3, 6, 6), 7);
        let out_channels = 4u32;
        let kernel = (3, 3);
        let stride = (1, 1);
        let padding = (1, 1);
        let weights = synthetic_weights("conv", u64::from(out_channels) * 3 * 9);

        let direct = conv2d(&input, &weights, out_channels, kernel, stride, padding, 1).unwrap();

        let (cols_matrix, rows, k) = im2col(&input, kernel, stride, padding);
        // Weight matrix transposed into k × out_channels layout.
        let mut weight_matrix = vec![0i8; k * out_channels as usize];
        for oc in 0..out_channels as usize {
            for kk in 0..k {
                weight_matrix[kk * out_channels as usize + oc] = weights[oc * k + kk];
            }
        }
        let acc = matmul_i8(&cols_matrix, &weight_matrix, rows, k, out_channels as usize);
        // Re-layout: rows are (oh, ow), columns are oc; direct output is (oc, oh, ow).
        for oc in 0..out_channels {
            for pos in 0..(direct.shape.h * direct.shape.w) as usize {
                let from_matmul =
                    requantize(acc[pos * out_channels as usize + oc as usize], REQUANT_SHIFT);
                let oh = pos as u32 / direct.shape.w;
                let ow = pos as u32 % direct.shape.w;
                assert_eq!(from_matmul, direct.at(0, oc, i64::from(oh), i64::from(ow)));
            }
        }
    }

    #[test]
    fn depthwise_convolution_uses_one_channel_per_group() {
        let input = Tensor::synthetic(TensorShape::feature_map(4, 5, 5), 3);
        let weights = synthetic_weights("dw", 4 * 9);
        let out = conv2d(&input, &weights, 4, (3, 3), (1, 1), (1, 1), 4).unwrap();
        assert_eq!(out.shape, input.shape);
        // Manually verify one output position of channel 2.
        let mut acc = 0i32;
        for kh in 0..3i64 {
            for kw in 0..3i64 {
                let x = input.at(0, 2, 1 + kh - 1, 1 + kw - 1);
                let w = weights[2 * 9 + (kh * 3 + kw) as usize];
                acc += i32::from(x) * i32::from(w);
            }
        }
        assert_eq!(out.at(0, 2, 1, 1), requantize(acc, REQUANT_SHIFT));
    }

    #[test]
    fn pooling_and_gap_behave() {
        let mut input = Tensor::zeros(TensorShape::feature_map(1, 4, 4));
        for (i, v) in input.data.iter_mut().enumerate() {
            *v = i as i8;
        }
        let max = pool(&input, (2, 2), (2, 2), (0, 0), true).unwrap();
        assert_eq!(max.shape, TensorShape::feature_map(1, 2, 2));
        assert_eq!(max.at(0, 0, 0, 0), 5);
        let avg = pool(&input, (2, 2), (2, 2), (0, 0), false).unwrap();
        assert_eq!(avg.at(0, 0, 0, 0), (1 + 4 + 5) / 4);
        let gap = global_avg_pool(&input);
        assert_eq!(gap.shape, TensorShape::vector(1));
        assert_eq!(i32::from(gap.data[0]), (0..16).sum::<i32>() / 16);
    }

    #[test]
    fn activations_clamp_correctly() {
        let input = Tensor { shape: TensorShape::vector(5), data: vec![-10, -1, 0, 3, 10] };
        assert_eq!(activation(&input, ActivationKind::Relu).data, vec![0, 0, 0, 3, 10]);
        assert_eq!(activation(&input, ActivationKind::Relu6).data, vec![0, 0, 0, 3, 6]);
        let hs = activation(&input, ActivationKind::HardSwish).data;
        assert_eq!(hs[0], 0);
        assert_eq!(hs[4], 10);
        let sg = activation(&input, ActivationKind::Sigmoid).data;
        assert_eq!(sg[0], 0);
        assert_eq!(sg[4], 127);
    }

    #[test]
    fn add_saturates() {
        let a = Tensor { shape: TensorShape::vector(2), data: vec![100, -100] };
        let b = Tensor { shape: TensorShape::vector(2), data: vec![100, -100] };
        assert_eq!(add(&a, &b).data, vec![127, -128]);
    }

    #[test]
    fn graph_execution_produces_all_tensors() {
        let mut b = GraphBuilder::new();
        let input = b.input("x", TensorShape::feature_map(3, 8, 8));
        let c1 = b
            .node(
                "conv1",
                OpKind::Conv2d {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: (1, 1),
                    groups: 1,
                },
                &[input],
            )
            .unwrap();
        let r1 = b.node("relu", OpKind::Activation(ActivationKind::Relu), &[c1]).unwrap();
        let g1 = b.node("gap", OpKind::GlobalAvgPool, &[r1]).unwrap();
        let fc = b.node("fc", OpKind::Linear { out_features: 10 }, &[g1]).unwrap();
        let graph = b.finish(&[fc]).unwrap();

        let values =
            execute(&graph, &Tensor::synthetic(TensorShape::feature_map(3, 8, 8), 1)).unwrap();
        let out = &values[graph.outputs()[0].0];
        assert_eq!(out.shape, TensorShape::vector(10));
        // ReLU output must be non-negative.
        let relu_tensor = &values[graph.nodes()[1].output.0];
        assert!(relu_tensor.data.iter().all(|&v| v >= 0));
    }

    #[test]
    fn synthetic_data_is_deterministic_and_bounded() {
        let a = synthetic_weights("conv1", 100);
        let b = synthetic_weights("conv1", 100);
        let c = synthetic_weights("conv2", 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (-8..=8).contains(&v)));
        let t1 = Tensor::synthetic(TensorShape::vector(64), 5);
        let t2 = Tensor::synthetic(TensorShape::vector(64), 5);
        assert_eq!(t1, t2);
    }
}
