//! Tensor shapes and element data types.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Element data types supported by the INT8 inference flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 8-bit signed integer (weights and activations).
    Int8,
    /// 32-bit signed integer (accumulators and biases).
    Int32,
}

impl DataType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            DataType::Int8 => 1,
            DataType::Int32 => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int8 => f.write_str("int8"),
            DataType::Int32 => f.write_str("int32"),
        }
    }
}

/// The shape of an activation tensor in `N × C × H × W` layout.
///
/// All four benchmark models use batch size 1 in the paper's evaluation;
/// the batch dimension is nevertheless carried explicitly so that batched
/// design-space studies remain possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape {
    /// Batch size.
    pub n: u32,
    /// Channels.
    pub c: u32,
    /// Height.
    pub h: u32,
    /// Width.
    pub w: u32,
}

impl TensorShape {
    /// Creates an `N × C × H × W` shape.
    pub fn new(n: u32, c: u32, h: u32, w: u32) -> Self {
        TensorShape { n, c, h, w }
    }

    /// Creates a feature-map shape with batch size one.
    pub fn feature_map(c: u32, h: u32, w: u32) -> Self {
        TensorShape::new(1, c, h, w)
    }

    /// Creates a flat vector shape (`1 × c × 1 × 1`).
    pub fn vector(c: u32) -> Self {
        TensorShape::new(1, c, 1, 1)
    }

    /// Number of elements in the tensor.
    pub fn elements(&self) -> u64 {
        u64::from(self.n) * u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Number of elements in one batch item.
    pub fn elements_per_item(&self) -> u64 {
        u64::from(self.c) * u64::from(self.h) * u64::from(self.w)
    }

    /// Size of the tensor in bytes for the given element type.
    pub fn bytes(&self, dtype: DataType) -> u64 {
        self.elements() * dtype.bytes()
    }

    /// Number of spatial positions (`h × w`).
    pub fn spatial(&self) -> u64 {
        u64::from(self.h) * u64::from(self.w)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_and_byte_counts() {
        let s = TensorShape::new(1, 64, 56, 56);
        assert_eq!(s.elements(), 64 * 56 * 56);
        assert_eq!(s.bytes(DataType::Int8), 64 * 56 * 56);
        assert_eq!(s.bytes(DataType::Int32), 4 * 64 * 56 * 56);
        assert_eq!(s.spatial(), 56 * 56);
    }

    #[test]
    fn constructors() {
        assert_eq!(TensorShape::feature_map(3, 224, 224).n, 1);
        let v = TensorShape::vector(1000);
        assert_eq!(v.elements(), 1000);
        assert_eq!(v.h, 1);
    }

    #[test]
    fn display_formats_dimensions() {
        assert_eq!(TensorShape::new(1, 3, 224, 224).to_string(), "1x3x224x224");
        assert_eq!(DataType::Int8.to_string(), "int8");
    }

    #[test]
    fn serde_round_trip() {
        let s = TensorShape::new(2, 16, 8, 8);
        let back: TensorShape = serde_json::from_str(&serde_json::to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
