use std::error::Error;
use std::fmt;

/// Errors raised while building, validating or serializing computation
/// graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An operator received an input tensor with an incompatible shape.
    ShapeMismatch {
        /// The operator (by name) that rejected its inputs.
        op: String,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// A tensor or operator identifier does not exist in the graph.
    UnknownId {
        /// Description of the missing entity.
        what: String,
    },
    /// The graph contains a cycle or another structural defect.
    InvalidGraph {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A serialized model could not be parsed.
    ParseModel {
        /// Underlying parser message.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, reason } => {
                write!(f, "shape mismatch at operator `{op}`: {reason}")
            }
            NnError::UnknownId { what } => write!(f, "unknown identifier: {what}"),
            NnError::InvalidGraph { reason } => write!(f, "invalid computation graph: {reason}"),
            NnError::ParseModel { reason } => {
                write!(f, "failed to parse model description: {reason}")
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NnError::ShapeMismatch { op: "conv1".into(), reason: "expected 4 dims".into() };
        assert!(e.to_string().contains("conv1"));
        let e = NnError::InvalidGraph { reason: "cycle detected".into() };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
