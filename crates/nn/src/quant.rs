//! INT8 quantization parameters and helpers.
//!
//! The paper quantizes weights and activations of every benchmark model to
//! INT8. This module provides the per-tensor affine quantization
//! parameters used by the reference executor and by the compiler when it
//! emits requantization (`vec_quant`) instructions.

use serde::{Deserialize, Serialize};

/// Per-tensor affine quantization parameters (`real = scale · (q - zero)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale factor.
    pub scale: f32,
    /// Zero point.
    pub zero_point: i32,
}

impl QuantParams {
    /// Symmetric INT8 quantization with the given scale.
    pub fn symmetric(scale: f32) -> Self {
        QuantParams { scale, zero_point: 0 }
    }

    /// Identity quantization (scale 1, zero point 0).
    pub fn identity() -> Self {
        QuantParams::symmetric(1.0)
    }

    /// Quantizes a real value to INT8 with saturation.
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round() as i32 + self.zero_point;
        q.clamp(i32::from(i8::MIN), i32::from(i8::MAX)) as i8
    }

    /// Dequantizes an INT8 value back to a real value.
    pub fn dequantize(&self, value: i8) -> f32 {
        (i32::from(value) - self.zero_point) as f32 * self.scale
    }

    /// The power-of-two right-shift that best approximates the
    /// requantization from an INT32 accumulator back to INT8, as used by
    /// the hardware `vec_quant` instruction.
    pub fn requant_shift(accumulator_scale: f32, output_scale: f32) -> u32 {
        if output_scale <= 0.0 || accumulator_scale <= 0.0 {
            return 0;
        }
        let ratio = output_scale / accumulator_scale;
        ratio.log2().round().max(0.0) as u32
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self::identity()
    }
}

/// Requantizes an INT32 accumulator to INT8 by arithmetic right shift with
/// saturation — the exact operation implemented by the `vec_quant`
/// instruction and the reference executor.
pub fn requantize(acc: i32, shift: u32) -> i8 {
    let shifted = acc >> shift.min(31);
    shifted.clamp(i32::from(i8::MIN), i32::from(i8::MAX)) as i8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trips_within_one_step() {
        let q = QuantParams::symmetric(0.05);
        for value in [-3.0f32, -0.07, 0.0, 0.04, 1.3, 6.0] {
            let quantized = q.quantize(value);
            let restored = q.dequantize(quantized);
            assert!((restored - value.clamp(-6.4, 6.35)).abs() <= 0.05 + 1e-6);
        }
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantParams::symmetric(0.01);
        assert_eq!(q.quantize(100.0), i8::MAX);
        assert_eq!(q.quantize(-100.0), i8::MIN);
    }

    #[test]
    fn requantize_shifts_and_saturates() {
        assert_eq!(requantize(1024, 4), 64);
        assert_eq!(requantize(-1024, 4), -64);
        assert_eq!(requantize(1 << 20, 2), i8::MAX);
        assert_eq!(requantize(-(1 << 20), 2), i8::MIN);
        assert_eq!(requantize(100, 0), 100);
    }

    #[test]
    fn requant_shift_estimates_ratio() {
        assert_eq!(QuantParams::requant_shift(1.0, 256.0), 8);
        assert_eq!(QuantParams::requant_shift(1.0, 1.0), 0);
        assert_eq!(QuantParams::requant_shift(0.0, 1.0), 0);
    }

    #[test]
    fn identity_default() {
        assert_eq!(QuantParams::default(), QuantParams::identity());
        assert_eq!(QuantParams::identity().quantize(5.0), 5);
    }
}
