//! The benchmark model zoo: the four evaluation workloads of the paper.
//!
//! "The suite encompasses compute-intensive architectures including
//! ResNet18 and VGG19, alongside compact models featuring depth-wise
//! separable convolutions such as MobileNetV2 and EfficientNetB0"
//! (Sec. IV-A). All models are built for INT8 inference at batch size 1.
//!
//! Every constructor takes the input resolution so that experiments can be
//! scaled down (e.g. 32 or 64 pixels) for fast regression runs while the
//! 224-pixel ImageNet geometry remains available; EXPERIMENTS.md records
//! which resolution each reproduced figure uses.

mod efficientnet;
mod mobilenet;
mod resnet;
mod vgg;

pub use efficientnet::efficientnet_b0;
pub use mobilenet::mobilenet_v2;
pub use resnet::resnet18;
pub use vgg::vgg19;

use crate::graph::Model;

/// The canonical benchmark suite of the paper, at the given input
/// resolution, in the order used by Fig. 5.
pub fn benchmark_suite(resolution: u32) -> Vec<Model> {
    vec![
        resnet18(resolution),
        vgg19(resolution),
        mobilenet_v2(resolution),
        efficientnet_b0(resolution),
    ]
}

/// Looks a benchmark model up by its lowercase name.
pub fn by_name(name: &str, resolution: u32) -> Option<Model> {
    match name {
        "resnet18" => Some(resnet18(resolution)),
        "vgg19" => Some(vgg19(resolution)),
        "mobilenetv2" | "mobilenet_v2" => Some(mobilenet_v2(resolution)),
        "efficientnetb0" | "efficientnet_b0" => Some(efficientnet_b0(resolution)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_contains_the_four_paper_models() {
        let suite = benchmark_suite(224);
        let names: Vec<_> = suite.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["resnet18", "vgg19", "mobilenetv2", "efficientnetb0"]);
        for model in &suite {
            assert!(model.graph.validate().is_ok(), "{} must validate", model.name);
        }
    }

    #[test]
    fn parameter_counts_match_published_sizes() {
        // Weight byte counts (INT8) should be close to the published
        // parameter counts of the FP32 models.
        let resnet = resnet18(224).graph.stats().total_weight_bytes as f64;
        assert!((10.0e6..13.5e6).contains(&resnet), "resnet18 params {resnet}");
        let vgg = vgg19(224).graph.stats().total_weight_bytes as f64;
        assert!((138.0e6..146.0e6).contains(&vgg), "vgg19 params {vgg}");
        let mobilenet = mobilenet_v2(224).graph.stats().total_weight_bytes as f64;
        assert!((2.8e6..4.5e6).contains(&mobilenet), "mobilenetv2 params {mobilenet}");
        let efficientnet = efficientnet_b0(224).graph.stats().total_weight_bytes as f64;
        assert!((4.0e6..6.5e6).contains(&efficientnet), "efficientnetb0 params {efficientnet}");
    }

    #[test]
    fn mac_counts_match_published_complexity() {
        let resnet = resnet18(224).graph.stats().total_macs as f64;
        assert!((1.6e9..2.1e9).contains(&resnet), "resnet18 MACs {resnet}");
        let vgg = vgg19(224).graph.stats().total_macs as f64;
        assert!((18.0e9..21.0e9).contains(&vgg), "vgg19 MACs {vgg}");
        let mobilenet = mobilenet_v2(224).graph.stats().total_macs as f64;
        assert!((0.25e9..0.45e9).contains(&mobilenet), "mobilenetv2 MACs {mobilenet}");
        let efficientnet = efficientnet_b0(224).graph.stats().total_macs as f64;
        assert!((0.3e9..0.55e9).contains(&efficientnet), "efficientnetb0 MACs {efficientnet}");
    }

    #[test]
    fn compact_models_use_depthwise_convolutions() {
        for model in [mobilenet_v2(224), efficientnet_b0(224)] {
            let has_dw = model.graph.nodes().iter().any(|n| {
                matches!(
                    n.op,
                    crate::OpKind::Conv2d { groups, .. } if groups > 1
                )
            });
            assert!(has_dw, "{} must contain depth-wise convolutions", model.name);
        }
    }

    #[test]
    fn reduced_resolution_scales_macs_but_not_weights() {
        let full = resnet18(224).graph.stats();
        let small = resnet18(64).graph.stats();
        assert!(small.total_macs < full.total_macs / 6);
        // FC input stays 512 features thanks to global average pooling.
        assert_eq!(small.total_weight_bytes, full.total_weight_bytes);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("resnet18", 64).is_some());
        assert!(by_name("mobilenet_v2", 64).is_some());
        assert!(by_name("unknown", 64).is_none());
    }
}
