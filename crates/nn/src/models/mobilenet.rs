//! MobileNetV2 (Sandler et al., CVPR 2018) for INT8 inference.

use crate::graph::{GraphBuilder, Model, TensorId};
use crate::op::{ActivationKind, OpKind};
use crate::tensor::TensorShape;

fn conv(out: u32, k: u32, s: u32, p: u32, groups: u32) -> OpKind {
    OpKind::Conv2d { out_channels: out, kernel: (k, k), stride: (s, s), padding: (p, p), groups }
}

/// One inverted-residual bottleneck block: 1×1 expansion, 3×3 depth-wise
/// convolution, 1×1 linear projection and an optional residual add.
fn inverted_residual(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    expansion: u32,
    out_channels: u32,
    stride: u32,
) -> TensorId {
    let in_channels = b.shape(input).c;
    let hidden = in_channels * expansion;
    let mut x = input;
    if expansion != 1 {
        x = b
            .node(&format!("{name}.expand"), conv(hidden, 1, 1, 0, 1), &[x])
            .expect("valid expand conv");
        x = b
            .node(&format!("{name}.expand_relu"), OpKind::Activation(ActivationKind::Relu6), &[x])
            .expect("valid expand relu");
    }
    x = b
        .node(&format!("{name}.dwconv"), conv(hidden, 3, stride, 1, hidden), &[x])
        .expect("valid depthwise conv");
    x = b
        .node(&format!("{name}.dw_relu"), OpKind::Activation(ActivationKind::Relu6), &[x])
        .expect("valid depthwise relu");
    x = b
        .node(&format!("{name}.project"), conv(out_channels, 1, 1, 0, 1), &[x])
        .expect("valid projection conv");
    if stride == 1 && in_channels == out_channels {
        x = b.node(&format!("{name}.add"), OpKind::Add, &[x, input]).expect("valid residual add");
    }
    x
}

/// Builds MobileNetV2 (width multiplier 1.0) at the given square input
/// resolution.
pub fn mobilenet_v2(resolution: u32) -> Model {
    let mut b = GraphBuilder::new();
    let input = b.input("image", TensorShape::feature_map(3, resolution, resolution));

    let mut x = b.node("stem", conv(32, 3, 2, 1, 1), &[input]).expect("valid stem");
    x = b
        .node("stem_relu", OpKind::Activation(ActivationKind::Relu6), &[x])
        .expect("valid stem relu");

    // (expansion, out_channels, repeats, first stride) — Table 2 of the paper.
    let blocks: [(u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut block_index = 0;
    for (expansion, out_channels, repeats, first_stride) in blocks {
        for repeat in 0..repeats {
            let stride = if repeat == 0 { first_stride } else { 1 };
            x = inverted_residual(
                &mut b,
                &format!("block{block_index}"),
                x,
                expansion,
                out_channels,
                stride,
            );
            block_index += 1;
        }
    }

    x = b.node("head", conv(1280, 1, 1, 0, 1), &[x]).expect("valid head conv");
    x = b
        .node("head_relu", OpKind::Activation(ActivationKind::Relu6), &[x])
        .expect("valid head relu");
    let pooled = b.node("gap", OpKind::GlobalAvgPool, &[x]).expect("valid gap");
    let logits =
        b.node("fc", OpKind::Linear { out_features: 1000 }, &[pooled]).expect("valid classifier");

    let graph = b.finish(&[logits]).expect("mobilenetv2 graph is structurally valid");
    Model::new("mobilenetv2", graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobilenet_v2_has_seventeen_bottlenecks() {
        let model = mobilenet_v2(224);
        let dwconvs = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Conv2d { groups, .. } if groups > 1))
            .count();
        assert_eq!(dwconvs, 17);
    }

    #[test]
    fn residual_adds_only_on_stride_one_same_width_blocks() {
        let model = mobilenet_v2(224);
        let adds = model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Add)).count();
        // 1+2+3+2+2 blocks with identity = 10 residual adds.
        assert_eq!(adds, 10);
    }

    #[test]
    fn weight_footprint_is_small() {
        let stats = mobilenet_v2(224).graph.stats();
        assert!(stats.total_weight_bytes < 5_000_000);
        assert!(stats.max_weight_bytes < 2_000_000);
    }
}
