//! VGG19 (Simonyan & Zisserman, ICLR 2015) for INT8 inference.

use crate::graph::{GraphBuilder, Model};
use crate::op::{ActivationKind, OpKind};
use crate::tensor::TensorShape;

fn conv3(out: u32) -> OpKind {
    OpKind::Conv2d { out_channels: out, kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 }
}

/// Builds VGG19 at the given square input resolution (224 for the ImageNet
/// geometry). The three fully connected layers use the standard
/// 4096/4096/1000 sizes when the final feature map is 7×7 (i.e. for
/// 224-pixel inputs) and scale with the flattened feature size otherwise.
pub fn vgg19(resolution: u32) -> Model {
    let mut b = GraphBuilder::new();
    let mut x = b.input("image", TensorShape::feature_map(3, resolution, resolution));

    // (channel count, convolutions per stage) for the 19-layer configuration E.
    let stages: [(u32, u32); 5] = [(64, 2), (128, 2), (256, 4), (512, 4), (512, 4)];
    for (stage_idx, (channels, convs)) in stages.into_iter().enumerate() {
        for conv_idx in 0..convs {
            x = b
                .node(&format!("conv{}_{}", stage_idx + 1, conv_idx + 1), conv3(channels), &[x])
                .expect("valid vgg conv");
            x = b
                .node(
                    &format!("relu{}_{}", stage_idx + 1, conv_idx + 1),
                    OpKind::Activation(ActivationKind::Relu),
                    &[x],
                )
                .expect("valid vgg relu");
        }
        x = b
            .node(
                &format!("pool{}", stage_idx + 1),
                OpKind::MaxPool { kernel: (2, 2), stride: (2, 2), padding: (0, 0) },
                &[x],
            )
            .expect("valid vgg pool");
    }

    let flat = b.node("flatten", OpKind::Flatten, &[x]).expect("valid flatten");
    let fc1 = b.node("fc1", OpKind::Linear { out_features: 4096 }, &[flat]).expect("valid fc1");
    let relu_fc1 = b
        .node("relu_fc1", OpKind::Activation(ActivationKind::Relu), &[fc1])
        .expect("valid fc relu");
    let fc2 = b.node("fc2", OpKind::Linear { out_features: 4096 }, &[relu_fc1]).expect("valid fc2");
    let relu_fc2 = b
        .node("relu_fc2", OpKind::Activation(ActivationKind::Relu), &[fc2])
        .expect("valid fc relu");
    let logits =
        b.node("fc3", OpKind::Linear { out_features: 1000 }, &[relu_fc2]).expect("valid fc3");

    let graph = b.finish(&[logits]).expect("vgg19 graph is structurally valid");
    Model::new("vgg19", graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg19_has_sixteen_convs_and_three_fcs() {
        let model = vgg19(224);
        let convs =
            model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Conv2d { .. })).count();
        let fcs =
            model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Linear { .. })).count();
        assert_eq!(convs, 16);
        assert_eq!(fcs, 3);
    }

    #[test]
    fn fully_connected_layers_dominate_weights_at_full_resolution() {
        let model = vgg19(224);
        let stats = model.graph.stats();
        let fc_weights: u64 =
            stats.per_op.iter().filter(|o| o.name.starts_with("fc")).map(|o| o.weight_bytes).sum();
        assert!(fc_weights * 2 > stats.total_weight_bytes, "VGG19 FC layers hold most parameters");
    }

    #[test]
    fn scales_down_to_small_resolutions() {
        let model = vgg19(32);
        assert!(model.graph.validate().is_ok());
        // 32 / 2^5 = 1 pixel feature map at the end.
        let flatten = model.graph.nodes().iter().find(|n| n.name == "flatten").unwrap();
        assert_eq!(model.graph.output_shape(flatten.id), TensorShape::vector(512));
    }
}
