//! EfficientNetB0 (Tan & Le, ICML 2019) for INT8 inference.

use crate::graph::{GraphBuilder, Model, TensorId};
use crate::op::{ActivationKind, OpKind};
use crate::tensor::TensorShape;

fn conv(out: u32, k: u32, s: u32, p: u32, groups: u32) -> OpKind {
    OpKind::Conv2d { out_channels: out, kernel: (k, k), stride: (s, s), padding: (p, p), groups }
}

/// Squeeze-and-excitation gate: global average pooling, a reduction 1×1
/// convolution, an expansion 1×1 convolution with a sigmoid, and a
/// broadcast multiplication back onto the feature map.
fn squeeze_excite(b: &mut GraphBuilder, name: &str, input: TensorId, reduced: u32) -> TensorId {
    let channels = b.shape(input).c;
    let squeezed =
        b.node(&format!("{name}.se_gap"), OpKind::GlobalAvgPool, &[input]).expect("valid se gap");
    let reduce = b
        .node(&format!("{name}.se_reduce"), conv(reduced.max(1), 1, 1, 0, 1), &[squeezed])
        .expect("valid se reduce");
    let act = b
        .node(&format!("{name}.se_act"), OpKind::Activation(ActivationKind::HardSwish), &[reduce])
        .expect("valid se activation");
    let expand = b
        .node(&format!("{name}.se_expand"), conv(channels, 1, 1, 0, 1), &[act])
        .expect("valid se expand");
    let gate = b
        .node(&format!("{name}.se_sigmoid"), OpKind::Activation(ActivationKind::Sigmoid), &[expand])
        .expect("valid se sigmoid");
    b.node(&format!("{name}.se_mul"), OpKind::Mul, &[input, gate]).expect("valid se multiply")
}

/// One MBConv block: 1×1 expansion, k×k depth-wise convolution,
/// squeeze-and-excitation, 1×1 linear projection, optional residual.
#[allow(clippy::too_many_arguments)]
fn mbconv(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    expansion: u32,
    out_channels: u32,
    kernel: u32,
    stride: u32,
) -> TensorId {
    let in_channels = b.shape(input).c;
    let hidden = in_channels * expansion;
    let mut x = input;
    if expansion != 1 {
        x = b
            .node(&format!("{name}.expand"), conv(hidden, 1, 1, 0, 1), &[x])
            .expect("valid expand");
        x = b
            .node(
                &format!("{name}.expand_act"),
                OpKind::Activation(ActivationKind::HardSwish),
                &[x],
            )
            .expect("valid expand act");
    }
    let padding = kernel / 2;
    x = b
        .node(&format!("{name}.dwconv"), conv(hidden, kernel, stride, padding, hidden), &[x])
        .expect("valid depthwise");
    x = b
        .node(&format!("{name}.dw_act"), OpKind::Activation(ActivationKind::HardSwish), &[x])
        .expect("valid depthwise act");
    x = squeeze_excite(b, name, x, in_channels / 4);
    x = b
        .node(&format!("{name}.project"), conv(out_channels, 1, 1, 0, 1), &[x])
        .expect("valid projection");
    if stride == 1 && in_channels == out_channels {
        x = b.node(&format!("{name}.add"), OpKind::Add, &[x, input]).expect("valid residual add");
    }
    x
}

/// Builds EfficientNetB0 at the given square input resolution.
pub fn efficientnet_b0(resolution: u32) -> Model {
    let mut b = GraphBuilder::new();
    let input = b.input("image", TensorShape::feature_map(3, resolution, resolution));

    let mut x = b.node("stem", conv(32, 3, 2, 1, 1), &[input]).expect("valid stem");
    x = b
        .node("stem_act", OpKind::Activation(ActivationKind::HardSwish), &[x])
        .expect("valid stem act");

    // (expansion, out_channels, repeats, first stride, kernel) — B0 config.
    let blocks: [(u32, u32, u32, u32, u32); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    let mut index = 0;
    for (expansion, out_channels, repeats, first_stride, kernel) in blocks {
        for repeat in 0..repeats {
            let stride = if repeat == 0 { first_stride } else { 1 };
            x = mbconv(
                &mut b,
                &format!("mbconv{index}"),
                x,
                expansion,
                out_channels,
                kernel,
                stride,
            );
            index += 1;
        }
    }

    x = b.node("head", conv(1280, 1, 1, 0, 1), &[x]).expect("valid head");
    x = b
        .node("head_act", OpKind::Activation(ActivationKind::HardSwish), &[x])
        .expect("valid head act");
    let pooled = b.node("gap", OpKind::GlobalAvgPool, &[x]).expect("valid gap");
    let logits =
        b.node("fc", OpKind::Linear { out_features: 1000 }, &[pooled]).expect("valid classifier");

    let graph = b.finish(&[logits]).expect("efficientnetb0 graph is structurally valid");
    Model::new("efficientnetb0", graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficientnet_b0_has_sixteen_mbconv_blocks() {
        let model = efficientnet_b0(224);
        let dwconvs = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Conv2d { groups, .. } if groups > 1))
            .count();
        assert_eq!(dwconvs, 16);
    }

    #[test]
    fn squeeze_excitation_present_in_every_block() {
        let model = efficientnet_b0(224);
        let se_muls = model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Mul)).count();
        assert_eq!(se_muls, 16);
        let sigmoids = model
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Activation(ActivationKind::Sigmoid)))
            .count();
        assert_eq!(sigmoids, 16);
    }

    #[test]
    fn branching_graph_still_validates_and_orders() {
        let model = efficientnet_b0(64);
        assert!(model.graph.validate().is_ok());
        assert_eq!(model.graph.topological_order().len(), model.graph.len());
    }
}
