//! ResNet18 (He et al., CVPR 2016) for INT8 inference.

use crate::graph::{GraphBuilder, Model, TensorId};
use crate::op::{ActivationKind, OpKind};
use crate::tensor::TensorShape;

fn conv(out: u32, k: u32, s: u32, p: u32) -> OpKind {
    OpKind::Conv2d { out_channels: out, kernel: (k, k), stride: (s, s), padding: (p, p), groups: 1 }
}

/// One basic residual block: two 3×3 convolutions plus an identity or
/// 1×1-projection shortcut.
fn basic_block(
    b: &mut GraphBuilder,
    name: &str,
    input: TensorId,
    channels: u32,
    stride: u32,
    project: bool,
) -> TensorId {
    let c1 = b
        .node(&format!("{name}.conv1"), conv(channels, 3, stride, 1), &[input])
        .expect("valid block conv1");
    let r1 = b
        .node(&format!("{name}.relu1"), OpKind::Activation(ActivationKind::Relu), &[c1])
        .expect("valid block relu1");
    let c2 = b
        .node(&format!("{name}.conv2"), conv(channels, 3, 1, 1), &[r1])
        .expect("valid block conv2");
    let shortcut = if project {
        b.node(&format!("{name}.downsample"), conv(channels, 1, stride, 0), &[input])
            .expect("valid downsample")
    } else {
        input
    };
    let sum =
        b.node(&format!("{name}.add"), OpKind::Add, &[c2, shortcut]).expect("valid residual add");
    b.node(&format!("{name}.relu2"), OpKind::Activation(ActivationKind::Relu), &[sum])
        .expect("valid block relu2")
}

/// Builds ResNet18 at the given square input resolution (224 for the
/// ImageNet geometry).
pub fn resnet18(resolution: u32) -> Model {
    let mut b = GraphBuilder::new();
    let input = b.input("image", TensorShape::feature_map(3, resolution, resolution));

    let stem = b.node("conv1", conv(64, 7, 2, 3), &[input]).expect("valid stem");
    let stem = b
        .node("relu1", OpKind::Activation(ActivationKind::Relu), &[stem])
        .expect("valid stem relu");
    let mut x = b
        .node(
            "maxpool",
            OpKind::MaxPool { kernel: (3, 3), stride: (2, 2), padding: (1, 1) },
            &[stem],
        )
        .expect("valid stem pool");

    let stages: [(u32, u32, &str); 4] =
        [(64, 1, "layer1"), (128, 2, "layer2"), (256, 2, "layer3"), (512, 2, "layer4")];
    for (channels, first_stride, name) in stages {
        let project = first_stride != 1 || b.shape(x).c != channels;
        x = basic_block(&mut b, &format!("{name}.0"), x, channels, first_stride, project);
        x = basic_block(&mut b, &format!("{name}.1"), x, channels, 1, false);
    }

    let pooled = b.node("gap", OpKind::GlobalAvgPool, &[x]).expect("valid gap");
    let logits =
        b.node("fc", OpKind::Linear { out_features: 1000 }, &[pooled]).expect("valid classifier");
    let graph = b.finish(&[logits]).expect("resnet18 graph is structurally valid");
    Model::new("resnet18", graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_has_expected_structure() {
        let model = resnet18(224);
        let convs =
            model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Conv2d { .. })).count();
        // 1 stem + 16 block convs + 3 downsample projections.
        assert_eq!(convs, 20);
        let fcs =
            model.graph.nodes().iter().filter(|n| matches!(n.op, OpKind::Linear { .. })).count();
        assert_eq!(fcs, 1);
        assert_eq!(
            model.graph.output_shape(model.graph.nodes().last().unwrap().id),
            TensorShape::vector(1000)
        );
    }

    #[test]
    fn residual_adds_receive_two_inputs() {
        let model = resnet18(64);
        for node in model.graph.nodes() {
            if matches!(node.op, OpKind::Add) {
                assert_eq!(node.inputs.len(), 2, "residual add {} needs two inputs", node.name);
            }
        }
    }

    #[test]
    fn works_at_small_resolutions() {
        let model = resnet18(32);
        assert!(model.graph.validate().is_ok());
        assert!(model.graph.stats().total_macs > 0);
    }
}
