//! # cimflow-nn
//!
//! DNN workload description for the CIMFlow framework — the "Model Desc."
//! user input of the paper's workflow (Fig. 2).
//!
//! The original framework ingests ONNX models; this reproduction uses an
//! equivalent in-crate computation-graph IR plus a JSON serialization (see
//! DESIGN.md for the substitution rationale). The crate provides:
//!
//! * tensor shapes and INT8/INT32 data types ([`TensorShape`], [`DataType`]),
//! * operator descriptions with shape inference, weight footprints and MAC
//!   counts ([`OpKind`], [`Node`]),
//! * a validated directed-acyclic computation [`Graph`] with topological
//!   ordering and producer/consumer queries,
//! * INT8 quantization parameters ([`QuantParams`]),
//! * workload statistics ([`WorkloadStats`]),
//! * a model zoo ([`models`]) building ResNet18, VGG19, MobileNetV2 and
//!   EfficientNetB0 — the four evaluation benchmarks of the paper,
//! * a golden reference executor ([`mod@reference`]) used by compiler and
//!   simulator tests for functional validation.
//!
//! # Example
//!
//! ```
//! use cimflow_nn::models;
//!
//! let model = models::resnet18(32);
//! let stats = model.graph.stats();
//! assert!(stats.total_weight_bytes > 10_000_000, "ResNet18 has ~11.7M parameters");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
pub mod models;
mod op;
mod quant;
pub mod reference;
mod stats;
mod tensor;

pub use error::NnError;
pub use graph::{Graph, GraphBuilder, Model, Node, OpId, TensorId, TensorInfo};
pub use op::{ActivationKind, OpKind};
pub use quant::QuantParams;
pub use stats::{OpStats, WorkloadStats};
pub use tensor::{DataType, TensorShape};
