//! The computation graph: a validated DAG of operators over named tensors.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::op::OpKind;
use crate::stats::{OpStats, WorkloadStats};
use crate::tensor::{DataType, TensorShape};
use crate::NnError;

/// Identifier of a tensor inside one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorId(pub usize);

/// Identifier of an operator (node) inside one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub usize);

impl fmt::Display for TensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Metadata of an activation tensor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TensorInfo {
    /// Human-readable name.
    pub name: String,
    /// Shape in `N × C × H × W` layout.
    pub shape: TensorShape,
    /// Element type.
    pub dtype: DataType,
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier of the node.
    pub id: OpId,
    /// Human-readable name (e.g. `layer2.0.conv1`).
    pub name: String,
    /// Operator kind and attributes.
    pub op: OpKind,
    /// Activation inputs (weights are implicit / synthetic).
    pub inputs: Vec<TensorId>,
    /// The single activation output.
    pub output: TensorId,
}

/// A validated directed acyclic computation graph.
///
/// Graphs are constructed through [`GraphBuilder`], which performs shape
/// inference, or deserialized from the JSON model-description format and
/// then validated with [`Graph::validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    tensors: Vec<TensorInfo>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
}

impl Graph {
    /// All tensors of the graph, indexable by [`TensorId`].
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// All nodes of the graph, indexable by [`OpId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The graph-level input tensors.
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// The graph-level output tensors.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// Looks up a tensor.
    pub fn tensor(&self, id: TensorId) -> &TensorInfo {
        &self.tensors[id.0]
    }

    /// Looks up a node.
    pub fn node(&self, id: OpId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of operators in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no operators.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node producing a tensor, if any (graph inputs have none).
    pub fn producer(&self, tensor: TensorId) -> Option<OpId> {
        self.nodes.iter().find(|n| n.output == tensor).map(|n| n.id)
    }

    /// The nodes consuming a tensor.
    pub fn consumers(&self, tensor: TensorId) -> Vec<OpId> {
        self.nodes.iter().filter(|n| n.inputs.contains(&tensor)).map(|n| n.id).collect()
    }

    /// Direct predecessors (producers of this node's inputs).
    pub fn predecessors(&self, id: OpId) -> Vec<OpId> {
        let mut preds: Vec<OpId> =
            self.node(id).inputs.iter().filter_map(|t| self.producer(*t)).collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }

    /// Direct successors (consumers of this node's output).
    pub fn successors(&self, id: OpId) -> Vec<OpId> {
        self.consumers(self.node(id).output)
    }

    /// The shape of a node's primary input.
    pub fn input_shape(&self, id: OpId) -> TensorShape {
        self.tensor(self.node(id).inputs[0]).shape
    }

    /// The shape of a node's output.
    pub fn output_shape(&self, id: OpId) -> TensorShape {
        self.tensor(self.node(id).output).shape
    }

    /// Returns the node identifiers in a dependency-preserving topological
    /// order (Kahn's algorithm; ties broken by node id for determinism).
    pub fn topological_order(&self) -> Vec<OpId> {
        let mut in_degree: BTreeMap<OpId, usize> =
            self.nodes.iter().map(|n| (n.id, self.predecessors(n.id).len())).collect();
        let mut ready: VecDeque<OpId> =
            in_degree.iter().filter(|(_, d)| **d == 0).map(|(id, _)| *id).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = ready.pop_front() {
            order.push(id);
            for succ in self.successors(id) {
                let d = in_degree.get_mut(&succ).expect("successor exists");
                *d -= 1;
                if *d == 0 {
                    ready.push_back(succ);
                }
            }
        }
        order
    }

    /// Validates structural invariants: identifiers are dense and
    /// consistent, every non-input tensor has exactly one producer, shapes
    /// agree with shape inference, and the graph is acyclic.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NnError> {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.id.0 != i {
                return Err(NnError::InvalidGraph {
                    reason: format!("node {i} has id {}", node.id),
                });
            }
            if node.inputs.is_empty() {
                return Err(NnError::InvalidGraph {
                    reason: format!("node `{}` has no inputs", node.name),
                });
            }
            for t in node.inputs.iter().chain(std::iter::once(&node.output)) {
                if t.0 >= self.tensors.len() {
                    return Err(NnError::UnknownId {
                        what: format!("tensor {t} of node `{}`", node.name),
                    });
                }
            }
            let inferred = node.op.output_shape(self.tensor(node.inputs[0]).shape)?;
            let declared = self.tensor(node.output).shape;
            if inferred != declared {
                return Err(NnError::ShapeMismatch {
                    op: node.name.clone(),
                    reason: format!("declared output {declared} but inferred {inferred}"),
                });
            }
            if node.op.is_binary() && node.inputs.len() != 2 {
                return Err(NnError::InvalidGraph {
                    reason: format!("binary node `{}` has {} inputs", node.name, node.inputs.len()),
                });
            }
        }
        // Exactly one producer per produced tensor.
        let mut produced = vec![0usize; self.tensors.len()];
        for node in &self.nodes {
            produced[node.output.0] += 1;
        }
        for (i, count) in produced.iter().enumerate() {
            if *count > 1 {
                return Err(NnError::InvalidGraph {
                    reason: format!("tensor t{i} has {count} producers"),
                });
            }
        }
        for input in &self.inputs {
            if produced[input.0] != 0 {
                return Err(NnError::InvalidGraph {
                    reason: format!("graph input {input} is produced by a node"),
                });
            }
        }
        // Acyclicity: the topological order must cover every node.
        if self.topological_order().len() != self.nodes.len() {
            return Err(NnError::InvalidGraph { reason: "graph contains a cycle".into() });
        }
        Ok(())
    }

    /// Aggregated workload statistics over all operators.
    pub fn stats(&self) -> WorkloadStats {
        let per_op: Vec<OpStats> = self
            .nodes
            .iter()
            .map(|n| {
                let input = self.tensor(n.inputs[0]).shape;
                OpStats {
                    id: n.id,
                    name: n.name.clone(),
                    macs: n.op.macs(input),
                    weight_bytes: n.op.weight_bytes(input),
                    input_bytes: n
                        .inputs
                        .iter()
                        .map(|t| self.tensor(*t).shape.bytes(self.tensor(*t).dtype))
                        .sum(),
                    output_bytes: self.tensor(n.output).shape.bytes(self.tensor(n.output).dtype),
                    vector_elems: n.op.vector_elems(input),
                    is_mvm: n.op.is_mvm_based(),
                }
            })
            .collect();
        WorkloadStats::from_ops(per_op)
    }

    /// Serializes the graph to the JSON model-description format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("graph serialization cannot fail")
    }

    /// Parses and validates a graph from its JSON model description.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParseModel`] for malformed JSON or a validation
    /// error for structurally broken graphs.
    pub fn from_json(text: &str) -> Result<Self, NnError> {
        let graph: Graph = serde_json::from_str(text)
            .map_err(|e| NnError::ParseModel { reason: e.to_string() })?;
        graph.validate()?;
        Ok(graph)
    }
}

/// A named model: a graph plus the benchmark name used in reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Benchmark name (e.g. `resnet18`).
    pub name: String,
    /// The computation graph.
    pub graph: Graph,
}

impl Model {
    /// Creates a model from a name and a graph.
    pub fn new(name: impl Into<String>, graph: Graph) -> Self {
        Model { name: name.into(), graph }
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.graph.stats();
        write!(
            f,
            "{}: {} ops, {:.1} MMACs, {:.1} MB weights",
            self.name,
            self.graph.len(),
            stats.total_macs as f64 / 1e6,
            stats.total_weight_bytes as f64 / 1e6
        )
    }
}

/// Incremental graph constructor with shape inference.
///
/// # Example
///
/// ```
/// use cimflow_nn::{ActivationKind, GraphBuilder, OpKind, TensorShape};
///
/// # fn main() -> Result<(), cimflow_nn::NnError> {
/// let mut b = GraphBuilder::new();
/// let input = b.input("image", TensorShape::feature_map(3, 32, 32));
/// let conv = b.node(
///     "conv1",
///     OpKind::Conv2d { out_channels: 16, kernel: (3, 3), stride: (1, 1), padding: (1, 1), groups: 1 },
///     &[input],
/// )?;
/// let relu = b.node("relu1", OpKind::Activation(ActivationKind::Relu), &[conv])?;
/// let graph = b.finish(&[relu])?;
/// assert_eq!(graph.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct GraphBuilder {
    tensors: Vec<TensorInfo>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a graph input tensor and returns its identifier.
    pub fn input(&mut self, name: &str, shape: TensorShape) -> TensorId {
        let id = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo { name: name.to_owned(), shape, dtype: DataType::Int8 });
        self.inputs.push(id);
        id
    }

    /// Appends an operator consuming `inputs` and returns its output
    /// tensor identifier.
    ///
    /// # Errors
    ///
    /// Returns a shape-inference error if the operator rejects its input
    /// shape, or [`NnError::UnknownId`] if an input identifier is foreign.
    pub fn node(
        &mut self,
        name: &str,
        op: OpKind,
        inputs: &[TensorId],
    ) -> Result<TensorId, NnError> {
        if inputs.is_empty() {
            return Err(NnError::InvalidGraph {
                reason: format!("node `{name}` needs at least one input"),
            });
        }
        for t in inputs {
            if t.0 >= self.tensors.len() {
                return Err(NnError::UnknownId { what: format!("tensor {t} used by `{name}`") });
            }
        }
        let input_shape = self.tensors[inputs[0].0].shape;
        let output_shape = op.output_shape(input_shape)?;
        let output = TensorId(self.tensors.len());
        self.tensors.push(TensorInfo {
            name: format!("{name}.out"),
            shape: output_shape,
            dtype: DataType::Int8,
        });
        let id = OpId(self.nodes.len());
        self.nodes.push(Node { id, name: name.to_owned(), op, inputs: inputs.to_vec(), output });
        Ok(output)
    }

    /// Shape of an already-declared tensor (useful while building).
    pub fn shape(&self, tensor: TensorId) -> TensorShape {
        self.tensors[tensor.0].shape
    }

    /// Finishes the graph, declaring `outputs` as graph outputs.
    ///
    /// # Errors
    ///
    /// Returns a validation error if the assembled graph violates a
    /// structural invariant.
    pub fn finish(self, outputs: &[TensorId]) -> Result<Graph, NnError> {
        let graph = Graph {
            tensors: self.tensors,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: outputs.to_vec(),
        };
        graph.validate()?;
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::ActivationKind;

    fn conv(out: u32, k: u32, s: u32, p: u32) -> OpKind {
        OpKind::Conv2d {
            out_channels: out,
            kernel: (k, k),
            stride: (s, s),
            padding: (p, p),
            groups: 1,
        }
    }

    fn small_residual_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let input = b.input("image", TensorShape::feature_map(8, 16, 16));
        let c1 = b.node("conv1", conv(8, 3, 1, 1), &[input]).unwrap();
        let r1 = b.node("relu1", OpKind::Activation(ActivationKind::Relu), &[c1]).unwrap();
        let c2 = b.node("conv2", conv(8, 3, 1, 1), &[r1]).unwrap();
        let add = b.node("add", OpKind::Add, &[c2, input]).unwrap();
        let gap = b.node("gap", OpKind::GlobalAvgPool, &[add]).unwrap();
        let fc = b.node("fc", OpKind::Linear { out_features: 10 }, &[gap]).unwrap();
        b.finish(&[fc]).unwrap()
    }

    #[test]
    fn builder_produces_valid_graph() {
        let g = small_residual_graph();
        assert_eq!(g.len(), 6);
        assert!(g.validate().is_ok());
        assert_eq!(g.inputs().len(), 1);
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn producers_consumers_and_neighbors() {
        let g = small_residual_graph();
        let input = g.inputs()[0];
        // The graph input feeds conv1 and the residual add.
        assert_eq!(g.consumers(input).len(), 2);
        assert_eq!(g.producer(input), None);
        let add = g.nodes().iter().find(|n| n.name == "add").unwrap().id;
        let preds = g.predecessors(add);
        assert_eq!(preds.len(), 1, "only conv2 is a produced predecessor");
        let conv2 = g.nodes().iter().find(|n| n.name == "conv2").unwrap().id;
        assert!(preds.contains(&conv2));
        assert_eq!(g.successors(conv2), vec![add]);
    }

    #[test]
    fn topological_order_respects_dependencies() {
        let g = small_residual_graph();
        let order = g.topological_order();
        assert_eq!(order.len(), g.len());
        let pos: BTreeMap<OpId, usize> = order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for node in g.nodes() {
            for pred in g.predecessors(node.id) {
                assert!(pos[&pred] < pos[&node.id], "{pred} must precede {}", node.id);
            }
        }
    }

    #[test]
    fn stats_aggregate_macs_and_weights() {
        let g = small_residual_graph();
        let stats = g.stats();
        assert!(stats.total_macs > 0);
        assert!(stats.total_weight_bytes > 0);
        assert_eq!(stats.per_op.len(), 6);
        assert_eq!(stats.mvm_op_count, 3);
        assert!(
            stats.max_weight_bytes >= stats.per_op.iter().map(|o| o.weight_bytes).max().unwrap()
        );
    }

    #[test]
    fn json_round_trip() {
        let g = small_residual_graph();
        let text = g.to_json();
        let back = Graph::from_json(&text).unwrap();
        assert_eq!(back, g);
        assert!(Graph::from_json("{").is_err());
    }

    #[test]
    fn builder_rejects_foreign_and_empty_inputs() {
        let mut b = GraphBuilder::new();
        let _ = b.input("x", TensorShape::feature_map(3, 8, 8));
        assert!(b.node("bad", OpKind::Add, &[TensorId(42), TensorId(43)]).is_err());
        assert!(b.node("empty", OpKind::Add, &[]).is_err());
    }

    #[test]
    fn validation_catches_shape_corruption() {
        let mut g = small_residual_graph();
        // Corrupt a declared output shape.
        let out = g.nodes[0].output;
        g.tensors[out.0].shape = TensorShape::feature_map(99, 1, 1);
        assert!(matches!(g.validate(), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn validation_catches_duplicate_producers() {
        let mut g = small_residual_graph();
        let dup_output = g.nodes[1].output;
        g.nodes[2].output = dup_output;
        assert!(g.validate().is_err());
    }

    #[test]
    fn model_display_summarizes() {
        let m = Model::new("tiny", small_residual_graph());
        let text = m.to_string();
        assert!(text.contains("tiny"));
        assert!(text.contains("ops"));
    }
}
