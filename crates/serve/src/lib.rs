//! # cimflow-serve
//!
//! The service-oriented front end of the CIMFlow evaluation engine: one
//! crate to depend on when you *embed* a long-lived [`EvalService`]
//! (worker pool + shared cache + admission control) or *talk to* one over
//! the newline-delimited JSON protocol.
//!
//! * **Server side** — re-exported from `cimflow_dse`: [`EvalService`],
//!   [`EvalRequest`], [`JobHandle`]/[`BatchHandle`], [`ServiceConfig`]
//!   (queue bounds, per-tenant quotas), plus the protocol machinery in
//!   [`protocol`] ([`serve_connection`], [`TcpServer`]). The
//!   `cimflow-dse serve` subcommand hosts the same stack from the CLI.
//! * **Client side** — [`Client`], a typed synchronous client for the
//!   TCP transport: submit requests and sweeps, poll, wait, cancel,
//!   fetch stats, request shutdown.
//!
//! # Example
//!
//! ```
//! use cimflow_serve::{Client, EvalRequest, EvalService, ServiceConfig, TcpServer};
//! use cimflow_compiler::Strategy;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), cimflow_serve::ClientError> {
//! let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(2)));
//! let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");
//!
//! let mut client = Client::connect(server.addr())?;
//! let job = client.submit(&EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized))?;
//! let outcome = client.wait_job(job)?;
//! assert!(outcome.ok);
//! server.stop();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;

pub use client::{
    BatchTicket, Client, ClientError, RemoteMetrics, RemoteStats, RemoteStatus, Waited,
};

// The service core and wire protocol live in `cimflow-dse` (the blocking
// `Executor` is rebased on them, which a `cimflow-serve` dependency cycle
// would forbid); this crate is their serving surface.
pub use cimflow_dse::serve as protocol;
pub use cimflow_dse::serve::{
    serve_connection, serve_stdio, Connection, Request, Response, Target, TcpServer, WireMetric,
    WireOutcome,
};
pub use cimflow_dse::{
    BatchHandle, CacheStats, DseError, DseOutcome, EvalCache, EvalRequest, EvalService, JobEvent,
    JobHandle, JobStatus, ModelSpec, Priority, Progress, Rejected, ServiceConfig, ServiceStats,
    ServingSummary, SweepJournal, SweepSpec, TrafficRequest, TrafficSpec, DEFAULT_TENANT,
};
