//! A typed synchronous client for the evaluation service's TCP
//! transport: one JSON request line out, one JSON response line back.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use cimflow_dse::serve::{Request, Response, Target, WireMetric, WireOutcome};
use cimflow_dse::{CacheStats, EvalRequest, Priority, ServiceStats, SweepSpec};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The transport failed (connect, read, write).
    Io {
        /// Human-readable reason.
        reason: String,
    },
    /// The server answered something the client cannot parse, or a
    /// response of an unexpected shape for the request.
    Protocol {
        /// Human-readable reason.
        reason: String,
    },
    /// Admission control rejected the submission: back off and retry.
    Rejected {
        /// Machine-readable kind (`queue_full`, `quota_exceeded`, ...).
        kind: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The server reported a request error (unknown id, malformed line).
    Remote {
        /// The server's message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io { reason } => write!(f, "transport error: {reason}"),
            ClientError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            ClientError::Rejected { kind, reason } => write!(f, "rejected ({kind}): {reason}"),
            ClientError::Remote { message } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(value: std::io::Error) -> Self {
        ClientError::Io { reason: value.to_string() }
    }
}

/// An admitted batch: the ids needed to poll/wait/cancel it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchTicket {
    /// Connection-local batch id.
    pub batch: u64,
    /// Service-wide job ids in grid order.
    pub jobs: Vec<u64>,
    /// Number of points in the batch.
    pub points: usize,
    /// Points served from a journal without re-running.
    pub resumed: usize,
}

/// A non-blocking status snapshot of a job or batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteStatus {
    /// `queued`/`running`/`done`/`cancelled`.
    pub state: String,
    /// Finished points.
    pub completed: usize,
    /// Total points.
    pub total: usize,
}

/// The answer of a deadline-bounded wait ([`Client::wait_job_timeout`],
/// [`Client::wait_batch_timeout`]): either the finished result, or the
/// status at expiry (the id stays addressable — poll, cancel or wait
/// again).
#[derive(Debug, Clone, PartialEq)]
pub enum Waited<T> {
    /// The job/batch finished within the deadline; the id is consumed.
    Finished(T),
    /// The deadline expired first; the id is *not* consumed.
    TimedOut(RemoteStatus),
}

impl<T> Waited<T> {
    /// The finished result, if the wait did not expire.
    pub fn finished(self) -> Option<T> {
        match self {
            Waited::Finished(value) => Some(value),
            Waited::TimedOut(_) => None,
        }
    }
}

/// A server-side counters snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteStats {
    /// Service counters.
    pub service: ServiceStats,
    /// Cache hit/miss counters.
    pub cache: CacheStats,
    /// Number of stored evaluations.
    pub cache_entries: usize,
    /// Per-tenant in-flight job counts, sorted by tenant. `None` when
    /// the server predates the field.
    pub tenants: Option<Vec<(String, usize)>>,
}

/// A server-side metrics snapshot: the structured rows and a
/// Prometheus-style text exposition of the same data.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteMetrics {
    /// Prometheus text exposition (counters, gauges, histogram
    /// summaries), ready to proxy to a scraper.
    pub exposition: String,
    /// One row per metric, machine-readable.
    pub metrics: Vec<WireMetric>,
}

/// A synchronous connection to a `cimflow-dse serve --tcp` (or embedded
/// [`TcpServer`](crate::TcpServer)) endpoint.
///
/// Job/batch ids are scoped to this connection: handles submitted here
/// cannot be addressed from another connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serving endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection cannot be established.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let line = serde_json::to_string(request).expect("request serialization cannot fail");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut answer = String::new();
        if self.reader.read_line(&mut answer)? == 0 {
            return Err(ClientError::Io { reason: "server closed the connection".to_owned() });
        }
        let response: Response = serde_json::from_str(answer.trim_end())
            .map_err(|e| ClientError::Protocol { reason: format!("bad response: {e}") })?;
        match response {
            Response::Rejected { kind, reason } => Err(ClientError::Rejected { kind, reason }),
            Response::Error { message } => Err(ClientError::Remote { message }),
            other => Ok(other),
        }
    }

    fn unexpected<T>(what: &str, response: Response) -> Result<T, ClientError> {
        Err(ClientError::Protocol { reason: format!("expected {what}, got {response:?}") })
    }

    /// Submits one evaluation request; returns its job id immediately.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on backpressure, transport/protocol
    /// errors otherwise.
    pub fn submit(&mut self, request: &EvalRequest) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Submit(Box::new(request.clone())))? {
            Response::Accepted { job } => Ok(job),
            other => Self::unexpected("an acceptance", other),
        }
    }

    /// Submits a sweep as one batch, charged to `tenant` (the server
    /// defaults an omitted tenant to `anonymous`) at a priority. Every
    /// wire submission passes admission control.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] on backpressure or an invalid spec.
    pub fn submit_sweep(
        &mut self,
        spec: &SweepSpec,
        tenant: Option<&str>,
        priority: Option<Priority>,
    ) -> Result<BatchTicket, ClientError> {
        let request = Request::Sweep {
            spec: Box::new(spec.clone()),
            tenant: tenant.map(str::to_owned),
            priority,
        };
        match self.round_trip(&request)? {
            Response::AcceptedBatch { batch, jobs, points, resumed } => {
                Ok(BatchTicket { batch, jobs, points, resumed })
            }
            other => Self::unexpected("a batch acceptance", other),
        }
    }

    fn poll(&mut self, target: Target) -> Result<RemoteStatus, ClientError> {
        match self.round_trip(&Request::Poll(target))? {
            Response::Status { state, completed, total } => {
                Ok(RemoteStatus { state, completed, total })
            }
            other => Self::unexpected("a status", other),
        }
    }

    /// Non-blocking status of a job.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors, or [`ClientError::Remote`] for an
    /// unknown id.
    pub fn poll_job(&mut self, job: u64) -> Result<RemoteStatus, ClientError> {
        self.poll(Target::Job(job))
    }

    /// Non-blocking status of a batch.
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn poll_batch(&mut self, batch: u64) -> Result<RemoteStatus, ClientError> {
        self.poll(Target::Batch(batch))
    }

    /// Blocks until a job finishes and returns its outcome. The wait
    /// *consumes* the id (results are delivered exactly once; poll
    /// before waiting if status is needed afterwards).
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn wait_job(&mut self, job: u64) -> Result<WireOutcome, ClientError> {
        match self.round_trip(&Request::Wait { target: Target::Job(job), timeout_ms: None })? {
            Response::Result(outcome) => Ok(outcome),
            other => Self::unexpected("a result", other),
        }
    }

    /// [`Self::wait_job`] bounded by `timeout_ms`: the server answers
    /// within the deadline — the outcome if the job finished (consuming
    /// the id), its current status otherwise (the id stays addressable).
    /// Use this to lease the connection in bounded slices instead of
    /// wedging it behind one slow job.
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn wait_job_timeout(
        &mut self,
        job: u64,
        timeout_ms: u64,
    ) -> Result<Waited<WireOutcome>, ClientError> {
        let request = Request::Wait { target: Target::Job(job), timeout_ms: Some(timeout_ms) };
        match self.round_trip(&request)? {
            Response::Result(outcome) => Ok(Waited::Finished(outcome)),
            Response::Status { state, completed, total } => {
                Ok(Waited::TimedOut(RemoteStatus { state, completed, total }))
            }
            other => Self::unexpected("a result or an expiry status", other),
        }
    }

    /// Blocks until a batch finishes; outcomes are in grid order. Like
    /// [`Self::wait_job`], the wait consumes the batch id.
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn wait_batch(&mut self, batch: u64) -> Result<Vec<WireOutcome>, ClientError> {
        match self.round_trip(&Request::Wait { target: Target::Batch(batch), timeout_ms: None })? {
            Response::BatchResult { outcomes, .. } => Ok(outcomes),
            other => Self::unexpected("a batch result", other),
        }
    }

    /// [`Self::wait_batch`] bounded by `timeout_ms` (see
    /// [`Self::wait_job_timeout`] for the expiry semantics).
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn wait_batch_timeout(
        &mut self,
        batch: u64,
        timeout_ms: u64,
    ) -> Result<Waited<Vec<WireOutcome>>, ClientError> {
        let request = Request::Wait { target: Target::Batch(batch), timeout_ms: Some(timeout_ms) };
        match self.round_trip(&request)? {
            Response::BatchResult { outcomes, .. } => Ok(Waited::Finished(outcomes)),
            Response::Status { state, completed, total } => {
                Ok(Waited::TimedOut(RemoteStatus { state, completed, total }))
            }
            other => Self::unexpected("a batch result or an expiry status", other),
        }
    }

    /// Cancels a queued job; returns whether it was cancelled.
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn cancel_job(&mut self, job: u64) -> Result<bool, ClientError> {
        match self.round_trip(&Request::Cancel(Target::Job(job)))? {
            Response::Cancelled { cancelled } => Ok(cancelled > 0),
            other => Self::unexpected("a cancellation", other),
        }
    }

    /// Cancels every queued point of a batch; returns how many were
    /// cancelled.
    ///
    /// # Errors
    ///
    /// See [`Self::poll_job`].
    pub fn cancel_batch(&mut self, batch: u64) -> Result<usize, ClientError> {
        match self.round_trip(&Request::Cancel(Target::Batch(batch)))? {
            Response::Cancelled { cancelled } => Ok(cancelled),
            other => Self::unexpected("a cancellation", other),
        }
    }

    /// Fetches the service and cache counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { service, cache, cache_entries, tenants } => {
                Ok(RemoteStats { service, cache, cache_entries, tenants })
            }
            other => Self::unexpected("stats", other),
        }
    }

    /// Fetches the server's metrics registry: structured rows plus a
    /// Prometheus text exposition of queue-wait/latency histograms,
    /// admission counters and cache gauges.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn metrics(&mut self) -> Result<RemoteMetrics, ClientError> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics { exposition, metrics } => Ok(RemoteMetrics { exposition, metrics }),
            other => Self::unexpected("metrics", other),
        }
    }

    /// Asks the server to shut down (queued jobs are cancelled, running
    /// jobs finish, the listener stops accepting).
    ///
    /// # Errors
    ///
    /// Transport/protocol errors.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Self::unexpected("a shutdown acknowledgement", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::Strategy;
    use cimflow_dse::serve::TcpServer;
    use cimflow_dse::{EvalService, ServiceConfig};
    use std::sync::Arc;

    fn spec() -> SweepSpec {
        SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
    }

    #[test]
    fn client_round_trips_jobs_batches_and_stats_over_tcp() {
        let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(2)));
        let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");

        let mut client = Client::connect(server.addr()).expect("connect");
        let job = client
            .submit(&EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized))
            .expect("admitted");
        assert_eq!(client.poll_job(job).unwrap().total, 1);
        let outcome = client.wait_job(job).expect("result");
        assert!(outcome.ok && !outcome.cached);
        // The wait consumed the id: the server released the result slot.
        assert!(matches!(client.poll_job(job), Err(ClientError::Remote { .. })));

        let ticket = client.submit_sweep(&spec(), Some("alice"), None).expect("admitted");
        assert_eq!(ticket.points, 2);
        let outcomes = client.wait_batch(ticket.batch).expect("batch result");
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.ok));
        assert!(matches!(client.poll_batch(ticket.batch), Err(ClientError::Remote { .. })));

        // A second connection shares the service (and its cache) but not
        // the first connection's ids; a tenant-less sweep is admitted
        // under the default tenant.
        let mut second = Client::connect(server.addr()).expect("connect");
        assert!(matches!(second.wait_job(job), Err(ClientError::Remote { .. })));
        let warm = second.submit_sweep(&spec(), None, None).expect("admitted as `anonymous`");
        assert!(second.wait_batch(warm.batch).unwrap().iter().all(|o| o.cached));

        let stats = client.stats().expect("stats");
        assert_eq!(stats.service.completed, 5);
        assert_eq!(stats.cache.hits, 2);
        // Every wait above consumed its ids, so nothing is in flight.
        assert_eq!(stats.tenants.as_deref(), Some(&[][..]));

        let metrics = client.metrics().expect("metrics");
        assert!(metrics.exposition.contains("service_evals_completed 5"));
        let latency = metrics
            .metrics
            .iter()
            .find(|m| m.name == "service.eval_latency_us")
            .expect("latency histogram");
        assert_eq!(latency.kind, "histogram");
        assert!(latency.count.unwrap() >= 1);
        server.stop();
    }

    #[test]
    fn serving_metrics_cross_the_wire_for_traffic_requests() {
        let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(1)));
        let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");

        let offline = client
            .submit(&EvalRequest::new("mobilenetv2", 32, Strategy::GenericMapping))
            .expect("admitted");
        let outcome = client.wait_job(offline).expect("result");
        assert!(outcome.ok && outcome.serving.is_none());

        // The same design point under load: a distinct cache identity
        // (traffic fingerprint) whose outcome carries SLO metrics.
        let served = client
            .submit(
                &EvalRequest::new("mobilenetv2", 32, Strategy::GenericMapping)
                    .with_offered_qps(500),
            )
            .expect("admitted");
        let outcome = client.wait_job(served).expect("result");
        assert!(outcome.ok, "{:?}", outcome.error);
        assert!(!outcome.cached, "traffic fingerprint separates the cache identity");
        let serving = outcome.serving.expect("serving metrics on the wire");
        assert_eq!(serving.offered_qps, 500);
        assert!(serving.p99_latency_us > 0.0);
        assert!(serving.goodput_qps > 0.0);
        assert!(serving.energy_mj > 0.0);
        server.stop();
    }

    #[test]
    fn quota_rejections_surface_as_client_backpressure() {
        let service =
            Arc::new(EvalService::new(ServiceConfig::new().with_workers(1).with_tenant_quota(2)));
        let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        // The 3-point sweep exceeds tenant `a`'s quota of 2 atomically.
        let wide = spec().with_mg_sizes(&[4, 8, 16]);
        match client.submit_sweep(&wide, Some("a"), Some(Priority::High)) {
            Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "quota_exceeded"),
            other => panic!("expected quota backpressure, got {other:?}"),
        }
        // A tenant-less sweep is charged to `anonymous` — the operator's
        // quota binds every wire submission.
        match client.submit_sweep(&wide, None, None) {
            Err(ClientError::Rejected { kind, .. }) => assert_eq!(kind, "quota_exceeded"),
            other => panic!("expected quota backpressure, got {other:?}"),
        }
        // Within quota, tenant `b` flows through the same pool.
        let ticket = client.submit_sweep(&spec(), Some("b"), None).expect("admitted");
        assert_eq!(client.wait_batch(ticket.batch).unwrap().len(), 2);
        server.stop();
    }

    #[test]
    fn bounded_waits_lease_the_connection_in_slices() {
        use cimflow_arch::ArchConfig;
        use cimflow_compiler::SearchMode;
        use cimflow_dse::{evaluate, CacheKey, EvalCache};
        use cimflow_nn::models;
        use std::sync::mpsc;
        use std::time::{Duration, Instant};

        // Hold the first sweep point's in-flight cache marker so the
        // single worker blocks deterministically on it (the marker is
        // guaranteed held before anything is submitted).
        let cache = EvalCache::new();
        let service =
            Arc::new(EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone()));
        let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");
        let (go, release) = mpsc::channel();
        let (entered_tx, entered_rx) = mpsc::channel();
        let blocked_cache = cache.clone();
        let blocker = std::thread::spawn(move || {
            let arch = ArchConfig::paper_default().with_macros_per_group(4);
            let model = models::mobilenet_v2(32);
            let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
            blocked_cache
                .get_or_insert_with(key, || {
                    entered_tx.send(()).expect("entered signal");
                    release.recv().expect("release signal");
                    evaluate(&arch, &model, Strategy::GenericMapping)
                })
                .expect("blocked evaluation succeeds");
        });
        entered_rx.recv().expect("blocker holds the marker");

        let mut client = Client::connect(server.addr()).expect("connect");
        let ticket = client.submit_sweep(&spec(), None, None).expect("admitted");
        let started = Instant::now();
        match client.wait_batch_timeout(ticket.batch, 50).expect("answered") {
            Waited::TimedOut(status) => {
                assert_eq!(status.total, 2);
                assert_eq!(status.state, "running");
            }
            Waited::Finished(outcomes) => {
                panic!("the blocked sweep cannot finish within its lease: {outcomes:?}")
            }
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the bounded wait answers within the deadline, not at completion"
        );
        // The expired wait left the batch addressable; once released, a
        // generous lease finishes and consumes it.
        assert!(client.poll_batch(ticket.batch).is_ok());
        go.send(()).unwrap();
        match client.wait_batch_timeout(ticket.batch, 120_000).expect("answered") {
            Waited::Finished(outcomes) => {
                assert_eq!(outcomes.len(), 2);
                assert!(outcomes.iter().all(|o| o.ok));
            }
            Waited::TimedOut(status) => panic!("two minutes was not enough: {status:?}"),
        }
        assert!(matches!(client.poll_batch(ticket.batch), Err(ClientError::Remote { .. })));

        // Job-level bounded waits share the semantics.
        let job = client
            .submit(&EvalRequest::new("mobilenetv2", 32, Strategy::DpOptimized))
            .expect("admitted");
        match client.wait_job_timeout(job, 120_000).expect("answered") {
            Waited::Finished(outcome) => assert!(outcome.ok),
            Waited::TimedOut(status) => panic!("two minutes was not enough: {status:?}"),
        }
        blocker.join().unwrap();
        server.stop();
    }

    #[test]
    fn shutdown_stops_the_listener() {
        use std::time::{Duration, Instant};

        let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(1)));
        let server = TcpServer::spawn(Arc::clone(&service), 0).expect("bind loopback");
        let mut client = Client::connect(server.addr()).expect("connect");
        client.shutdown().expect("acknowledged");
        assert!(server.shutdown_requested());
        // The waiter and the accept loop are condvar-woken: with no work
        // in flight the whole teardown completes promptly instead of
        // lagging a poll interval per loop.
        let started = Instant::now();
        server.wait_for_shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown must not lag on polling sleeps: {:?}",
            started.elapsed()
        );
        assert!(service.submit(EvalRequest::new("resnet18", 32, Strategy::DpOptimized)).is_err());
    }
}
