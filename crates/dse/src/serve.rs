//! The serving front end of the [`EvalService`]: a
//! newline-delimited JSON protocol, a per-connection handler, and a TCP
//! loopback listener.
//!
//! Each request is one JSON object per line; each line produces exactly
//! one JSON response line. The protocol is externally tagged:
//!
//! ```text
//! -> {"submit": {"model": {"name": "resnet18", "resolution": 32},
//!                "strategy": "dp", "tenant": "alice", "priority": "high"}}
//! <- {"accepted": {"job": 1}}
//! -> {"wait": {"job": 1}}
//! <- {"result": {"job": 1, "label": "...", "ok": true, "cached": false,
//!                "total_cycles": 123, "energy_mj": 0.5,
//!                "throughput_tops": 1.2, "error": null}}
//! -> {"sweep": {"spec": {...SweepSpec...}, "tenant": "bob"}}
//! <- {"accepted_batch": {"batch": 1, "jobs": [2, 3], "points": 2, "resumed": 0}}
//! -> {"stats": {}}
//! <- {"stats": {"service": {...}, "cache": {...}, "cache_entries": 2,
//!               "tenants": [["alice", 3]]}}
//! -> {"metrics": {}}
//! <- {"metrics": {"exposition": "# TYPE service_evals_completed counter\n...",
//!                 "metrics": [{"name": "service.queue_wait_us", ...}]}}
//! ```
//!
//! Over-quota and queue-full submissions answer
//! `{"rejected": {"kind": "quota_exceeded", "reason": "..."}}`; malformed
//! lines answer `{"error": {"message": "..."}}` and keep the connection
//! open. `{"shutdown": {}}` stops the service and (for the TCP listener)
//! the accept loop.
//!
//! The module lives in `cimflow-dse` so the `cimflow-dse serve`
//! subcommand can host it; the `cimflow-serve` crate re-exports it and
//! adds the typed [`Client`](../../cimflow_serve/struct.Client.html).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use serde::{Content, Deserialize, Serialize};

use crate::service::{BatchHandle, EvalRequest, JobHandle, Priority, DEFAULT_TENANT};
use crate::{DseOutcome, EvalService, SweepSpec};

/// A protocol request: one per line, externally tagged.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one evaluation request (boxed: a request with a traffic
    /// workload is much larger than the control-plane variants).
    Submit(Box<EvalRequest>),
    /// Submit a sweep as a batch (always admitted: queue bounds and
    /// quotas apply to every wire submission).
    Sweep {
        /// The sweep grid (boxed: a spec with a traffic section is much
        /// larger than the other request variants).
        spec: Box<SweepSpec>,
        /// Tenant to charge the batch to; `None` means
        /// [`DEFAULT_TENANT`].
        tenant: Option<String>,
        /// Batch priority; `None` means normal.
        priority: Option<Priority>,
    },
    /// Non-blocking status of a job or batch.
    Poll(Target),
    /// Block until a job or batch finishes, then return its result(s).
    /// With `timeout_ms` set the wait is bounded: on expiry the response
    /// is the current `status` (the id is *not* consumed), so one slow
    /// job no longer wedges every other request on the connection — a
    /// client can lease the connection in bounded slices and interleave
    /// polls, cancels or new submissions between them.
    Wait {
        /// The job or batch to wait on.
        target: Target,
        /// Optional deadline in milliseconds; `None` blocks until done.
        timeout_ms: Option<u64>,
    },
    /// Cancel a queued job or every queued point of a batch.
    Cancel(Target),
    /// Service and cache counters.
    Stats,
    /// A metrics snapshot: structured entries plus Prometheus text
    /// exposition (queue-wait/eval-latency quantiles per tenant, cache
    /// and admission counters, worker/queue gauges).
    Metrics,
    /// Stop the service (and the listener hosting this connection).
    Shutdown,
}

/// What a poll/wait/cancel request addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A single job by id.
    Job(u64),
    /// A batch by id.
    Batch(u64),
}

/// A protocol response: one per request, externally tagged.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The submission was admitted.
    Accepted {
        /// Service-wide job id.
        job: u64,
    },
    /// The batch was admitted.
    AcceptedBatch {
        /// Connection-local batch id.
        batch: u64,
        /// Service-wide job ids in grid order.
        jobs: Vec<u64>,
        /// Number of points in the batch.
        points: usize,
        /// Points served from a journal without re-running.
        resumed: usize,
    },
    /// Admission control rejected the submission (backpressure).
    Rejected {
        /// Machine-readable kind (`queue_full`, `quota_exceeded`, ...).
        kind: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Non-blocking status snapshot.
    Status {
        /// `queued`/`running`/`done`/`cancelled` for jobs; batches report
        /// `running` until every point is terminal.
        state: String,
        /// Finished points (for batches; 0/1 for jobs).
        completed: usize,
        /// Total points (1 for jobs).
        total: usize,
    },
    /// A finished job.
    Result(WireOutcome),
    /// A finished batch, outcomes in grid order.
    BatchResult {
        /// The connection-local batch id.
        batch: u64,
        /// Per-point outcomes.
        outcomes: Vec<WireOutcome>,
    },
    /// Cancellation acknowledgement.
    Cancelled {
        /// Number of points cancelled (0/1 for jobs).
        cancelled: usize,
    },
    /// Service and cache counters.
    Stats {
        /// Service counters.
        service: crate::ServiceStats,
        /// Cache hit/miss/coalesced counters.
        cache: crate::CacheStats,
        /// Number of stored evaluations.
        cache_entries: usize,
        /// In-flight (queued + running) points per tenant, sorted by
        /// name. `None` when talking to a server predating this field
        /// (old clients simply ignore it).
        tenants: Option<Vec<(String, usize)>>,
    },
    /// A metrics snapshot.
    Metrics {
        /// Prometheus text exposition of every instrument.
        exposition: String,
        /// The same snapshot as structured entries.
        metrics: Vec<WireMetric>,
    },
    /// Shutdown acknowledgement.
    ShuttingDown,
    /// The request was malformed or referenced an unknown id.
    Error {
        /// Human-readable message.
        message: String,
    },
}

/// The wire projection of a [`DseOutcome`]: the point label plus headline
/// metrics (the full [`Evaluation`](crate::Evaluation) record stays
/// server-side; clients wanting raw reports use the library API).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireOutcome {
    /// Service-wide job id (`None` in batch results before assignment —
    /// never in practice; kept optional for schema evolution).
    pub job: Option<u64>,
    /// Human-readable point label.
    pub label: String,
    /// Whether the evaluation succeeded.
    pub ok: bool,
    /// Whether the result came from the cache (or a journal).
    pub cached: bool,
    /// The per-point error, when `ok` is false.
    pub error: Option<String>,
    /// Total execution cycles.
    pub total_cycles: Option<u64>,
    /// Total energy in millijoules.
    pub energy_mj: Option<f64>,
    /// Throughput in TOPS.
    pub throughput_tops: Option<f64>,
    /// Serving SLO metrics when the point ran under a traffic workload;
    /// `None` for offline points and for servers predating this field
    /// (old clients simply ignore it).
    pub serving: Option<crate::ServingSummary>,
}

/// The wire projection of one metrics-snapshot entry. Counter and gauge
/// entries carry `value`; histogram entries carry the summary fields
/// (`count`/`sum`/`min`/`max`/`p50`/`p90`/`p99`) instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMetric {
    /// Dotted metric name (e.g. `service.queue_wait_us`).
    pub name: String,
    /// Label pairs, as registered.
    pub labels: Vec<(String, String)>,
    /// `counter`, `gauge` or `histogram`.
    pub kind: String,
    /// Counter/gauge value.
    pub value: Option<f64>,
    /// Histogram: recorded values.
    pub count: Option<u64>,
    /// Histogram: sum of recorded values.
    pub sum: Option<u64>,
    /// Histogram: smallest recorded value.
    pub min: Option<u64>,
    /// Histogram: largest recorded value.
    pub max: Option<u64>,
    /// Histogram: median.
    pub p50: Option<u64>,
    /// Histogram: 90th percentile.
    pub p90: Option<u64>,
    /// Histogram: 99th percentile.
    pub p99: Option<u64>,
}

impl WireMetric {
    /// Projects one snapshot entry onto the wire schema.
    pub fn of(entry: &cimflow_obs::MetricEntry) -> Self {
        use cimflow_obs::MetricValue;
        let mut metric = WireMetric {
            name: entry.name.clone(),
            labels: entry.labels.clone(),
            kind: String::new(),
            value: None,
            count: None,
            sum: None,
            min: None,
            max: None,
            p50: None,
            p90: None,
            p99: None,
        };
        match &entry.value {
            MetricValue::Counter(v) => {
                metric.kind = "counter".to_owned();
                metric.value = Some(*v as f64);
            }
            MetricValue::Gauge(v) => {
                metric.kind = "gauge".to_owned();
                metric.value = Some(*v as f64);
            }
            MetricValue::Histogram(h) => {
                metric.kind = "histogram".to_owned();
                metric.count = Some(h.count);
                metric.sum = Some(h.sum);
                metric.min = Some(h.min);
                metric.max = Some(h.max);
                metric.p50 = Some(h.p50());
                metric.p90 = Some(h.p90());
                metric.p99 = Some(h.p99());
            }
        }
        metric
    }
}

impl WireOutcome {
    /// Projects an outcome onto the wire schema.
    pub fn of(job: u64, outcome: &DseOutcome) -> Self {
        let evaluation = outcome.result.as_ref().ok();
        WireOutcome {
            job: Some(job),
            label: outcome.point.label(),
            ok: outcome.result.is_ok(),
            cached: outcome.cached,
            error: outcome.result.as_ref().err().map(ToString::to_string),
            total_cycles: evaluation.map(|e| e.simulation.total_cycles),
            energy_mj: evaluation.map(|e| e.simulation.energy_mj()),
            throughput_tops: evaluation.map(|e| e.simulation.throughput_tops()),
            serving: evaluation.and_then(|e| e.serving.clone()),
        }
    }
}

// ---------------------------------------------------------------------------
// Wire serialization (hand-written: snake_case external tags)
// ---------------------------------------------------------------------------

fn tagged(tag: &str, value: Content) -> Content {
    Content::Map(vec![(tag.to_owned(), value)])
}

fn untag(content: &Content) -> Result<(&str, &Content), serde::Error> {
    let map = content.as_map().ok_or_else(|| serde::Error::new("expected a tagged object"))?;
    match map {
        [(tag, value)] => Ok((tag.as_str(), value)),
        _ => Err(serde::Error::new("expected exactly one request/response tag")),
    }
}

fn field<'c>(map: &'c [(String, Content)], name: &str) -> Option<&'c Content> {
    map.iter().find(|(key, _)| key == name).map(|(_, value)| value)
}

impl serde::Serialize for Target {
    fn serialize(&self) -> Content {
        match self {
            Target::Job(id) => Content::Map(vec![("job".to_owned(), Content::U64(*id))]),
            Target::Batch(id) => Content::Map(vec![("batch".to_owned(), Content::U64(*id))]),
        }
    }
}

impl serde::Deserialize for Target {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map = content.as_map().ok_or_else(|| serde::Error::new("expected a target object"))?;
        match (field(map, "job"), field(map, "batch")) {
            (Some(id), None) => Ok(Target::Job(u64::deserialize(id)?)),
            (None, Some(id)) => Ok(Target::Batch(u64::deserialize(id)?)),
            _ => Err(serde::Error::new("expected either a `job` or a `batch` id")),
        }
    }
}

impl serde::Serialize for Request {
    fn serialize(&self) -> Content {
        match self {
            Request::Submit(request) => tagged("submit", request.serialize()),
            Request::Sweep { spec, tenant, priority } => tagged(
                "sweep",
                Content::Map(vec![
                    ("spec".to_owned(), spec.serialize()),
                    ("tenant".to_owned(), tenant.serialize()),
                    ("priority".to_owned(), priority.serialize()),
                ]),
            ),
            Request::Poll(target) => tagged("poll", target.serialize()),
            Request::Wait { target, timeout_ms } => {
                let mut map = match target.serialize() {
                    Content::Map(map) => map,
                    _ => unreachable!("targets serialize to maps"),
                };
                if timeout_ms.is_some() {
                    map.push(("timeout_ms".to_owned(), timeout_ms.serialize()));
                }
                tagged("wait", Content::Map(map))
            }
            Request::Cancel(target) => tagged("cancel", target.serialize()),
            Request::Stats => tagged("stats", Content::Map(Vec::new())),
            Request::Metrics => tagged("metrics", Content::Map(Vec::new())),
            Request::Shutdown => tagged("shutdown", Content::Map(Vec::new())),
        }
    }
}

impl serde::Deserialize for Request {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let (tag, value) = untag(content)?;
        match tag {
            "submit" => Ok(Request::Submit(Box::new(EvalRequest::deserialize(value)?))),
            "sweep" => {
                let map =
                    value.as_map().ok_or_else(|| serde::Error::new("expected a sweep object"))?;
                let spec = field(map, "spec")
                    .ok_or_else(|| serde::Error::new("sweep request needs a `spec`"))?;
                Ok(Request::Sweep {
                    spec: Box::new(SweepSpec::deserialize(spec)?),
                    tenant: match field(map, "tenant") {
                        None | Some(Content::Null) => None,
                        Some(value) => Some(String::deserialize(value)?),
                    },
                    priority: match field(map, "priority") {
                        None | Some(Content::Null) => None,
                        Some(value) => Some(Priority::deserialize(value)?),
                    },
                })
            }
            "poll" => Ok(Request::Poll(Target::deserialize(value)?)),
            "wait" => {
                let map =
                    value.as_map().ok_or_else(|| serde::Error::new("expected a wait object"))?;
                Ok(Request::Wait {
                    target: Target::deserialize(value)?,
                    timeout_ms: match field(map, "timeout_ms") {
                        None | Some(Content::Null) => None,
                        Some(value) => Some(u64::deserialize(value)?),
                    },
                })
            }
            "cancel" => Ok(Request::Cancel(Target::deserialize(value)?)),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(serde::Error::new(format!("unknown request `{other}`"))),
        }
    }
}

impl serde::Serialize for Response {
    fn serialize(&self) -> Content {
        match self {
            Response::Accepted { job } => {
                tagged("accepted", Content::Map(vec![("job".to_owned(), Content::U64(*job))]))
            }
            Response::AcceptedBatch { batch, jobs, points, resumed } => tagged(
                "accepted_batch",
                Content::Map(vec![
                    ("batch".to_owned(), Content::U64(*batch)),
                    ("jobs".to_owned(), jobs.serialize()),
                    ("points".to_owned(), points.serialize()),
                    ("resumed".to_owned(), resumed.serialize()),
                ]),
            ),
            Response::Rejected { kind, reason } => tagged(
                "rejected",
                Content::Map(vec![
                    ("kind".to_owned(), kind.serialize()),
                    ("reason".to_owned(), reason.serialize()),
                ]),
            ),
            Response::Status { state, completed, total } => tagged(
                "status",
                Content::Map(vec![
                    ("state".to_owned(), state.serialize()),
                    ("completed".to_owned(), completed.serialize()),
                    ("total".to_owned(), total.serialize()),
                ]),
            ),
            Response::Result(outcome) => tagged("result", outcome.serialize()),
            Response::BatchResult { batch, outcomes } => tagged(
                "batch_result",
                Content::Map(vec![
                    ("batch".to_owned(), Content::U64(*batch)),
                    ("outcomes".to_owned(), outcomes.serialize()),
                ]),
            ),
            Response::Cancelled { cancelled } => tagged(
                "cancelled",
                Content::Map(vec![("cancelled".to_owned(), cancelled.serialize())]),
            ),
            Response::Stats { service, cache, cache_entries, tenants } => tagged(
                "stats",
                Content::Map(vec![
                    ("service".to_owned(), service.serialize()),
                    ("cache".to_owned(), cache.serialize()),
                    ("cache_entries".to_owned(), cache_entries.serialize()),
                    ("tenants".to_owned(), tenants.serialize()),
                ]),
            ),
            Response::Metrics { exposition, metrics } => tagged(
                "metrics",
                Content::Map(vec![
                    ("exposition".to_owned(), exposition.serialize()),
                    ("metrics".to_owned(), metrics.serialize()),
                ]),
            ),
            Response::ShuttingDown => tagged("shutting_down", Content::Map(Vec::new())),
            Response::Error { message } => {
                tagged("error", Content::Map(vec![("message".to_owned(), message.serialize())]))
            }
        }
    }
}

impl serde::Deserialize for Response {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let (tag, value) = untag(content)?;
        let map = value.as_map().unwrap_or(&[]);
        let req = |name: &str| {
            field(map, name).ok_or_else(|| serde::Error::new(format!("missing `{name}`")))
        };
        match tag {
            "accepted" => Ok(Response::Accepted { job: u64::deserialize(req("job")?)? }),
            "accepted_batch" => Ok(Response::AcceptedBatch {
                batch: u64::deserialize(req("batch")?)?,
                jobs: Vec::deserialize(req("jobs")?)?,
                points: usize::deserialize(req("points")?)?,
                resumed: usize::deserialize(req("resumed")?)?,
            }),
            "rejected" => Ok(Response::Rejected {
                kind: String::deserialize(req("kind")?)?,
                reason: String::deserialize(req("reason")?)?,
            }),
            "status" => Ok(Response::Status {
                state: String::deserialize(req("state")?)?,
                completed: usize::deserialize(req("completed")?)?,
                total: usize::deserialize(req("total")?)?,
            }),
            "result" => Ok(Response::Result(WireOutcome::deserialize(value)?)),
            "batch_result" => Ok(Response::BatchResult {
                batch: u64::deserialize(req("batch")?)?,
                outcomes: Vec::deserialize(req("outcomes")?)?,
            }),
            "cancelled" => {
                Ok(Response::Cancelled { cancelled: usize::deserialize(req("cancelled")?)? })
            }
            "stats" => Ok(Response::Stats {
                service: crate::ServiceStats::deserialize(req("service")?)?,
                cache: crate::CacheStats::deserialize(req("cache")?)?,
                cache_entries: usize::deserialize(req("cache_entries")?)?,
                // Optional for compatibility with pre-tenant servers.
                tenants: match field(map, "tenants") {
                    None | Some(Content::Null) => None,
                    Some(value) => Some(Vec::deserialize(value)?),
                },
            }),
            "metrics" => Ok(Response::Metrics {
                exposition: String::deserialize(req("exposition")?)?,
                metrics: Vec::deserialize(req("metrics")?)?,
            }),
            "shutting_down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error { message: String::deserialize(req("message")?)? }),
            other => Err(serde::Error::new(format!("unknown response `{other}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

/// Per-connection protocol state: the handles this session owns. Dropping
/// the connection releases them (the service keeps running their jobs).
pub struct Connection<'s> {
    service: &'s EvalService,
    jobs: HashMap<u64, JobHandle>,
    batches: HashMap<u64, BatchHandle>,
    next_batch: u64,
}

impl<'s> Connection<'s> {
    /// A fresh session on `service`.
    pub fn new(service: &'s EvalService) -> Self {
        Connection { service, jobs: HashMap::new(), batches: HashMap::new(), next_batch: 0 }
    }

    /// Handles one request line and returns the response plus whether the
    /// session asked the server to shut down.
    pub fn handle_line(&mut self, line: &str) -> (Response, bool) {
        match serde_json::from_str::<Request>(line) {
            Ok(request) => self.handle(request),
            Err(e) => (Response::Error { message: format!("bad request: {e}") }, false),
        }
    }

    /// Handles one parsed request.
    pub fn handle(&mut self, request: Request) -> (Response, bool) {
        let response = match request {
            Request::Submit(eval) => match self.service.submit(*eval) {
                Ok(handle) => {
                    let job = handle.id();
                    self.jobs.insert(job, handle);
                    Response::Accepted { job }
                }
                Err(rejected) => Response::Rejected {
                    kind: rejected.kind().to_owned(),
                    reason: rejected.to_string(),
                },
            },
            Request::Sweep { spec, tenant, priority } => {
                // Every wire submission passes admission — otherwise the
                // operator's --queue/--quota bounds would be bypassable
                // by omitting the tenant. (The unadmitted surface is
                // in-process only: `EvalService::submit_sweep`.)
                let tenant = tenant.as_deref().unwrap_or(DEFAULT_TENANT);
                let priority = priority.unwrap_or_default();
                match self.service.submit_sweep_as(tenant, priority, &spec) {
                    Ok(handle) => {
                        self.next_batch += 1;
                        let batch = self.next_batch;
                        let response = Response::AcceptedBatch {
                            batch,
                            jobs: handle.ids().to_vec(),
                            points: handle.len(),
                            // Journal-born points only: a point a fast
                            // worker finished before this response was
                            // built is completed, not "resumed".
                            resumed: handle.resumed(),
                        };
                        self.batches.insert(batch, handle);
                        response
                    }
                    Err(rejected) => Response::Rejected {
                        kind: rejected.kind().to_owned(),
                        reason: rejected.to_string(),
                    },
                }
            }
            Request::Poll(Target::Job(job)) => match self.jobs.get(&job) {
                Some(handle) => Response::Status {
                    state: handle.status().name().to_owned(),
                    completed: usize::from(handle.status().is_terminal()),
                    total: 1,
                },
                None => unknown("job", job),
            },
            Request::Poll(Target::Batch(batch)) => match self.batches.get(&batch) {
                Some(handle) => Response::Status {
                    state: if handle.is_done() { "done" } else { "running" }.to_owned(),
                    completed: handle.completed(),
                    total: handle.len(),
                },
                None => unknown("batch", batch),
            },
            // A *completed* wait consumes the id (results are delivered
            // exactly once): dropping the handle releases the
            // server-side result slot, so a long-lived connection's
            // memory is bounded by its in-flight work, not by everything
            // it ever submitted. Poll before waiting if status is needed
            // afterwards. A wait that expires on its `timeout_ms` does
            // NOT consume the id: it answers the current status and the
            // job/batch stays addressable.
            Request::Wait { target: Target::Job(job), timeout_ms } => match self.jobs.get(&job) {
                Some(handle) => {
                    let outcome = match timeout_ms {
                        None => Some(handle.wait()),
                        Some(ms) => handle.wait_timeout(Duration::from_millis(ms)),
                    };
                    match outcome {
                        Some(outcome) => {
                            self.jobs.remove(&job);
                            Response::Result(WireOutcome::of(job, &outcome))
                        }
                        None => Response::Status {
                            state: handle.status().name().to_owned(),
                            completed: usize::from(handle.status().is_terminal()),
                            total: 1,
                        },
                    }
                }
                None => unknown("job", job),
            },
            Request::Wait { target: Target::Batch(batch), timeout_ms } => {
                match self.batches.get(&batch) {
                    Some(handle) => {
                        let outcomes = match timeout_ms {
                            None => Some(handle.wait()),
                            Some(ms) => handle.wait_timeout(Duration::from_millis(ms)),
                        };
                        match outcomes {
                            Some(outcomes) => {
                                let response = Response::BatchResult {
                                    batch,
                                    outcomes: outcomes
                                        .iter()
                                        .zip(handle.ids())
                                        .map(|(outcome, id)| WireOutcome::of(*id, outcome))
                                        .collect(),
                                };
                                self.batches.remove(&batch);
                                response
                            }
                            None => Response::Status {
                                state: if handle.is_done() { "done" } else { "running" }.to_owned(),
                                completed: handle.completed(),
                                total: handle.len(),
                            },
                        }
                    }
                    None => unknown("batch", batch),
                }
            }
            Request::Cancel(Target::Job(job)) => match self.jobs.get(&job) {
                Some(handle) => Response::Cancelled { cancelled: usize::from(handle.cancel()) },
                None => unknown("job", job),
            },
            Request::Cancel(Target::Batch(batch)) => match self.batches.get(&batch) {
                Some(handle) => Response::Cancelled { cancelled: handle.cancel() },
                None => unknown("batch", batch),
            },
            Request::Stats => Response::Stats {
                service: self.service.stats(),
                cache: self.service.cache().stats(),
                cache_entries: self.service.cache().len(),
                tenants: Some(self.service.tenants_in_flight()),
            },
            Request::Metrics => {
                let snapshot = self.service.metrics_snapshot();
                Response::Metrics {
                    exposition: snapshot.render_prometheus(),
                    metrics: snapshot.entries.iter().map(WireMetric::of).collect(),
                }
            }
            Request::Shutdown => {
                self.service.shutdown();
                return (Response::ShuttingDown, true);
            }
        };
        (response, false)
    }
}

fn unknown(what: &str, id: u64) -> Response {
    Response::Error {
        message: format!("unknown {what} id {id} (not submitted on this connection)"),
    }
}

/// Serves one connection: reads newline-delimited JSON requests from
/// `reader` until EOF (or a shutdown request), writing one JSON response
/// line each. Returns whether shutdown was requested.
///
/// # Errors
///
/// Propagates I/O errors on the transport.
pub fn serve_connection(
    service: &EvalService,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<bool> {
    let mut connection = Connection::new(service);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (response, shutdown) = connection.handle_line(&line);
        let response =
            serde_json::to_string(&response).expect("response serialization cannot fail");
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Serves stdin → stdout (the `cimflow-dse serve` default transport).
///
/// # Errors
///
/// Propagates I/O errors on the standard streams.
pub fn serve_stdio(service: &EvalService) -> std::io::Result<bool> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    serve_connection(service, stdin.lock(), stdout.lock())
}

/// A condvar-backed shutdown latch: the accept loop and
/// [`TcpServer::wait_for_shutdown`] *wait* on it instead of busy-polling
/// a flag with fixed sleeps, so a shutdown request propagates at notify
/// latency rather than lagging up to a full poll interval.
#[derive(Debug, Default)]
struct ShutdownLatch {
    requested: Mutex<bool>,
    signal: Condvar,
}

impl ShutdownLatch {
    fn set(&self) {
        *self.requested.lock().expect("shutdown latch poisoned") = true;
        self.signal.notify_all();
    }

    fn is_set(&self) -> bool {
        *self.requested.lock().expect("shutdown latch poisoned")
    }

    /// Waits until the latch is set or `timeout` elapses; returns
    /// whether it is set.
    fn wait_timeout(&self, timeout: Duration) -> bool {
        let requested = self.requested.lock().expect("shutdown latch poisoned");
        let (requested, _) = self
            .signal
            .wait_timeout_while(requested, timeout, |requested| !*requested)
            .expect("shutdown latch poisoned");
        *requested
    }

    /// Blocks until the latch is set.
    fn wait(&self) {
        let requested = self.requested.lock().expect("shutdown latch poisoned");
        drop(
            self.signal
                .wait_while(requested, |requested| !*requested)
                .expect("shutdown latch poisoned"),
        );
    }
}

/// A loopback TCP listener serving the JSON protocol, one thread per
/// connection.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<ShutdownLatch>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `127.0.0.1:port` (`port` 0 picks a free port) and starts
    /// accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(service: Arc<EvalService>, port: u16) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(ShutdownLatch::default());
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("cimflow-serve-accept".to_owned())
            .spawn(move || {
                while !accept_stop.is_set() {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let service = Arc::clone(&service);
                            let stop = Arc::clone(&accept_stop);
                            std::thread::spawn(move || {
                                let reader = match stream.try_clone() {
                                    Ok(clone) => BufReader::new(clone),
                                    Err(_) => return,
                                };
                                if let Ok(true) = serve_connection(&service, reader, &stream) {
                                    stop.set();
                                }
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            // The non-blocking listener still needs a poll
                            // cadence for *new connections*, but the latch
                            // wait means a shutdown interrupts the pause
                            // immediately instead of sleeping through it.
                            if accept_stop.wait_timeout(ACCEPT_POLL) {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept thread");
        Ok(TcpServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (`127.0.0.1:<port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether a connection requested shutdown.
    pub fn shutdown_requested(&self) -> bool {
        self.stop.is_set()
    }

    /// Stops accepting connections and joins the accept thread. Open
    /// connections finish their in-flight request loop independently.
    pub fn stop(mut self) {
        self.halt();
    }

    /// Blocks until a connection requests shutdown, then stops accepting.
    /// The wait is event-driven (woken by the shutdown notification),
    /// not polled.
    pub fn wait_for_shutdown(mut self) {
        self.stop.wait();
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.set();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// How often the accept loop re-checks the non-blocking listener for new
/// connections while idle (shutdown wakes it immediately regardless).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.halt();
    }
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalRequest, ServiceConfig};
    use cimflow_compiler::Strategy;

    fn lines(requests: &[Request]) -> String {
        requests
            .iter()
            .map(|request| serde_json::to_string(request).unwrap())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    }

    fn responses(service: &EvalService, input: &str) -> Vec<Response> {
        let mut output = Vec::new();
        serve_connection(service, input.as_bytes(), &mut output).expect("in-memory transport");
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|line| serde_json::from_str(line).expect("well-formed response"))
            .collect()
    }

    #[test]
    fn request_and_response_round_trip_through_json() {
        let requests = vec![
            Request::Submit(Box::new(
                EvalRequest::new("resnet18", 32, Strategy::DpOptimized)
                    .with_tenant("alice")
                    .with_priority(Priority::High),
            )),
            Request::Sweep {
                spec: Box::new(
                    SweepSpec::new()
                        .with_model("mobilenetv2", 32)
                        .with_strategies(&[Strategy::GenericMapping]),
                ),
                tenant: Some("bob".to_owned()),
                priority: None,
            },
            Request::Poll(Target::Job(3)),
            Request::Wait { target: Target::Batch(1), timeout_ms: None },
            Request::Wait { target: Target::Job(7), timeout_ms: Some(250) },
            Request::Cancel(Target::Job(9)),
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for request in requests {
            let text = serde_json::to_string(&request).unwrap();
            let back: Request = serde_json::from_str(&text).unwrap();
            assert_eq!(back, request, "{text}");
        }
        let responses = vec![
            Response::Accepted { job: 4 },
            Response::AcceptedBatch { batch: 1, jobs: vec![5, 6], points: 2, resumed: 1 },
            Response::Rejected { kind: "queue_full".to_owned(), reason: "full".to_owned() },
            Response::Status { state: "running".to_owned(), completed: 1, total: 4 },
            Response::Cancelled { cancelled: 2 },
            Response::Stats {
                service: crate::ServiceStats::default(),
                cache: crate::CacheStats { hits: 1, misses: 2, coalesced: 0 },
                cache_entries: 2,
                tenants: Some(vec![("alice".to_owned(), 3)]),
            },
            Response::Metrics {
                exposition: "# TYPE x counter\nx 1\n".to_owned(),
                metrics: vec![WireMetric {
                    name: "service.queue_wait_us".to_owned(),
                    labels: vec![("tenant".to_owned(), "alice".to_owned())],
                    kind: "histogram".to_owned(),
                    value: None,
                    count: Some(4),
                    sum: Some(100),
                    min: Some(10),
                    max: Some(40),
                    p50: Some(25),
                    p90: Some(40),
                    p99: Some(40),
                }],
            },
            Response::ShuttingDown,
            Response::Error { message: "nope".to_owned() },
        ];
        for response in responses {
            let text = serde_json::to_string(&response).unwrap();
            let back: Response = serde_json::from_str(&text).unwrap();
            assert_eq!(back, response, "{text}");
        }
        // A `stats` reply from a server predating the `tenants` field
        // still parses (the field defaults to absent).
        let old = "{\"stats\": {\"service\": {\"submitted\": 0, \"completed\": 0, \
                    \"cancelled\": 0, \"rejected\": 0, \"queued\": 0, \"running\": 0}, \
                    \"cache\": {\"hits\": 0, \"misses\": 0}, \"cache_entries\": 0}}";
        match serde_json::from_str::<Response>(old).unwrap() {
            Response::Stats { tenants, cache, .. } => {
                assert_eq!(tenants, None);
                assert_eq!(cache.coalesced, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn connection_submits_waits_and_reports_stats() {
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let input = lines(&[
            Request::Submit(Box::new(EvalRequest::new(
                "mobilenetv2",
                32,
                Strategy::GenericMapping,
            ))),
            Request::Poll(Target::Job(1)),
            Request::Wait { target: Target::Job(1), timeout_ms: None },
            Request::Poll(Target::Job(1)),
            Request::Stats,
            Request::Metrics,
        ]);
        let responses = responses(&service, &input);
        assert_eq!(responses[0], Response::Accepted { job: 1 });
        match &responses[1] {
            Response::Status { total: 1, .. } => {}
            other => panic!("expected a pre-wait status, got {other:?}"),
        }
        match &responses[2] {
            Response::Result(outcome) => {
                assert!(outcome.ok);
                assert!(outcome.total_cycles.unwrap() > 0);
                assert!(outcome.error.is_none());
            }
            other => panic!("expected a result, got {other:?}"),
        }
        // The wait consumed the id: the result slot is released.
        assert!(matches!(&responses[3], Response::Error { .. }));
        match &responses[4] {
            Response::Stats { service, cache, cache_entries, tenants } => {
                assert_eq!(service.completed, 1);
                assert_eq!(cache.misses, 1);
                assert_eq!(*cache_entries, 1);
                assert_eq!(tenants.as_deref(), Some(&[][..]), "nothing in flight after the wait");
            }
            other => panic!("expected stats, got {other:?}"),
        }
        match &responses[5] {
            Response::Metrics { exposition, metrics } => {
                assert!(exposition.contains("service_evals_completed 1"), "{exposition}");
                let latency = metrics
                    .iter()
                    .find(|m| m.name == "service.eval_latency_us")
                    .expect("eval latency is exported");
                assert_eq!(latency.kind, "histogram");
                assert_eq!(latency.count, Some(1));
                assert!(latency.p99.unwrap() >= latency.p50.unwrap());
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn connection_runs_batches_and_survives_garbage() {
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let sweep = Request::Sweep {
            spec: Box::new(
                SweepSpec::new()
                    .with_model("mobilenetv2", 32)
                    .with_strategies(&[Strategy::GenericMapping])
                    .with_mg_sizes(&[4, 8]),
            ),
            tenant: Some("alice".to_owned()),
            priority: Some(Priority::High),
        };
        let input = format!(
            "not json at all\n{}\n{}\n{}\n",
            serde_json::to_string(&sweep).unwrap(),
            serde_json::to_string(&Request::Wait { target: Target::Batch(1), timeout_ms: None })
                .unwrap(),
            serde_json::to_string(&Request::Wait { target: Target::Batch(77), timeout_ms: None })
                .unwrap(),
        );
        let responses = responses(&service, &input);
        assert!(matches!(&responses[0], Response::Error { .. }), "garbage gets an error line");
        let jobs = match &responses[1] {
            Response::AcceptedBatch { batch: 1, jobs, points: 2, resumed: 0 } => jobs.clone(),
            other => panic!("expected an accepted batch, got {other:?}"),
        };
        match &responses[2] {
            Response::BatchResult { batch: 1, outcomes } => {
                assert_eq!(outcomes.len(), 2);
                assert!(outcomes.iter().all(|o| o.ok));
                assert_eq!(
                    outcomes.iter().map(|o| o.job.unwrap()).collect::<Vec<_>>(),
                    jobs,
                    "outcomes are in grid order"
                );
            }
            other => panic!("expected a batch result, got {other:?}"),
        }
        assert!(matches!(&responses[3], Response::Error { .. }), "unknown ids get an error");
    }

    #[test]
    fn bounded_waits_answer_status_within_the_deadline_without_consuming_ids() {
        use crate::{evaluate, CacheKey, EvalCache};
        use cimflow_arch::ArchConfig;
        use cimflow_compiler::SearchMode;
        use cimflow_nn::models;
        use std::sync::mpsc;
        use std::time::{Duration, Instant};

        let cache = EvalCache::new();
        let service = EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone());
        // Hold the design point's in-flight cache marker so the worker
        // blocks deterministically (the marker is held before submit).
        let (go, release) = mpsc::channel();
        let (entered_tx, entered_rx) = mpsc::channel();
        let blocked_cache = cache.clone();
        let blocker = std::thread::spawn(move || {
            let arch = ArchConfig::paper_default();
            let model = models::mobilenet_v2(32);
            let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
            blocked_cache
                .get_or_insert_with(key, || {
                    entered_tx.send(()).expect("entered signal");
                    release.recv().expect("release signal");
                    evaluate(&arch, &model, Strategy::GenericMapping)
                })
                .expect("blocked evaluation succeeds");
        });
        entered_rx.recv().expect("blocker holds the marker");

        let mut connection = Connection::new(&service);
        let (response, _) = connection.handle(Request::Submit(Box::new(EvalRequest::new(
            "mobilenetv2",
            32,
            Strategy::GenericMapping,
        ))));
        assert_eq!(response, Response::Accepted { job: 1 });

        // The bounded wait returns the current status near its deadline —
        // the job would otherwise block this connection indefinitely.
        let started = Instant::now();
        let (response, shutdown) =
            connection.handle(Request::Wait { target: Target::Job(1), timeout_ms: Some(100) });
        let elapsed = started.elapsed();
        assert!(!shutdown);
        match response {
            Response::Status { state, completed, total } => {
                assert!(state == "queued" || state == "running", "live state, got {state}");
                assert_eq!((completed, total), (0, 1));
            }
            other => panic!("expected an expiry status, got {other:?}"),
        }
        assert!(elapsed >= Duration::from_millis(100), "the deadline is honored: {elapsed:?}");
        assert!(
            elapsed < Duration::from_secs(5),
            "the wait returns at the deadline, not at job completion: {elapsed:?}"
        );

        // The expired wait did not consume the id.
        let (response, _) = connection.handle(Request::Poll(Target::Job(1)));
        assert!(matches!(response, Response::Status { .. }));

        // Released, a bounded wait resolves like an unbounded one and
        // consumes the id.
        go.send(()).unwrap();
        let (response, _) =
            connection.handle(Request::Wait { target: Target::Job(1), timeout_ms: Some(60_000) });
        match response {
            Response::Result(outcome) => assert!(outcome.ok),
            other => panic!("expected a result, got {other:?}"),
        }
        let (response, _) = connection.handle(Request::Poll(Target::Job(1)));
        assert!(matches!(response, Response::Error { .. }), "the completed wait consumed the id");
        blocker.join().unwrap();
    }

    #[test]
    fn shutdown_request_stops_the_session_and_the_service() {
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let input = lines(&[Request::Shutdown, Request::Stats]);
        let responses = responses(&service, &input);
        assert_eq!(responses, vec![Response::ShuttingDown], "no requests served past shutdown");
        assert!(service.submit(EvalRequest::new("resnet18", 32, Strategy::DpOptimized)).is_err());
    }
}
