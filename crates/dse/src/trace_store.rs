//! A shared store of recorded simulation traces, keyed by
//! *compile-affecting* content so that timing-only design points — same
//! compiled program, different frequency / memory-port placement — share
//! one compile → record run and replay the rest.
//!
//! The store is the DSE-side counterpart of the simulator's
//! [`SimTrace`]/[`ReplayEngine`](cimflow_sim::ReplayEngine) pair: the
//! first worker to reach a trace key pays the full
//! `compile + record` cost and publishes the trace (plus the
//! frequency-independent compile-side facts an [`Evaluation`]
//! (crate::Evaluation) needs); every later point with the same key
//! replays the trace in a fraction of the time. Concurrent recorders of
//! one key are deduplicated with the same in-flight-marker protocol as
//! the [`EvalCache`](crate::EvalCache), so a sweep fanning 16 workers
//! into one trace group performs exactly one recording.
//!
//! The key hashes the architecture through
//! [`ArchConfig::compile_fingerprint`], which canonicalizes the
//! timing-only fields (`frequency_mhz`, `memory_port`, `noc_hop_latency`,
//! and the inter-chip link parameters of single-chip systems) — two
//! architectures differing only in those fields collide intentionally.
//! Everything else (flit size, macro grouping, chip/core counts, …)
//! changes the compiled program and therefore the key.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cimflow_arch::ArchConfig;
use cimflow_compiler::{CompileReport, SearchMode, Strategy};
use cimflow_nn::Model;
use cimflow_sim::SimTrace;

use crate::cache::model_content_hash;
use crate::DseError;

const STORE_POISONED: &str = "trace store poisoned";

/// Identifies one recorded trace by compile-affecting content: the
/// architecture's [`compile fingerprint`](ArchConfig::compile_fingerprint),
/// the model's content hash, the strategy and the search mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// [`ArchConfig::compile_fingerprint`] of the architecture
    /// (timing-only fields canonicalized away).
    pub arch: u64,
    /// Content hash of the model (same function as the eval cache's).
    pub model: u64,
    /// The compilation strategy.
    pub strategy: Strategy,
    /// The system-level search mode.
    pub search: SearchMode,
}

impl TraceKey {
    /// Computes the trace key of a design point.
    pub fn of(arch: &ArchConfig, model: &Model, strategy: Strategy, search: SearchMode) -> Self {
        TraceKey {
            arch: arch.compile_fingerprint(),
            model: model_content_hash(model),
            strategy,
            search,
        }
    }
}

/// One recorded trace plus the compile-side facts shared by every design
/// point that replays it (all of them are frequency-independent — they
/// describe the compiled program, not its timing).
#[derive(Debug)]
pub struct TraceEntry {
    /// The recorded timing-op trace.
    pub trace: SimTrace,
    /// Static compilation statistics of the recorded compile.
    pub compilation: CompileReport,
    /// Number of execution stages chosen by the partitioner.
    pub stages: usize,
    /// Mean weight-duplication factor chosen by the mapper.
    pub mean_duplication: f64,
}

/// Monotonic counters of a [`TraceStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces recorded (one full compile + record run each).
    pub recorded: u64,
    /// Lookups served by an already-recorded trace.
    pub reused: u64,
    /// Traces evicted by the LRU capacity bound (each eviction makes the
    /// key re-recordable — correctness is unaffected, only reuse).
    pub evicted: u64,
}

/// Default [`TraceStore`] capacity, in entries. A recorded trace of a
/// realistic model runs to megabytes, and long serve/explore sessions
/// used to grow the store without bound; 128 entries comfortably covers
/// every trace group of the paper-scale sweeps while capping memory.
pub const DEFAULT_TRACE_CAPACITY: usize = 128;

#[derive(Debug)]
struct StoreInner {
    /// Recorded traces plus the logical clock tick of their last use
    /// (insertion or lookup) — the eviction scan removes the smallest.
    entries: Mutex<HashMap<TraceKey, (Arc<TraceEntry>, u64)>>,
    /// Keys currently being recorded; guarded separately from `entries`
    /// so waiters do not hold the entry map across a recording.
    in_flight: Mutex<HashSet<TraceKey>>,
    in_flight_done: Condvar,
    recorded: AtomicU64,
    reused: AtomicU64,
    evicted: AtomicU64,
    /// Logical recency clock (bumped on every lookup/insert).
    clock: AtomicU64,
    /// Maximum number of stored traces (at least 1).
    capacity: usize,
}

/// A concurrency-safe store of recorded traces shared by the workers of
/// one evaluation service (cheap to clone; clones share the storage).
///
/// The store is bounded: once [`capacity`](Self::capacity) traces are
/// held, recording a new one evicts the least-recently-used entry (and
/// counts it in [`TraceStoreStats::evicted`]). An evicted key simply
/// records again on its next miss.
#[derive(Debug, Clone)]
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceStore {
    /// Creates an empty store with the default capacity
    /// ([`DEFAULT_TRACE_CAPACITY`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store holding at most `capacity` traces
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            inner: Arc::new(StoreInner {
                entries: Mutex::new(HashMap::new()),
                in_flight: Mutex::new(HashSet::new()),
                in_flight_done: Condvar::new(),
                recorded: AtomicU64::new(0),
                reused: AtomicU64::new(0),
                evicted: AtomicU64::new(0),
                clock: AtomicU64::new(0),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Maximum number of traces the store holds before evicting.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().expect(STORE_POISONED).len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The trace recorded under `key`, if any (does not count as reuse,
    /// but refreshes the entry's LRU recency).
    pub fn get(&self, key: &TraceKey) -> Option<Arc<TraceEntry>> {
        let tick = self.inner.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.inner.entries.lock().expect(STORE_POISONED);
        entries.get_mut(key).map(|slot| {
            slot.1 = tick;
            Arc::clone(&slot.0)
        })
    }

    /// Counts `count` additional reuses. [`TraceStore::get`] deliberately
    /// does not count (probes are not reuses); batch consumers — e.g. a
    /// lockstep replay group re-timing many points from one lookup —
    /// report how many points an entry actually served.
    pub fn note_reuse(&self, count: u64) {
        self.inner.reused.fetch_add(count, Ordering::Relaxed);
    }

    /// A snapshot of the recorded/reused/evicted counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            recorded: self.inner.recorded.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
            evicted: self.inner.evicted.load(Ordering::Relaxed),
        }
    }

    /// Looks up the trace under `key`, or records it with `record` on a
    /// miss. Returns the entry plus whether **this caller** recorded it
    /// (`false` means the trace pre-existed or another worker's
    /// recording was awaited — either way the caller should replay).
    ///
    /// Concurrent callers with the same key are deduplicated exactly
    /// like [`EvalCache::get_or_insert_with`](crate::EvalCache): the
    /// first records while the others block on the in-flight marker,
    /// then take the published entry. Recording failures are not cached
    /// (one waiter takes over).
    ///
    /// # Errors
    ///
    /// Propagates the recorder's error.
    pub fn get_or_record_with(
        &self,
        key: TraceKey,
        record: impl FnOnce() -> Result<TraceEntry, DseError>,
    ) -> Result<(Arc<TraceEntry>, bool), DseError> {
        loop {
            if let Some(entry) = self.get(&key) {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return Ok((entry, false));
            }
            let mut in_flight = self.inner.in_flight.lock().expect(STORE_POISONED);
            if in_flight.insert(key) {
                break; // this caller owns the recording
            }
            // Another worker is recording this key: wait for it, then
            // re-check the entries.
            while in_flight.contains(&key) {
                in_flight = self.inner.in_flight_done.wait(in_flight).expect(STORE_POISONED);
            }
        }
        // Release the marker even if `record` panics, so waiters are
        // woken instead of deadlocking (one of them takes over).
        struct InFlightGuard<'a> {
            store: &'a StoreInner,
            key: TraceKey,
        }
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                let mut in_flight =
                    self.store.in_flight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                in_flight.remove(&self.key);
                self.store.in_flight_done.notify_all();
            }
        }
        let guard = InFlightGuard { store: &self.inner, key };
        let result = record();
        let entry = match result {
            Ok(entry) => Arc::new(entry),
            Err(e) => return Err(e), // guard wakes the waiters
        };
        // Publish before releasing the in-flight marker so waiters
        // always observe the entry when they wake.
        {
            let tick = self.inner.clock.fetch_add(1, Ordering::Relaxed);
            let mut entries = self.inner.entries.lock().expect(STORE_POISONED);
            entries.insert(key, (Arc::clone(&entry), tick));
            // LRU bound: evict the stalest entry other than the one just
            // published (an O(n) scan — the map is at most `capacity`+1
            // entries, far below where a recency list would pay off).
            while entries.len() > self.inner.capacity {
                let victim = entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, (_, tick))| *tick)
                    .map(|(k, _)| *k);
                match victim {
                    Some(victim) => {
                        entries.remove(&victim);
                        self.inner.evicted.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        Ok((entry, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;
    use cimflow_sim::Simulator;

    fn record_entry(arch: &ArchConfig, model: &Model) -> TraceEntry {
        let compiled = compile(model, arch, Strategy::GenericMapping).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        TraceEntry {
            trace,
            compilation: compiled.report.clone(),
            stages: compiled.plan.stages.len(),
            mean_duplication: compiled.plan.mean_duplication(),
        }
    }

    #[test]
    fn timing_only_points_share_a_key_and_the_recorded_trace() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::GenericMapping, SearchMode::Sequential);
        // Frequency and port placement are timing-only: same key.
        let retimed = base.with_frequency_mhz(500).with_memory_port(27);
        assert_eq!(
            key,
            TraceKey::of(&retimed, &model, Strategy::GenericMapping, SearchMode::Sequential)
        );
        // Flit size changes the compiled program: different key.
        assert_ne!(
            key,
            TraceKey::of(
                &base.with_flit_bytes(16),
                &model,
                Strategy::GenericMapping,
                SearchMode::Sequential
            )
        );

        let store = TraceStore::new();
        let (_, recorded) =
            store.get_or_record_with(key, || Ok(record_entry(&base, &model))).unwrap();
        assert!(recorded);
        let (entry, recorded) =
            store.get_or_record_with(key, || panic!("second lookup must reuse")).unwrap();
        assert!(!recorded);
        assert!(entry.trace.is_compatible(&retimed));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats(), TraceStoreStats { recorded: 1, reused: 1, evicted: 0 });
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        // One real recording, cloned per key: the test exercises the
        // bound, not the recorder.
        let template = record_entry(&base, &model);
        let entry = || {
            Ok(TraceEntry {
                trace: template.trace.clone(),
                compilation: template.compilation.clone(),
                stages: template.stages,
                mean_duplication: template.mean_duplication,
            })
        };
        // Three distinct keys via compile-affecting flit sizes.
        let key = |flit: u32| {
            TraceKey::of(
                &base.with_flit_bytes(flit),
                &model,
                Strategy::GenericMapping,
                SearchMode::Sequential,
            )
        };
        let (a, b, c) = (key(32), key(16), key(8));

        let store = TraceStore::with_capacity(2);
        assert_eq!(store.capacity(), 2);
        store.get_or_record_with(a, entry).unwrap();
        store.get_or_record_with(b, entry).unwrap();
        assert_eq!(store.len(), 2);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(store.get(&a).is_some());
        store.get_or_record_with(c, entry).unwrap();
        assert_eq!(store.len(), 2);
        assert!(store.get(&a).is_some(), "recently used entry survives");
        assert!(store.get(&b).is_none(), "LRU entry was evicted");
        assert!(store.get(&c).is_some(), "new entry is held");
        assert_eq!(store.stats(), TraceStoreStats { recorded: 3, reused: 0, evicted: 1 });

        // The evicted key is simply re-recordable.
        let (_, recorded) = store.get_or_record_with(b, entry).unwrap();
        assert!(recorded);
        assert_eq!(store.stats().evicted, 2);

        // A zero capacity clamps to one entry rather than thrashing on
        // an un-storable insert.
        assert_eq!(TraceStore::with_capacity(0).capacity(), 1);
    }

    #[test]
    fn recording_failures_are_not_cached() {
        let store = TraceStore::new();
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::DpOptimized, SearchMode::Sequential);
        let failed: Result<_, DseError> =
            store.get_or_record_with(key, || Err(DseError::spec("synthetic failure")));
        assert!(failed.is_err());
        assert!(store.is_empty());
        // The key is retryable afterwards.
        let (_, recorded) =
            store.get_or_record_with(key, || Ok(record_entry(&base, &model))).unwrap();
        assert!(recorded);
    }

    #[test]
    fn concurrent_recorders_of_one_key_are_deduplicated() {
        let store = TraceStore::new();
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let recordings: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = store.clone();
                    let model = &model;
                    scope.spawn(move || {
                        let (_, recorded) = store
                            .get_or_record_with(key, || Ok(record_entry(&base, model)))
                            .unwrap();
                        recorded
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(recordings.iter().filter(|&&r| r).count(), 1, "exactly one recorder");
        assert_eq!(store.stats().recorded, 1);
        assert_eq!(store.stats().reused, 3);
    }
}
