//! A shared store of recorded simulation traces, keyed by
//! *compile-affecting* content so that timing-only design points — same
//! compiled program, different frequency / memory-port placement — share
//! one compile → record run and replay the rest.
//!
//! The store is the DSE-side counterpart of the simulator's
//! [`SimTrace`]/[`ReplayEngine`](cimflow_sim::ReplayEngine) pair: the
//! first worker to reach a trace key pays the full
//! `compile + record` cost and publishes the trace (plus the
//! frequency-independent compile-side facts an [`Evaluation`]
//! (crate::Evaluation) needs); every later point with the same key
//! replays the trace in a fraction of the time. Concurrent recorders of
//! one key are deduplicated with the same in-flight-marker protocol as
//! the [`EvalCache`](crate::EvalCache), so a sweep fanning 16 workers
//! into one trace group performs exactly one recording.
//!
//! The key hashes the architecture through
//! [`ArchConfig::compile_fingerprint`], which canonicalizes the
//! timing-only fields (`frequency_mhz`, `memory_port`, `noc_hop_latency`,
//! and the inter-chip link parameters of single-chip systems) — two
//! architectures differing only in those fields collide intentionally.
//! Everything else (flit size, macro grouping, chip/core counts, …)
//! changes the compiled program and therefore the key.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cimflow_arch::ArchConfig;
use cimflow_compiler::{CompileReport, SearchMode, Strategy};
use cimflow_nn::Model;
use cimflow_sim::SimTrace;

use crate::cache::model_content_hash;
use crate::DseError;

const STORE_POISONED: &str = "trace store poisoned";

/// Identifies one recorded trace by compile-affecting content: the
/// architecture's [`compile fingerprint`](ArchConfig::compile_fingerprint),
/// the model's content hash, the strategy and the search mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// [`ArchConfig::compile_fingerprint`] of the architecture
    /// (timing-only fields canonicalized away).
    pub arch: u64,
    /// Content hash of the model (same function as the eval cache's).
    pub model: u64,
    /// The compilation strategy.
    pub strategy: Strategy,
    /// The system-level search mode.
    pub search: SearchMode,
}

impl TraceKey {
    /// Computes the trace key of a design point.
    pub fn of(arch: &ArchConfig, model: &Model, strategy: Strategy, search: SearchMode) -> Self {
        TraceKey {
            arch: arch.compile_fingerprint(),
            model: model_content_hash(model),
            strategy,
            search,
        }
    }
}

/// One recorded trace plus the compile-side facts shared by every design
/// point that replays it (all of them are frequency-independent — they
/// describe the compiled program, not its timing).
#[derive(Debug)]
pub struct TraceEntry {
    /// The recorded timing-op trace.
    pub trace: SimTrace,
    /// Static compilation statistics of the recorded compile.
    pub compilation: CompileReport,
    /// Number of execution stages chosen by the partitioner.
    pub stages: usize,
    /// Mean weight-duplication factor chosen by the mapper.
    pub mean_duplication: f64,
}

/// Monotonic counters of a [`TraceStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStoreStats {
    /// Traces recorded (one full compile + record run each).
    pub recorded: u64,
    /// Lookups served by an already-recorded trace.
    pub reused: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    entries: Mutex<HashMap<TraceKey, Arc<TraceEntry>>>,
    /// Keys currently being recorded; guarded separately from `entries`
    /// so waiters do not hold the entry map across a recording.
    in_flight: Mutex<HashSet<TraceKey>>,
    in_flight_done: Condvar,
    recorded: AtomicU64,
    reused: AtomicU64,
}

/// A concurrency-safe store of recorded traces shared by the workers of
/// one evaluation service (cheap to clone; clones share the storage).
#[derive(Debug, Clone, Default)]
pub struct TraceStore {
    inner: Arc<StoreInner>,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded traces.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().expect(STORE_POISONED).len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The trace recorded under `key`, if any (does not count as reuse).
    pub fn get(&self, key: &TraceKey) -> Option<Arc<TraceEntry>> {
        self.inner.entries.lock().expect(STORE_POISONED).get(key).cloned()
    }

    /// A snapshot of the recorded/reused counters.
    pub fn stats(&self) -> TraceStoreStats {
        TraceStoreStats {
            recorded: self.inner.recorded.load(Ordering::Relaxed),
            reused: self.inner.reused.load(Ordering::Relaxed),
        }
    }

    /// Looks up the trace under `key`, or records it with `record` on a
    /// miss. Returns the entry plus whether **this caller** recorded it
    /// (`false` means the trace pre-existed or another worker's
    /// recording was awaited — either way the caller should replay).
    ///
    /// Concurrent callers with the same key are deduplicated exactly
    /// like [`EvalCache::get_or_insert_with`](crate::EvalCache): the
    /// first records while the others block on the in-flight marker,
    /// then take the published entry. Recording failures are not cached
    /// (one waiter takes over).
    ///
    /// # Errors
    ///
    /// Propagates the recorder's error.
    pub fn get_or_record_with(
        &self,
        key: TraceKey,
        record: impl FnOnce() -> Result<TraceEntry, DseError>,
    ) -> Result<(Arc<TraceEntry>, bool), DseError> {
        loop {
            if let Some(entry) = self.get(&key) {
                self.inner.reused.fetch_add(1, Ordering::Relaxed);
                return Ok((entry, false));
            }
            let mut in_flight = self.inner.in_flight.lock().expect(STORE_POISONED);
            if in_flight.insert(key) {
                break; // this caller owns the recording
            }
            // Another worker is recording this key: wait for it, then
            // re-check the entries.
            while in_flight.contains(&key) {
                in_flight = self.inner.in_flight_done.wait(in_flight).expect(STORE_POISONED);
            }
        }
        // Release the marker even if `record` panics, so waiters are
        // woken instead of deadlocking (one of them takes over).
        struct InFlightGuard<'a> {
            store: &'a StoreInner,
            key: TraceKey,
        }
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                let mut in_flight =
                    self.store.in_flight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                in_flight.remove(&self.key);
                self.store.in_flight_done.notify_all();
            }
        }
        let guard = InFlightGuard { store: &self.inner, key };
        let result = record();
        let entry = match result {
            Ok(entry) => Arc::new(entry),
            Err(e) => return Err(e), // guard wakes the waiters
        };
        // Publish before releasing the in-flight marker so waiters
        // always observe the entry when they wake.
        self.inner.entries.lock().expect(STORE_POISONED).insert(key, Arc::clone(&entry));
        self.inner.recorded.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        Ok((entry, true))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::{compile, Strategy};
    use cimflow_nn::models;
    use cimflow_sim::Simulator;

    fn record_entry(arch: &ArchConfig, model: &Model) -> TraceEntry {
        let compiled = compile(model, arch, Strategy::GenericMapping).unwrap();
        let (trace, _) = Simulator::record(&compiled).unwrap();
        TraceEntry {
            trace,
            compilation: compiled.report.clone(),
            stages: compiled.plan.stages.len(),
            mean_duplication: compiled.plan.mean_duplication(),
        }
    }

    #[test]
    fn timing_only_points_share_a_key_and_the_recorded_trace() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::GenericMapping, SearchMode::Sequential);
        // Frequency and port placement are timing-only: same key.
        let retimed = base.with_frequency_mhz(500).with_memory_port(27);
        assert_eq!(
            key,
            TraceKey::of(&retimed, &model, Strategy::GenericMapping, SearchMode::Sequential)
        );
        // Flit size changes the compiled program: different key.
        assert_ne!(
            key,
            TraceKey::of(
                &base.with_flit_bytes(16),
                &model,
                Strategy::GenericMapping,
                SearchMode::Sequential
            )
        );

        let store = TraceStore::new();
        let (_, recorded) =
            store.get_or_record_with(key, || Ok(record_entry(&base, &model))).unwrap();
        assert!(recorded);
        let (entry, recorded) =
            store.get_or_record_with(key, || panic!("second lookup must reuse")).unwrap();
        assert!(!recorded);
        assert!(entry.trace.is_compatible(&retimed));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats(), TraceStoreStats { recorded: 1, reused: 1 });
    }

    #[test]
    fn recording_failures_are_not_cached() {
        let store = TraceStore::new();
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::DpOptimized, SearchMode::Sequential);
        let failed: Result<_, DseError> =
            store.get_or_record_with(key, || Err(DseError::spec("synthetic failure")));
        assert!(failed.is_err());
        assert!(store.is_empty());
        // The key is retryable afterwards.
        let (_, recorded) =
            store.get_or_record_with(key, || Ok(record_entry(&base, &model))).unwrap();
        assert!(recorded);
    }

    #[test]
    fn concurrent_recorders_of_one_key_are_deduplicated() {
        let store = TraceStore::new();
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = TraceKey::of(&base, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let recordings: Vec<bool> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let store = store.clone();
                    let model = &model;
                    scope.spawn(move || {
                        let (_, recorded) = store
                            .get_or_record_with(key, || Ok(record_entry(&base, model)))
                            .unwrap();
                        recorded
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(recordings.iter().filter(|&&r| r).count(), 1, "exactly one recorder");
        assert_eq!(store.stats().recorded, 1);
        assert_eq!(store.stats().reused, 3);
    }
}
