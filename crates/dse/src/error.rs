//! Error type of the design-space-exploration engine.

use std::error::Error;
use std::fmt;

use cimflow_arch::ArchError;
use cimflow_compiler::CompileError;
use cimflow_sim::SimError;

/// Any error produced while expanding or evaluating a sweep.
///
/// Point-level failures (an invalid architecture, a model that does not
/// fit, a simulation fault) are captured *per grid point* in
/// [`DseOutcome`](crate::DseOutcome) instead of aborting the sweep.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// The architecture configuration of the point is invalid.
    Arch(ArchError),
    /// Compilation of the point failed.
    Compile(CompileError),
    /// Simulation of the point failed.
    Simulation(SimError),
    /// The sweep referenced a model the zoo does not know.
    UnknownModel {
        /// The unresolvable model name.
        name: String,
    },
    /// The sweep specification itself is unusable.
    Spec {
        /// Human-readable reason.
        reason: String,
    },
    /// Reading or writing a sweep artifact (spec, cache, export) failed.
    Io {
        /// Human-readable reason.
        reason: String,
    },
    /// The job was cancelled before it ran (service job handles only;
    /// the blocking executor never produces this).
    Cancelled,
}

impl DseError {
    /// Creates a specification error.
    pub fn spec(reason: impl Into<String>) -> Self {
        DseError::Spec { reason: reason.into() }
    }

    /// Creates an I/O error.
    pub fn io(reason: impl Into<String>) -> Self {
        DseError::Io { reason: reason.into() }
    }
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::Arch(e) => write!(f, "architecture error: {e}"),
            DseError::Compile(e) => write!(f, "compilation error: {e}"),
            DseError::Simulation(e) => write!(f, "simulation error: {e}"),
            DseError::UnknownModel { name } => write!(f, "unknown benchmark model `{name}`"),
            DseError::Spec { reason } => write!(f, "invalid sweep specification: {reason}"),
            DseError::Io { reason } => write!(f, "sweep I/O error: {reason}"),
            DseError::Cancelled => write!(f, "evaluation cancelled before it ran"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Arch(e) => Some(e),
            DseError::Compile(e) => Some(e),
            DseError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for DseError {
    fn from(value: ArchError) -> Self {
        DseError::Arch(value)
    }
}

impl From<CompileError> for DseError {
    fn from(value: CompileError) -> Self {
        DseError::Compile(value)
    }
}

impl From<SimError> for DseError {
    fn from(value: SimError) -> Self {
        DseError::Simulation(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e: DseError = ArchError::invalid("chip.core_count", "must be positive").into();
        assert!(e.to_string().contains("architecture error"));
        assert!(e.source().is_some());
        let e = DseError::UnknownModel { name: "lenet".into() };
        assert!(e.to_string().contains("lenet"));
        assert!(e.source().is_none());
        assert!(DseError::spec("no axes").to_string().contains("no axes"));
    }
}
