//! The blocking sweep executor: the batch-compatibility surface over the
//! [`EvalService`] request/response core.
//!
//! Historically the executor owned its own scoped worker pool; since the
//! service-oriented API redesign it is a thin wrapper — `run_spec` is
//! literally "submit the sweep to an ephemeral [`EvalService`] sharing
//! the caller's cache, then wait for the batch" — so every evaluation in
//! the workspace flows through one pipeline. The observable contract is
//! unchanged:
//!
//! * the grid is expanded up front into an indexed job list;
//! * workers claim jobs dynamically (expensive points do not stall a
//!   fixed partition);
//! * every result lands in its job's slot, so the output order equals
//!   the grid order no matter which worker finished first;
//! * a failing point produces an `Err` outcome in its slot — it never
//!   aborts the sweep (the historic `cimflow::dse::sweep` fail-fast bug);
//! * all workers share one [`EvalCache`], so repeated points across and
//!   within sweeps cost a map lookup.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_obs::{MetricsRegistry, Tracer};

use cimflow_nn::{models, Model};

use crate::eval::{served_model_name, TrafficJob};
use crate::journal::SweepJournal;
use crate::service::{EvalService, ServiceConfig};
use crate::{traffic_fingerprint, CacheKey, DseError, EvalCache, Evaluation, PointSpec, SweepSpec};

/// One schedulable unit: a resolved design point.
///
/// The model is behind an `Arc` so that the hundreds of points sharing a
/// model do not clone its graph; `model` is an `Err` when the spec named
/// a model the zoo cannot resolve (the executor turns that into a
/// per-point error outcome).
#[derive(Debug, Clone)]
pub struct Job {
    /// The descriptive point.
    pub spec: PointSpec,
    /// The concrete architecture of the point.
    pub arch: ArchConfig,
    /// The resolved model, or the resolution error.
    pub model: Result<Arc<Model>, DseError>,
    /// The serving workload of the point (shared across the grid);
    /// `None` when the sweep has no traffic section.
    pub traffic: Option<Arc<TrafficJob>>,
}

impl Job {
    /// Builds a job from an explicit model object (used by the
    /// backward-compatible `cimflow::dse` wrappers).
    pub fn from_model(spec: PointSpec, arch: ArchConfig, model: Arc<Model>) -> Self {
        Job { spec, arch, model: Ok(model), traffic: None }
    }

    /// The serving workload this job actually runs: present only when a
    /// traffic section was attached **and** the point offers load.
    pub(crate) fn active_traffic(&self) -> Option<&Arc<TrafficJob>> {
        self.traffic.as_ref().filter(|_| self.spec.offered_qps > 0)
    }

    /// The content cache key of the job (`None` for unresolvable
    /// models). Includes the serving-workload fingerprint, so a point
    /// evaluated under load never answers (or is answered by) the same
    /// design evaluated idle or at a different rate.
    pub(crate) fn cache_key(&self) -> Option<CacheKey> {
        let model = self.model.as_ref().ok()?;
        let key = CacheKey::of(&self.arch, model, self.spec.strategy, self.spec.search);
        Some(match self.active_traffic() {
            Some(traffic) => key.with_traffic(traffic_fingerprint(
                self.spec.offered_qps,
                &traffic.workload,
                &traffic.colocated,
            )),
            None => key,
        })
    }
}

/// The outcome of one grid point: the point description plus either its
/// evaluation or the error that stopped it.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// Which design point this is.
    pub point: PointSpec,
    /// The evaluation, or the per-point failure.
    pub result: Result<Evaluation, DseError>,
    /// Whether the result came out of the evaluation cache.
    pub cached: bool,
}

impl DseOutcome {
    /// The evaluation if the point succeeded.
    pub fn evaluation(&self) -> Option<&Evaluation> {
        self.result.as_ref().ok()
    }
}

/// A progress event, delivered once per finished point (in completion
/// order, possibly from multiple threads).
#[derive(Debug, Clone)]
pub struct Progress {
    /// Points finished so far (including this one).
    pub completed: usize,
    /// Total points of the sweep.
    pub total: usize,
    /// Index of the finished point in grid order.
    pub index: usize,
    /// Label of the finished point.
    pub label: String,
    /// Whether the point succeeded.
    pub ok: bool,
    /// Whether the result was served from the cache.
    pub cached: bool,
}

/// The parallel sweep executor.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    metrics: Option<MetricsRegistry>,
    tracer: Option<Tracer>,
}

impl Executor {
    /// An executor sized to the machine (one worker per available core).
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        Executor { workers, metrics: None, tracer: None }
    }

    /// An executor with an explicit worker count (`1` = sequential).
    pub fn with_workers(workers: usize) -> Self {
        Executor { workers: workers.max(1), metrics: None, tracer: None }
    }

    /// Counts queue waits, latencies and cache traffic into `registry`
    /// (one registry can aggregate over many sweeps).
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Records per-evaluation spans (and compiler candidate-scoring
    /// spans via the ambient tracer) into `tracer`.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// A strictly sequential executor (the baseline the parallel runs are
    /// compared against).
    pub fn sequential() -> Self {
        Self::with_workers(1)
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Expands a [`SweepSpec`] and runs every point, sharing `cache`.
    ///
    /// Outcomes are returned in grid order. Unknown models and invalid
    /// configurations surface as per-point errors, not sweep failures.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] only when the spec expands to an empty
    /// grid (no models or no strategies).
    pub fn run_spec(
        &self,
        spec: &SweepSpec,
        cache: &EvalCache,
    ) -> Result<Vec<DseOutcome>, DseError> {
        self.run_spec_with_progress(spec, cache, |_| {})
    }

    /// [`Self::run_spec`] with a progress callback.
    ///
    /// # Errors
    ///
    /// See [`Self::run_spec`].
    pub fn run_spec_with_progress(
        &self,
        spec: &SweepSpec,
        cache: &EvalCache,
        progress: impl Fn(&Progress) + Sync,
    ) -> Result<Vec<DseOutcome>, DseError> {
        let jobs = expand_jobs(spec)?;
        Ok(self.run_jobs_with_progress(jobs, cache, progress))
    }

    /// Runs an explicit job list, sharing `cache`; outcomes are in job
    /// order.
    pub fn run_jobs(&self, jobs: Vec<Job>, cache: &EvalCache) -> Vec<DseOutcome> {
        self.run_jobs_with_progress(jobs, cache, |_| {})
    }

    /// [`Self::run_jobs`] with a progress callback.
    pub fn run_jobs_with_progress(
        &self,
        jobs: Vec<Job>,
        cache: &EvalCache,
        progress: impl Fn(&Progress) + Sync,
    ) -> Vec<DseOutcome> {
        let service = self.service(jobs.len(), cache);
        let batch = service.submit_jobs(jobs).expect("a fresh service admits its batch");
        batch.wait_with(|event| progress(event))
    }

    /// [`Self::run_spec`] against a [`SweepJournal`] at `journal`: points
    /// recorded by a previous (possibly interrupted) run are served from
    /// the journal, and every newly finished point is appended to it.
    ///
    /// # Errors
    ///
    /// [`DseError::Spec`] for an empty grid, [`DseError::Io`] when the
    /// journal cannot be opened.
    pub fn run_spec_journaled(
        &self,
        spec: &SweepSpec,
        cache: &EvalCache,
        journal: &Path,
    ) -> Result<Vec<DseOutcome>, DseError> {
        self.run_spec_journaled_with_progress(spec, cache, journal, |_| {})
    }

    /// [`Self::run_spec_journaled`] with a progress callback (resumed
    /// points report as cached).
    ///
    /// # Errors
    ///
    /// See [`Self::run_spec_journaled`].
    pub fn run_spec_journaled_with_progress(
        &self,
        spec: &SweepSpec,
        cache: &EvalCache,
        journal: &Path,
        progress: impl Fn(&Progress) + Sync,
    ) -> Result<Vec<DseOutcome>, DseError> {
        let journal = Arc::new(SweepJournal::open(journal)?);
        let service = self.service(spec.point_count(), cache);
        let batch = service.submit_sweep_journaled(spec, &journal).map_err(|rejected| {
            // A fresh private service cannot reject for capacity, so the
            // only reachable arm is the grid-expansion failure; surface
            // it as the usual spec error.
            match rejected {
                crate::Rejected::InvalidSpec { reason } => DseError::spec(reason),
                other => DseError::io(other.to_string()),
            }
        })?;
        Ok(batch.wait_with(|event| progress(event)))
    }

    /// An ephemeral service sharing `cache`, sized like the historic
    /// scoped worker pool (never more workers than jobs).
    fn service(&self, jobs: usize, cache: &EvalCache) -> EvalService {
        let workers = self.workers.min(jobs.max(1));
        let mut config = ServiceConfig::new().with_workers(workers);
        if let Some(metrics) = &self.metrics {
            config = config.with_metrics(metrics.clone());
        }
        if let Some(tracer) = &self.tracer {
            config = config.with_tracer(tracer.clone());
        }
        EvalService::with_cache(config, cache.clone())
    }
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

/// Expands a spec into concrete jobs, resolving each distinct model once
/// (a `HashMap` keyed by `(name, resolution)`, so a 10k-point grid does
/// not pay a linear scan per point).
///
/// # Errors
///
/// Returns [`DseError::Spec`] when the spec expands to an empty grid.
pub fn expand_jobs(spec: &SweepSpec) -> Result<Vec<Job>, DseError> {
    type ResolvedModel = Result<Arc<Model>, DseError>;
    let base = spec.base_arch();
    let points = spec.expand()?;
    let mut resolved: HashMap<(String, u32), ResolvedModel> = HashMap::new();
    let mut resolve = |name: &str, resolution: u32| -> ResolvedModel {
        resolved
            .entry((name.to_owned(), resolution))
            .or_insert_with(|| {
                models::by_name(name, resolution)
                    .map(Arc::new)
                    .ok_or_else(|| DseError::UnknownModel { name: name.to_owned() })
            })
            .clone()
    };
    // The traffic section validates once per sweep: the mix (when set)
    // must match the served-model count, which is the whole model axis
    // under co-location and 1 otherwise.
    if let Some(traffic) = &spec.traffic {
        let served = if traffic.colocate { spec.models.len() } else { 1 };
        traffic.workload.validate(served).map_err(|e| DseError::spec(e.to_string()))?;
    }
    // Under co-location every point serves the whole model axis (in mix
    // order); unresolvable colocated models surface as a spec error so a
    // typo cannot silently shrink the mix.
    let colocated_pool: Option<Arc<TrafficJob>> = match &spec.traffic {
        Some(traffic) if traffic.colocate => {
            let mut colocated = Vec::with_capacity(spec.models.len());
            for m in &spec.models {
                let model = resolve(&m.name, m.resolution)?;
                colocated.push((served_model_name(&m.name, m.resolution), model));
            }
            Some(Arc::new(TrafficJob { workload: traffic.workload.clone(), colocated }))
        }
        _ => None,
    };
    let mut solo_traffic: HashMap<(String, u32), Arc<TrafficJob>> = HashMap::new();
    let mut jobs = Vec::with_capacity(points.len());
    for point in points {
        let model = resolve(&point.model.name, point.model.resolution);
        let traffic = match &spec.traffic {
            None => None,
            Some(_) if colocated_pool.is_some() => colocated_pool.clone(),
            Some(traffic) => match &model {
                Ok(resolved) => Some(
                    solo_traffic
                        .entry((point.model.name.clone(), point.model.resolution))
                        .or_insert_with(|| {
                            Arc::new(TrafficJob {
                                workload: traffic.workload.clone(),
                                colocated: vec![(
                                    served_model_name(&point.model.name, point.model.resolution),
                                    Arc::clone(resolved),
                                )],
                            })
                        })
                        .clone(),
                ),
                // The point fails on model resolution anyway.
                Err(_) => None,
            },
        };
        let arch = point.arch(&base);
        jobs.push(Job { spec: point, arch, model, traffic });
    }
    Ok(jobs)
}

/// Runs a spec with a fresh (non-shared) cache: a convenience for
/// one-shot sweeps. Honors `spec.workers` when set and otherwise uses
/// one worker per available core; pass `workers: Some(1)` (or use
/// [`Executor::sequential`] directly) for single-threaded execution.
///
/// # Errors
///
/// See [`Executor::run_spec`].
pub fn run_sweep(spec: &SweepSpec) -> Result<Vec<DseOutcome>, DseError> {
    let executor = match spec.workers {
        Some(workers) => Executor::with_workers(workers),
        None => Executor::new(),
    };
    executor.run_spec(spec, &EvalCache::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_compiler::Strategy;
    use std::sync::Mutex;

    fn small_spec() -> SweepSpec {
        SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
            .with_flit_sizes(&[8, 16])
    }

    #[test]
    fn outcomes_follow_grid_order_and_progress_counts() {
        let cache = EvalCache::new();
        let seen = Mutex::new(Vec::new());
        let outcomes = Executor::with_workers(4)
            .run_spec_with_progress(&small_spec(), &cache, |p: &Progress| {
                seen.lock().unwrap().push((p.completed, p.total));
            })
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        let mg: Vec<u64> = outcomes.iter().map(|o| o.point.mg_size).collect();
        assert_eq!(mg, vec![4, 8, 4, 8], "grid order is independent of completion order");
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|(_, total)| *total == 4));
        let mut counts: Vec<usize> = seen.iter().map(|(done, _)| *done).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3, 4]);
    }

    #[test]
    fn invalid_points_are_reported_not_fatal() {
        // mg size 0 is an invalid configuration; the model axis also
        // contains an unknown model. Neither may sink the sweep.
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("not-a-model", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[8, 0]);
        let outcomes = Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[0].result.is_ok());
        assert!(matches!(outcomes[1].result, Err(DseError::Arch(_))));
        assert!(matches!(outcomes[2].result, Err(DseError::UnknownModel { .. })));
        assert!(matches!(outcomes[3].result, Err(DseError::UnknownModel { .. })));
    }

    #[test]
    fn parallel_and_sequential_sweeps_agree() {
        let spec = small_spec();
        let sequential = Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap();
        let parallel = Executor::with_workers(8).run_spec(&spec, &EvalCache::new()).unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.point, p.point);
            let (s, p) = (s.evaluation().unwrap(), p.evaluation().unwrap());
            assert_eq!(s.simulation.total_cycles, p.simulation.total_cycles);
            assert!((s.simulation.energy.total_pj() - p.simulation.energy.total_pj()).abs() < 1e-6);
            assert_eq!(s.compilation, p.compilation);
        }
    }

    #[test]
    fn shared_cache_makes_rerun_free_of_recompilation() {
        let cache = EvalCache::new();
        let spec = small_spec();
        let executor = Executor::with_workers(2);
        let cold = executor.run_spec(&spec, &cache).unwrap();
        assert!(cold.iter().all(|o| !o.cached), "first run must evaluate everything");
        let warm = executor.run_spec(&spec, &cache).unwrap();
        assert!(warm.iter().all(|o| o.cached), "warm run must be 100% cache hits");
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chip_count_sweeps_run_end_to_end() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::DpOptimized])
            .with_chip_counts(&[1, 2]);
        let outcomes = Executor::with_workers(2).run_spec(&spec, &EvalCache::new()).unwrap();
        assert_eq!(outcomes.len(), 2);
        let single = outcomes[0].evaluation().unwrap();
        let dual = outcomes[1].evaluation().unwrap();
        assert_eq!(single.simulation.chip_count, 1);
        assert_eq!(dual.simulation.chip_count, 2);
        assert_eq!(dual.arch.total_cores(), 128);
        assert!(dual.simulation.energy.interchip_pj > 0.0);
        assert_eq!(single.simulation.energy.interchip_pj, 0.0);
    }

    #[test]
    fn executor_sweeps_feed_a_shared_registry_and_tracer() {
        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(4096);
        let executor =
            Executor::with_workers(2).with_metrics(registry.clone()).with_tracer(tracer.clone());
        let cache = EvalCache::new();
        executor.run_spec(&small_spec(), &cache).unwrap();
        executor.run_spec(&small_spec(), &cache).unwrap();
        // Both sweeps (8 points, 4 warm) count into the one registry,
        // even though each run used its own ephemeral service.
        let snapshot = registry.snapshot();
        match snapshot.get("service.evals_completed", &[]) {
            Some(cimflow_obs::MetricValue::Counter(n)) => assert_eq!(*n, 8),
            other => panic!("expected a completion counter, got {other:?}"),
        }
        let evals = tracer.events().iter().filter(|e| e.name == "eval").count();
        assert_eq!(evals, 8, "every point leaves an eval span, cached or not");
    }

    #[test]
    fn duplicate_models_resolve_once() {
        let jobs = expand_jobs(&small_spec()).unwrap();
        let first = jobs[0].model.as_ref().unwrap();
        assert!(jobs[1..].iter().all(|job| Arc::ptr_eq(first, job.model.as_ref().unwrap())));
    }
}
