//! Declarative sweep grids: the serializable [`SweepSpec`] and its
//! expansion into concrete design points.
//!
//! A sweep is data, not code: it can be written as a JSON file and fed to
//! the `cimflow-dse` CLI, or built programmatically with the builder
//! methods. Every axis left empty pins the corresponding parameter to the
//! base architecture's value, so a spec only names the axes it actually
//! explores.

use cimflow_arch::ArchConfig;
use cimflow_compiler::{SearchMode, Strategy};
use cimflow_traffic::WorkloadSpec;
use serde::{Content, Deserialize, Serialize};

use crate::DseError;

/// A benchmark model reference: zoo name plus input resolution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model-zoo name (`resnet18`, `vgg19`, `mobilenetv2`,
    /// `efficientnetb0`).
    pub name: String,
    /// Input resolution in pixels (the paper uses 224; 32–64 keeps the
    /// graph structure while running in seconds).
    pub resolution: u32,
}

impl ModelSpec {
    /// Creates a model reference.
    pub fn new(name: impl Into<String>, resolution: u32) -> Self {
        ModelSpec { name: name.into(), resolution }
    }
}

/// The serving-traffic section of a sweep: an offered-QPS axis plus the
/// workload preset every point serves.
///
/// When present, every design point additionally runs the serving-mode
/// simulator ([`Simulator::serve`](cimflow_sim::Simulator::serve)) at
/// each offered rate, and evaluations carry SLO metrics (p50/p99/max
/// latency under load, goodput, saturation QPS) next to the classic
/// single-inference report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TrafficSpec {
    /// Offered request rates in requests/second — the sweep axis
    /// (required non-empty).
    pub offered_qps: Vec<u64>,
    /// The rate-free workload preset (arrival shape, seed, horizon,
    /// batching knobs, mix).
    pub workload: WorkloadSpec,
    /// Serve **all** models of the sweep co-located on each point's
    /// system (time-shared, per-model queues). When `false` each point
    /// serves only its own model.
    pub colocate: bool,
}

impl TrafficSpec {
    /// A traffic section over `offered_qps` with the default Poisson
    /// preset, no co-location.
    pub fn new(offered_qps: &[u64]) -> Self {
        TrafficSpec {
            offered_qps: offered_qps.to_vec(),
            workload: WorkloadSpec::default(),
            colocate: false,
        }
    }

    /// Sets the workload preset.
    #[must_use]
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Serves all sweep models co-located on each point's system.
    #[must_use]
    pub fn colocated(mut self) -> Self {
        self.colocate = true;
        self
    }
}

impl Deserialize for TrafficSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for TrafficSpec"))?;
        fn opt<T: Deserialize>(
            map: &[(String, Content)],
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match map.iter().find(|(k, _)| k == name) {
                Some((_, Content::Null)) | None => Ok(None),
                Some((_, v)) => T::deserialize(v)
                    .map(Some)
                    .map_err(|e| serde::Error::new(format!("TrafficSpec.{name}: {e}"))),
            }
        }
        Ok(TrafficSpec {
            offered_qps: opt(map, "offered_qps")?.unwrap_or_default(),
            workload: opt(map, "workload")?.unwrap_or_default(),
            colocate: opt(map, "colocate")?.unwrap_or(false),
        })
    }
}

/// A declarative architectural sweep over the CIMFlow design space.
///
/// The grid is the cartesian product of all non-empty axes, expanded in a
/// fixed order (model, strategy, search mode, chip count, core count,
/// local memory, flit size, macro-group size) so results are
/// deterministic regardless of how many workers evaluate them.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepSpec {
    /// Optional sweep name (used in report headers).
    pub name: Option<String>,
    /// Base architecture; `None` means the paper's Table I default.
    pub base: Option<ArchConfig>,
    /// Models to evaluate (at least one required).
    pub models: Vec<ModelSpec>,
    /// Compilation strategies (at least one required).
    pub strategies: Vec<Strategy>,
    /// System-level search modes; empty pins every point to the default
    /// [`SearchMode::Sequential`].
    pub search_modes: Vec<SearchMode>,
    /// Macro-group sizes (macros per MG); empty keeps the base value.
    pub mg_sizes: Vec<u32>,
    /// NoC flit sizes in bytes; empty keeps the base value.
    pub flit_sizes: Vec<u32>,
    /// Chip counts (the scale-out axis); empty keeps the base value.
    pub chip_counts: Vec<u32>,
    /// Core counts (the mesh is re-derived); empty keeps the base value.
    pub core_counts: Vec<u32>,
    /// Per-core local-memory capacities in KiB; empty keeps the base
    /// value.
    pub local_memory_kib: Vec<u64>,
    /// Clock frequencies in MHz; empty keeps the base value. A
    /// **timing-only** axis: points differing only here share one
    /// compiled program, so the executor replays a recorded trace
    /// instead of recompiling.
    pub frequencies_mhz: Vec<u32>,
    /// Global-memory-port mesh placements (node index); empty keeps the
    /// base value. Timing-only, like `frequencies_mhz`.
    pub memory_ports: Vec<u32>,
    /// Serving-traffic section: an offered-QPS axis plus the workload
    /// preset. `None` keeps the classic single-inference evaluation.
    pub traffic: Option<TrafficSpec>,
    /// Worker threads for the executor; `None` lets the executor decide.
    pub workers: Option<usize>,
}

impl SweepSpec {
    /// Creates an empty sweep over the paper-default base architecture.
    pub fn new() -> Self {
        SweepSpec {
            name: None,
            base: None,
            models: Vec::new(),
            strategies: Vec::new(),
            search_modes: Vec::new(),
            mg_sizes: Vec::new(),
            flit_sizes: Vec::new(),
            chip_counts: Vec::new(),
            core_counts: Vec::new(),
            local_memory_kib: Vec::new(),
            frequencies_mhz: Vec::new(),
            memory_ports: Vec::new(),
            traffic: None,
            workers: None,
        }
    }

    /// Sets the sweep name.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the base architecture.
    #[must_use]
    pub fn with_base(mut self, base: ArchConfig) -> Self {
        self.base = Some(base);
        self
    }

    /// Adds a model axis entry.
    #[must_use]
    pub fn with_model(mut self, name: impl Into<String>, resolution: u32) -> Self {
        self.models.push(ModelSpec::new(name, resolution));
        self
    }

    /// Sets the strategy axis.
    #[must_use]
    pub fn with_strategies(mut self, strategies: &[Strategy]) -> Self {
        self.strategies = strategies.to_vec();
        self
    }

    /// Sets the search-mode axis.
    #[must_use]
    pub fn with_search_modes(mut self, modes: &[SearchMode]) -> Self {
        self.search_modes = modes.to_vec();
        self
    }

    /// Sets the macro-group-size axis.
    #[must_use]
    pub fn with_mg_sizes(mut self, sizes: &[u32]) -> Self {
        self.mg_sizes = sizes.to_vec();
        self
    }

    /// Sets the flit-size axis.
    #[must_use]
    pub fn with_flit_sizes(mut self, sizes: &[u32]) -> Self {
        self.flit_sizes = sizes.to_vec();
        self
    }

    /// Sets the chip-count axis.
    #[must_use]
    pub fn with_chip_counts(mut self, counts: &[u32]) -> Self {
        self.chip_counts = counts.to_vec();
        self
    }

    /// Sets the core-count axis.
    #[must_use]
    pub fn with_core_counts(mut self, counts: &[u32]) -> Self {
        self.core_counts = counts.to_vec();
        self
    }

    /// Sets the local-memory-capacity axis (KiB).
    #[must_use]
    pub fn with_local_memory_kib(mut self, capacities: &[u64]) -> Self {
        self.local_memory_kib = capacities.to_vec();
        self
    }

    /// Sets the clock-frequency axis (MHz; timing-only).
    #[must_use]
    pub fn with_frequencies_mhz(mut self, frequencies: &[u32]) -> Self {
        self.frequencies_mhz = frequencies.to_vec();
        self
    }

    /// Sets the memory-port-placement axis (timing-only).
    #[must_use]
    pub fn with_memory_ports(mut self, ports: &[u32]) -> Self {
        self.memory_ports = ports.to_vec();
        self
    }

    /// Attaches a serving-traffic section (offered-QPS axis + workload
    /// preset); every point then also runs the serving-mode simulator.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = Some(traffic);
        self
    }

    /// The base architecture of the sweep.
    pub fn base_arch(&self) -> ArchConfig {
        self.base.unwrap_or_else(ArchConfig::paper_default)
    }

    /// Number of grid points the spec expands to.
    pub fn point_count(&self) -> usize {
        let axis = |len: usize| len.max(1);
        self.models.len()
            * axis(self.strategies.len())
            * axis(self.search_modes.len())
            * axis(self.chip_counts.len())
            * axis(self.core_counts.len())
            * axis(self.local_memory_kib.len())
            * axis(self.flit_sizes.len())
            * axis(self.mg_sizes.len())
            * axis(self.frequencies_mhz.len())
            * axis(self.memory_ports.len())
            * axis(self.traffic.as_ref().map_or(0, |t| t.offered_qps.len()))
    }

    /// Resolves every axis of the sweep against the base architecture:
    /// the random-access view of the grid the adaptive exploration engine
    /// navigates (axis-index vectors instead of a materialized cartesian
    /// product).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] when the spec names no model or no
    /// strategy (the same contract as [`Self::expand`]).
    pub fn axes(&self) -> Result<SweepAxes, DseError> {
        if self.models.is_empty() {
            return Err(DseError::spec("the `models` axis must name at least one model"));
        }
        if self.strategies.is_empty() {
            return Err(DseError::spec("the `strategies` axis must name at least one strategy"));
        }
        if let Some(traffic) = &self.traffic {
            if traffic.offered_qps.is_empty() {
                return Err(DseError::spec(
                    "the `traffic.offered_qps` axis must name at least one rate",
                ));
            }
            if traffic.offered_qps.contains(&0) {
                return Err(DseError::spec("`traffic.offered_qps` rates must be positive"));
            }
        }
        let base = self.base_arch();
        Ok(SweepAxes {
            models: self.models.clone(),
            strategies: self.strategies.clone(),
            search_modes: if self.search_modes.is_empty() {
                vec![SearchMode::default()]
            } else {
                self.search_modes.clone()
            },
            chip_counts: effective_axis(&self.chip_counts, base.chip_count()),
            core_counts: effective_axis(&self.core_counts, base.chip().core_count),
            local_memory_kib: effective_axis(
                &self.local_memory_kib,
                base.core.local_memory.size_bytes / 1024,
            ),
            flit_sizes: effective_axis(&self.flit_sizes, base.chip().noc_flit_bytes),
            mg_sizes: effective_axis(&self.mg_sizes, base.core.cim_unit.macros_per_group),
            frequencies_mhz: effective_axis(&self.frequencies_mhz, base.chip().frequency_mhz),
            memory_ports: effective_axis(&self.memory_ports, base.chip().memory_port),
            offered_qps: match &self.traffic {
                Some(traffic) => traffic.offered_qps.clone(),
                None => vec![0],
            },
        })
    }

    /// Expands the cartesian grid into concrete points.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] when the spec names no model or no
    /// strategy (an empty grid is almost certainly a config mistake).
    pub fn expand(&self) -> Result<Vec<PointSpec>, DseError> {
        let axes = self.axes()?;
        Ok((0..axes.point_count()).map(|flat| axes.point(axes.indices_of(flat))).collect())
    }

    /// Serializes the spec to pretty JSON (the on-disk sweep file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SweepSpec serialization cannot fail")
    }

    /// Parses a spec from JSON.
    ///
    /// All axes and the `base`/`name`/`workers` fields may be omitted;
    /// omitted axes pin the corresponding parameter to the base value.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, DseError> {
        serde_json::from_str(text).map_err(|e| DseError::spec(e.to_string()))
    }
}

impl Default for SweepSpec {
    fn default() -> Self {
        Self::new()
    }
}

// Manual Deserialize so that every axis (and the optional fields) may be
// omitted from sweep files; the derive would make all fields mandatory.
impl Deserialize for SweepSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for SweepSpec"))?;
        fn opt<T: Deserialize>(
            map: &[(String, Content)],
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match map.iter().find(|(k, _)| k == name) {
                Some((_, Content::Null)) | None => Ok(None),
                Some((_, v)) => T::deserialize(v)
                    .map(Some)
                    .map_err(|e| serde::Error::new(format!("SweepSpec.{name}: {e}"))),
            }
        }
        Ok(SweepSpec {
            name: opt(map, "name")?,
            base: opt(map, "base")?,
            models: opt(map, "models")?.unwrap_or_default(),
            strategies: opt(map, "strategies")?.unwrap_or_default(),
            search_modes: opt(map, "search_modes")?.unwrap_or_default(),
            mg_sizes: opt(map, "mg_sizes")?.unwrap_or_default(),
            flit_sizes: opt(map, "flit_sizes")?.unwrap_or_default(),
            chip_counts: opt(map, "chip_counts")?.unwrap_or_default(),
            core_counts: opt(map, "core_counts")?.unwrap_or_default(),
            local_memory_kib: opt(map, "local_memory_kib")?.unwrap_or_default(),
            frequencies_mhz: opt(map, "frequencies_mhz")?.unwrap_or_default(),
            memory_ports: opt(map, "memory_ports")?.unwrap_or_default(),
            traffic: opt(map, "traffic")?,
            workers: opt(map, "workers")?,
        })
    }
}

fn effective_axis<T: Copy + Into<u64>>(values: &[T], base: T) -> Vec<u64> {
    if values.is_empty() {
        vec![base.into()]
    } else {
        values.iter().map(|&v| v.into()).collect()
    }
}

/// Number of independent axes of a sweep grid (the length of a
/// [`SweepAxes`] index vector), in expansion order: model, strategy,
/// search mode, chip count, core count, local memory, flit size, MG
/// size, frequency, memory port, offered QPS. The two timing-only axes
/// and the offered-QPS axis sit innermost so the points of one trace
/// group are adjacent in grid order (QPS never affects compilation or
/// even single-inference timing — only the serving workload).
pub const AXIS_COUNT: usize = 11;

/// The resolved axes of a sweep grid: every empty [`SweepSpec`] axis
/// pinned to its base-architecture value, addressable by `(axis,
/// value-index)` coordinates.
///
/// A grid point is an [`AXIS_COUNT`]-long index vector; `point` builds
/// the concrete [`PointSpec`] and `indices_of` maps a flat grid-order
/// index (the order [`SweepSpec::expand`] materializes — the last axis
/// varies fastest) back to coordinates. This is the representation the
/// exploration engine mutates and crosses over, so neighborhood moves
/// are "step one axis to an adjacent value" rather than string surgery
/// on labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepAxes {
    /// The model axis (never empty).
    pub models: Vec<ModelSpec>,
    /// The strategy axis (never empty).
    pub strategies: Vec<Strategy>,
    /// The search-mode axis (defaulted to `[Sequential]` when unset).
    pub search_modes: Vec<SearchMode>,
    /// The chip-count axis.
    pub chip_counts: Vec<u64>,
    /// The core-count axis.
    pub core_counts: Vec<u64>,
    /// The local-memory axis in KiB.
    pub local_memory_kib: Vec<u64>,
    /// The flit-size axis in bytes.
    pub flit_sizes: Vec<u64>,
    /// The macro-group-size axis.
    pub mg_sizes: Vec<u64>,
    /// The clock-frequency axis in MHz (timing-only).
    pub frequencies_mhz: Vec<u64>,
    /// The memory-port-placement axis (timing-only).
    pub memory_ports: Vec<u64>,
    /// The offered-QPS axis (`[0]` when the sweep has no traffic
    /// section — serving disabled).
    pub offered_qps: Vec<u64>,
}

impl SweepAxes {
    /// Axis lengths in expansion order.
    pub fn dims(&self) -> [usize; AXIS_COUNT] {
        [
            self.models.len(),
            self.strategies.len(),
            self.search_modes.len(),
            self.chip_counts.len(),
            self.core_counts.len(),
            self.local_memory_kib.len(),
            self.flit_sizes.len(),
            self.mg_sizes.len(),
            self.frequencies_mhz.len(),
            self.memory_ports.len(),
            self.offered_qps.len(),
        ]
    }

    /// Number of grid points (the product of the axis lengths).
    pub fn point_count(&self) -> usize {
        self.dims().iter().product()
    }

    /// The concrete design point at an index vector.
    ///
    /// # Panics
    ///
    /// Panics when any index is out of its axis' range.
    pub fn point(&self, indices: [usize; AXIS_COUNT]) -> PointSpec {
        PointSpec {
            model: self.models[indices[0]].clone(),
            strategy: self.strategies[indices[1]],
            search: self.search_modes[indices[2]],
            chip_count: self.chip_counts[indices[3]],
            core_count: self.core_counts[indices[4]],
            local_memory_kib: self.local_memory_kib[indices[5]],
            flit_bytes: self.flit_sizes[indices[6]],
            mg_size: self.mg_sizes[indices[7]],
            frequency_mhz: self.frequencies_mhz[indices[8]],
            memory_port: self.memory_ports[indices[9]],
            offered_qps: self.offered_qps[indices[10]],
        }
    }

    /// Decodes a flat grid-order index (0-based, `< point_count()`) into
    /// its index vector; the last axis varies fastest, matching
    /// [`SweepSpec::expand`]'s nesting order exactly.
    ///
    /// # Panics
    ///
    /// Panics when `flat >= point_count()`.
    pub fn indices_of(&self, flat: usize) -> [usize; AXIS_COUNT] {
        assert!(flat < self.point_count(), "flat index {flat} out of the grid");
        let dims = self.dims();
        let mut indices = [0; AXIS_COUNT];
        let mut remaining = flat;
        for axis in (0..AXIS_COUNT).rev() {
            indices[axis] = remaining % dims[axis];
            remaining /= dims[axis];
        }
        indices
    }

    /// Encodes an index vector back to its flat grid-order index (the
    /// inverse of [`Self::indices_of`]).
    pub fn flat_of(&self, indices: [usize; AXIS_COUNT]) -> usize {
        let dims = self.dims();
        let mut flat = 0;
        for axis in 0..AXIS_COUNT {
            debug_assert!(indices[axis] < dims[axis]);
            flat = flat * dims[axis] + indices[axis];
        }
        flat
    }
}

/// One fully resolved design point of a sweep grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PointSpec {
    /// The model evaluated at this point.
    pub model: ModelSpec,
    /// The compilation strategy.
    pub strategy: Strategy,
    /// The system-level search mode the point compiles under.
    pub search: SearchMode,
    /// Number of chips in the system.
    pub chip_count: u64,
    /// Per-chip core count.
    pub core_count: u64,
    /// Per-core local memory in KiB.
    pub local_memory_kib: u64,
    /// NoC flit size in bytes.
    pub flit_bytes: u64,
    /// Macro-group size (macros per MG).
    pub mg_size: u64,
    /// Clock frequency in MHz (timing-only).
    pub frequency_mhz: u64,
    /// Global-memory-port mesh placement (timing-only).
    pub memory_port: u64,
    /// Offered request rate in requests/second; `0` means the point runs
    /// no serving workload (the classic single-inference evaluation).
    pub offered_qps: u64,
}

// Manual Deserialize so journals written before the offered-QPS axis
// existed (no `offered_qps` key) keep resuming; the missing field reads
// as 0 = serving disabled, which is exactly what those runs evaluated.
impl Deserialize for PointSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for PointSpec"))?;
        fn field<T: Deserialize>(map: &[(String, Content)], name: &str) -> Result<T, serde::Error> {
            let v = map
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::new(format!("PointSpec: missing field {name}")))?;
            T::deserialize(v).map_err(|e| serde::Error::new(format!("PointSpec.{name}: {e}")))
        }
        Ok(PointSpec {
            model: field(map, "model")?,
            strategy: field(map, "strategy")?,
            search: field(map, "search")?,
            chip_count: field(map, "chip_count")?,
            core_count: field(map, "core_count")?,
            local_memory_kib: field(map, "local_memory_kib")?,
            flit_bytes: field(map, "flit_bytes")?,
            mg_size: field(map, "mg_size")?,
            frequency_mhz: field(map, "frequency_mhz")?,
            memory_port: field(map, "memory_port")?,
            offered_qps: match map.iter().find(|(k, _)| k == "offered_qps") {
                Some((_, Content::Null)) | None => 0,
                Some((_, v)) => u64::deserialize(v)
                    .map_err(|e| serde::Error::new(format!("PointSpec.offered_qps: {e}")))?,
            },
        })
    }
}

impl PointSpec {
    /// Builds the concrete architecture of this point from a base
    /// configuration.
    ///
    /// Axes whose value equals the base's are **not** re-applied, so a
    /// pinned (or matching) axis leaves the base untouched: a custom
    /// base with, say, a hand-picked non-squarest mesh or a non-KiB
    /// local-memory capacity is never silently normalized by the
    /// builder setters.
    pub fn arch(&self, base: &ArchConfig) -> ArchConfig {
        let mut arch = *base;
        if self.chip_count != u64::from(base.chip_count()) {
            arch = arch.with_chip_count(self.chip_count as u32);
        }
        if self.core_count != u64::from(base.chip().core_count) {
            arch = arch.with_core_count(self.core_count as u32);
        }
        if self.local_memory_kib != base.core.local_memory.size_bytes / 1024 {
            arch = arch.with_local_memory_kib(self.local_memory_kib);
        }
        if self.flit_bytes != u64::from(base.chip().noc_flit_bytes) {
            arch = arch.with_flit_bytes(self.flit_bytes as u32);
        }
        if self.mg_size != u64::from(base.core.cim_unit.macros_per_group) {
            arch = arch.with_macros_per_group(self.mg_size as u32);
        }
        if self.frequency_mhz != u64::from(base.chip().frequency_mhz) {
            arch = arch.with_frequency_mhz(self.frequency_mhz as u32);
        }
        if self.memory_port != u64::from(base.chip().memory_port) {
            arch = arch.with_memory_port(self.memory_port as u32);
        }
        arch
    }

    /// Compact human-readable label (used in progress lines). The search
    /// mode and the timing-only axes are only spelled out when they
    /// deviate from the paper default, so historical sweep logs keep
    /// their shape.
    pub fn label(&self) -> String {
        let search = match self.search {
            SearchMode::Sequential => String::new(),
            other => format!(" search={other}"),
        };
        let paper = ArchConfig::paper_default();
        let mut timing = String::new();
        if self.frequency_mhz != u64::from(paper.chip().frequency_mhz) {
            timing.push_str(&format!(" freq={}MHz", self.frequency_mhz));
        }
        if self.memory_port != u64::from(paper.chip().memory_port) {
            timing.push_str(&format!(" port={}", self.memory_port));
        }
        if self.offered_qps != 0 {
            timing.push_str(&format!(" qps={}", self.offered_qps));
        }
        format!(
            "{}@{} {}{search} chips={} cores={} lmem={}KiB flit={}B mg={}{timing}",
            self.model.name,
            self.model.resolution,
            self.strategy,
            self.chip_count,
            self.core_count,
            self.local_memory_kib,
            self.flit_bytes,
            self.mg_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec3() -> SweepSpec {
        SweepSpec::new()
            .named("unit")
            .with_model("mobilenetv2", 32)
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized])
            .with_mg_sizes(&[4, 8])
            .with_flit_sizes(&[8, 16])
            .with_core_counts(&[16, 64])
    }

    #[test]
    fn expansion_covers_the_cartesian_product_in_order() {
        let spec = spec3();
        let points = spec.expand().unwrap();
        assert_eq!(points.len(), spec.point_count());
        assert_eq!(points.len(), 2 * 2 * 2 * 2 * 2);
        // Innermost axis varies fastest.
        assert_eq!(points[0].mg_size, 4);
        assert_eq!(points[1].mg_size, 8);
        assert_eq!(points[0].flit_bytes, points[1].flit_bytes);
        // Empty axes pin to the base architecture's value.
        assert!(points.iter().all(|p| p.local_memory_kib == 512));
        // Outermost axis is the model.
        assert_eq!(points.first().unwrap().model.name, "mobilenetv2");
        assert_eq!(points.last().unwrap().model.name, "resnet18");
    }

    #[test]
    fn empty_model_or_strategy_axes_are_rejected() {
        assert!(SweepSpec::new().expand().is_err());
        assert!(SweepSpec::new().with_model("resnet18", 32).expand().is_err());
        assert!(SweepSpec::new().with_strategies(&[Strategy::DpOptimized]).expand().is_err());
        assert!(SweepSpec::new().axes().is_err());
    }

    #[test]
    fn axes_index_arithmetic_round_trips_the_grid() {
        let spec = spec3().with_chip_counts(&[1, 2]);
        let axes = spec.axes().unwrap();
        let points = spec.expand().unwrap();
        assert_eq!(axes.point_count(), points.len());
        assert_eq!(axes.point_count(), spec.point_count());
        for (flat, point) in points.iter().enumerate() {
            let indices = axes.indices_of(flat);
            assert_eq!(&axes.point(indices), point, "grid order matches expand at {flat}");
            assert_eq!(axes.flat_of(indices), flat);
        }
        // Pinned axes resolve to the base value.
        assert_eq!(axes.local_memory_kib, vec![512]);
        assert_eq!(axes.search_modes, vec![SearchMode::Sequential]);
    }

    #[test]
    fn json_round_trip_and_partial_files() {
        let spec = spec3();
        let text = spec.to_json();
        let back = SweepSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);

        // Sweeps are config files: omitted axes default.
        let partial = SweepSpec::from_json(
            "{\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}],\
              \"strategies\": [\"dp\"], \"mg_sizes\": [4, 16]}",
        )
        .unwrap();
        assert_eq!(partial.point_count(), 2);
        let points = partial.expand().unwrap();
        assert_eq!(points[0].flit_bytes, 8);
        assert_eq!(points[0].strategy, Strategy::DpOptimized);

        assert!(SweepSpec::from_json("{oops").is_err());
    }

    #[test]
    fn chip_axis_round_trips_and_expands_between_strategy_and_cores() {
        let spec = SweepSpec::new()
            .named("multichip")
            .with_model("vgg19", 32)
            .with_strategies(&[Strategy::DpOptimized])
            .with_chip_counts(&[1, 2, 4]);
        assert_eq!(spec.point_count(), 3);
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let points = spec.expand().unwrap();
        assert_eq!(points.iter().map(|p| p.chip_count).collect::<Vec<_>>(), vec![1, 2, 4]);
        // The chip axis varies slower than every per-chip axis …
        let spec = spec.with_mg_sizes(&[4, 8]);
        let points = spec.expand().unwrap();
        assert_eq!(
            points.iter().map(|p| (p.chip_count, p.mg_size)).collect::<Vec<_>>(),
            vec![(1, 4), (1, 8), (2, 4), (2, 8), (4, 4), (4, 8)]
        );
        // … and the point architecture scales out.
        let quad = points.last().unwrap().arch(&spec.base_arch());
        assert_eq!(quad.chip_count(), 4);
        assert_eq!(quad.total_cores(), 256);
        assert!(points.last().unwrap().label().contains("chips=4"));
    }

    #[test]
    fn search_axis_round_trips_and_expands_between_strategy_and_chips() {
        let spec = SweepSpec::new()
            .named("search")
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::DpOptimized])
            .with_search_modes(&[SearchMode::Sequential, SearchMode::Joint])
            .with_chip_counts(&[1, 2]);
        assert_eq!(spec.point_count(), 4);
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let points = spec.expand().unwrap();
        // The search axis varies slower than the chip axis …
        assert_eq!(
            points.iter().map(|p| (p.search, p.chip_count)).collect::<Vec<_>>(),
            vec![
                (SearchMode::Sequential, 1),
                (SearchMode::Sequential, 2),
                (SearchMode::Joint, 1),
                (SearchMode::Joint, 2),
            ]
        );
        // … and only non-default modes surface in the label.
        assert!(!points[0].label().contains("search="));
        assert!(points[2].label().contains("search=joint"));
        // Sweep files without the axis pin every point to Sequential.
        let legacy = SweepSpec::from_json(
            "{\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}], \"strategies\": [\"dp\"]}",
        )
        .unwrap();
        assert!(legacy.expand().unwrap().iter().all(|p| p.search == SearchMode::Sequential));
    }

    #[test]
    fn sweep_files_without_a_chip_axis_default_to_one_chip() {
        // The pre-existing example sweep file predates the chip axis; it
        // must keep parsing and pin every point to a single chip.
        let text = include_str!("../../../sweeps/example.json");
        let spec = SweepSpec::from_json(text).unwrap();
        assert!(spec.chip_counts.is_empty());
        let points = spec.expand().unwrap();
        assert!(!points.is_empty());
        assert!(points.iter().all(|p| p.chip_count == 1));
        assert!(points.iter().all(|p| p.arch(&spec.base_arch()).system.is_single_chip_default()));
    }

    #[test]
    fn pinned_axes_never_normalize_a_custom_base() {
        // A hand-picked non-squarest mesh (16 cores as 16x1) must survive
        // a sweep that does not touch the core-count axis.
        let mut base = ArchConfig::paper_default().with_core_count(16);
        base.system.chip.mesh = cimflow_arch::MeshDimensions::new(16, 1);
        assert!(base.validate().is_ok());
        let spec = SweepSpec::new()
            .with_base(base)
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8]);
        for point in spec.expand().unwrap() {
            let arch = point.arch(&spec.base_arch());
            assert_eq!(
                arch.chip().mesh,
                base.chip().mesh,
                "pinned core count keeps the custom mesh"
            );
            assert_eq!(arch.core.local_memory, base.core.local_memory);
        }
    }

    #[test]
    fn timing_axes_expand_innermost_and_apply_to_the_arch() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_frequencies_mhz(&[500, 1000])
            .with_memory_ports(&[0, 27]);
        assert_eq!(spec.point_count(), 4);
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        let points = spec.expand().unwrap();
        // The timing axes are innermost: the port varies fastest.
        assert_eq!(
            points.iter().map(|p| (p.frequency_mhz, p.memory_port)).collect::<Vec<_>>(),
            vec![(500, 0), (500, 27), (1000, 0), (1000, 27)]
        );
        let arch = points[1].arch(&spec.base_arch());
        assert_eq!(arch.chip().frequency_mhz, 500);
        assert_eq!(arch.chip().memory_port, 27);
        assert!(arch.validate().is_ok());
        // All four points share one compile fingerprint — they form one
        // trace group.
        let fingerprints: std::collections::HashSet<u64> =
            points.iter().map(|p| p.arch(&spec.base_arch()).compile_fingerprint()).collect();
        assert_eq!(fingerprints.len(), 1);
        // Labels mention only non-default timing values, keeping
        // historical log shapes.
        assert!(points[1].label().contains("freq=500MHz"));
        assert!(points[1].label().contains("port=27"));
        assert!(!points[2].label().contains("freq="));
        // Old sweep files (no timing axes) pin to the base values.
        let legacy = SweepSpec::from_json(
            "{\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}], \"strategies\": [\"dp\"]}",
        )
        .unwrap();
        let base = legacy.base_arch();
        assert!(legacy.expand().unwrap().iter().all(|p| {
            p.frequency_mhz == u64::from(base.chip().frequency_mhz)
                && p.memory_port == u64::from(base.chip().memory_port)
        }));
    }

    #[test]
    fn traffic_section_adds_an_innermost_qps_axis() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
            .with_traffic(TrafficSpec::new(&[100, 1000, 10_000]));
        assert_eq!(spec.point_count(), 6);
        let points = spec.expand().unwrap();
        // QPS varies fastest — all rates of one design share its trace.
        assert_eq!(
            points.iter().map(|p| (p.mg_size, p.offered_qps)).collect::<Vec<_>>(),
            vec![(4, 100), (4, 1000), (4, 10_000), (8, 100), (8, 1000), (8, 10_000)]
        );
        assert!(points[0].label().contains("qps=100"));
        // The rate never touches the architecture.
        assert_eq!(points[0].arch(&spec.base_arch()), points[2].arch(&spec.base_arch()));
        // Round trips through JSON, including the workload preset.
        let spec = SweepSpec::new()
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::DpOptimized])
            .with_traffic(
                TrafficSpec::new(&[500])
                    .with_workload(WorkloadSpec { requests: 64, ..WorkloadSpec::default() })
                    .colocated(),
            );
        let back = SweepSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
        // An empty QPS axis is a config mistake, and rate 0 is reserved
        // for "serving disabled".
        let empty = spec.clone().with_traffic(TrafficSpec::new(&[]));
        assert!(empty.axes().is_err());
        assert!(spec.with_traffic(TrafficSpec::new(&[0])).axes().is_err());
        // Sweep files without a traffic section disable serving.
        let legacy = SweepSpec::from_json(
            "{\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}], \"strategies\": [\"dp\"]}",
        )
        .unwrap();
        assert!(legacy.traffic.is_none());
        assert!(legacy.expand().unwrap().iter().all(|p| p.offered_qps == 0));
        // Old journal rows (no offered_qps key) still deserialize.
        let mut json = serde_json::to_string(&legacy.expand().unwrap()[0]).unwrap();
        json = json.replace(",\"offered_qps\":0", "");
        assert!(!json.contains("offered_qps"));
        let point: PointSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(point.offered_qps, 0);
    }

    #[test]
    fn point_arch_applies_every_axis() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4])
            .with_flit_sizes(&[16])
            .with_core_counts(&[16])
            .with_local_memory_kib(&[256]);
        let point = &spec.expand().unwrap()[0];
        let arch = point.arch(&spec.base_arch());
        assert_eq!(arch.core.cim_unit.macros_per_group, 4);
        assert_eq!(arch.chip().noc_flit_bytes, 16);
        assert_eq!(arch.chip().core_count, 16);
        assert_eq!(arch.core.local_memory.size_bytes, 256 * 1024);
        assert!(arch.validate().is_ok());
    }
}
