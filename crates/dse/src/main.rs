//! The `cimflow-dse` CLI: batch sweeps and the evaluation service.
//!
//! **Sweep mode** runs a JSON sweep specification end-to-end through the
//! engine and reports/exports the results:
//!
//! ```text
//! cargo run --release -p cimflow-dse -- sweep.json \
//!     [--workers N] [--sequential] [--search sequential|joint] \
//!     [--csv out.csv] [--json out.json] \
//!     [--cache cache.json] [--journal sweep.jsonl] [--quiet] \
//!     [--trace-out trace.json] [--metrics-out metrics.prom]
//! ```
//!
//! `--journal` appends each finished point to a JSONL journal and resumes
//! from it, so an interrupted sweep picks up where it stopped, and
//! `--search` overrides the spec's system-level search-mode axis.
//!
//! **Explore mode** runs the adaptive Pareto-guided exploration engine
//! over an `ExploreSpec` JSON file (a sweep *space* plus a budget, an
//! algorithm and a seed) instead of exhaustively expanding the grid:
//!
//! ```text
//! cargo run --release -p cimflow-dse -- explore space.json \
//!     [--budget N] [--algorithm successive_halving|evolutionary] [--seed N] \
//!     [--workers N] [--journal explore.jsonl] [--csv out.csv] [--json out.json] [--quiet]
//! ```
//!
//! The flags override the spec's `budget`/`algorithm`/`seed`; `--journal`
//! makes the exploration resumable (the same spec and seed replay their
//! trajectory with journaled points served for free).
//!
//! **Journal maintenance**: `cimflow-dse journal compact <path>` drops
//! superseded/duplicate entries and failure log lines from a sweep
//! journal, shrinking files that accumulated across resumed runs.
//!
//! **Serve mode** starts a long-lived [`EvalService`] speaking
//! newline-delimited JSON (see `cimflow_dse::serve`) on stdin/stdout, or
//! on a TCP loopback listener with `--tcp`:
//!
//! ```text
//! cargo run --release -p cimflow-dse -- serve \
//!     [--workers N] [--queue N] [--quota N] [--cache cache.json] [--tcp PORT]
//! ```
//!
//! `--queue` bounds the admission queue (excess submissions are rejected
//! with backpressure) and `--quota` caps each tenant's in-flight points.
//!
//! **Observability**: sweep, explore and serve all take
//! `--trace-out PATH` (write a Chrome `trace_event` JSON timeline of the
//! run, loadable in Perfetto or `chrome://tracing`) and
//! `--metrics-out PATH` (write the final metrics in Prometheus text
//! exposition format). A long-lived server additionally answers the
//! `metrics` wire request with a live snapshot at any point.
//!
//! Exit codes: 0 when at least one point evaluated successfully (sweep
//! mode) or the service shut down cleanly (serve mode), 1 for a
//! usage/spec error, 2 when every point failed.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use cimflow_compiler::SearchMode;
use cimflow_dse::analysis::Objective;
use cimflow_dse::serve::{serve_stdio, TcpServer};
use cimflow_dse::{
    analysis, explore, explore_journaled, export, DseError, DseOutcome, EvalCache, EvalService,
    Executor, ExploreAlgorithm, ExploreSpec, FeasibilityCaps, Fidelity, FidelityLadder, Progress,
    ServiceConfig, SweepJournal, SweepSpec,
};
use cimflow_obs::{
    HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot, Tracer,
    DEFAULT_TRACE_CAPACITY,
};

struct SweepArgs {
    spec_path: PathBuf,
    workers: Option<usize>,
    search: Option<SearchMode>,
    objective: Option<Objective>,
    csv: Option<PathBuf>,
    json: Option<PathBuf>,
    cache: Option<PathBuf>,
    journal: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    quiet: bool,
}

struct ServeArgs {
    workers: Option<usize>,
    queue: Option<usize>,
    quota: Option<usize>,
    cache: Option<PathBuf>,
    tcp: Option<u16>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    quiet: bool,
}

struct ExploreArgs {
    spec_path: PathBuf,
    workers: Option<usize>,
    budget: Option<u64>,
    algorithm: Option<ExploreAlgorithm>,
    seed: Option<u64>,
    objective: Option<Objective>,
    ladder: Option<FidelityLadder>,
    scout_share: Option<f64>,
    stall: Option<u32>,
    max_area: Option<f64>,
    max_power: Option<f64>,
    journal: Option<PathBuf>,
    csv: Option<PathBuf>,
    json: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
    quiet: bool,
}

enum Args {
    Sweep(SweepArgs),
    Serve(ServeArgs),
    Explore(ExploreArgs),
    JournalCompact { path: PathBuf },
}

const USAGE: &str = "usage: cimflow-dse <sweep.json> [--workers N] [--sequential] \
[--search sequential|joint] [--objective cycles|p99|area] [--csv PATH] [--json PATH] \
[--cache PATH] [--journal PATH] [--trace-out PATH] [--metrics-out PATH] [--quiet]
       cimflow-dse explore <space.json> [--budget N] [--algorithm successive_halving|evolutionary] \
[--seed N] [--objective cycles|p99|area] [--rungs R1,R2,...] [--scout-share X] [--stall N] \
[--max-area MM2] [--max-power W] [--workers N] [--journal PATH] [--csv PATH] [--json PATH] \
[--trace-out PATH] [--metrics-out PATH] [--quiet]
       cimflow-dse serve [--workers N] [--queue N] [--quota N] [--cache PATH] [--tcp PORT] \
[--trace-out PATH] [--metrics-out PATH] [--quiet]
       cimflow-dse journal compact <PATH>";

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value.parse::<T>().map_err(|_| format!("{flag} expects a number, got `{value}`"))
}

/// `Ok(None)` means `--help` was requested: print usage to stdout, exit 0.
fn parse_args(mut argv: std::env::Args) -> Result<Option<Args>, String> {
    argv.next(); // program name
    let take_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };

    let mut positionals: Vec<String> = Vec::new();
    let mut serve = false;
    let mut journal_cmd = false;
    let mut explore_cmd = false;
    let mut search = None;
    let mut workers = None;
    let mut csv = None;
    let mut json = None;
    let mut cache = None;
    let mut journal = None;
    let mut queue = None;
    let mut quota = None;
    let mut tcp = None;
    let mut budget = None;
    let mut algorithm = None;
    let mut seed = None;
    let mut objective = None;
    let mut ladder = None;
    let mut scout_share = None;
    let mut stall = None;
    let mut max_area = None;
    let mut max_power = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut quiet = false;
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workers" => {
                let value = take_value(&mut argv, "--workers")?;
                workers = Some(parse_number::<usize>("--workers", &value)?);
            }
            "--sequential" => workers = Some(1),
            "--search" => {
                let value = take_value(&mut argv, "--search")?;
                search = Some(SearchMode::from_name(&value).ok_or_else(|| {
                    format!("--search expects `sequential` or `joint`, got `{value}`")
                })?);
            }
            "--csv" => csv = Some(PathBuf::from(take_value(&mut argv, "--csv")?)),
            "--json" => json = Some(PathBuf::from(take_value(&mut argv, "--json")?)),
            "--cache" => cache = Some(PathBuf::from(take_value(&mut argv, "--cache")?)),
            "--journal" => journal = Some(PathBuf::from(take_value(&mut argv, "--journal")?)),
            "--queue" => {
                let value = take_value(&mut argv, "--queue")?;
                queue = Some(parse_number::<usize>("--queue", &value)?);
            }
            "--quota" => {
                let value = take_value(&mut argv, "--quota")?;
                quota = Some(parse_number::<usize>("--quota", &value)?);
            }
            "--tcp" => {
                let value = take_value(&mut argv, "--tcp")?;
                tcp = Some(parse_number::<u16>("--tcp", &value)?);
            }
            "--budget" => {
                let value = take_value(&mut argv, "--budget")?;
                budget = Some(parse_number::<u64>("--budget", &value)?);
            }
            "--algorithm" => {
                let value = take_value(&mut argv, "--algorithm")?;
                algorithm = Some(ExploreAlgorithm::from_name(&value).ok_or_else(|| {
                    format!(
                        "--algorithm expects `successive_halving` or `evolutionary`, got `{value}`"
                    )
                })?);
            }
            "--seed" => {
                let value = take_value(&mut argv, "--seed")?;
                seed = Some(parse_number::<u64>("--seed", &value)?);
            }
            "--objective" => {
                let value = take_value(&mut argv, "--objective")?;
                objective = Some(value.parse::<Objective>()?);
            }
            "--rungs" => {
                let value = take_value(&mut argv, "--rungs")?;
                let rungs = value
                    .split(',')
                    .map(str::trim)
                    .filter(|name| !name.is_empty())
                    .map(|name| {
                        Fidelity::from_name(name).ok_or_else(|| {
                            format!(
                                "--rungs expects names like `analytical`, `coarse32`, `replay`, \
                                 got `{name}`"
                            )
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                ladder = Some(FidelityLadder::new(rungs).map_err(|e| e.to_string())?);
            }
            "--scout-share" => {
                let value = take_value(&mut argv, "--scout-share")?;
                scout_share = Some(parse_number::<f64>("--scout-share", &value)?);
            }
            "--stall" => {
                let value = take_value(&mut argv, "--stall")?;
                stall = Some(parse_number::<u32>("--stall", &value)?);
            }
            "--max-area" => {
                let value = take_value(&mut argv, "--max-area")?;
                max_area = Some(parse_number::<f64>("--max-area", &value)?);
            }
            "--max-power" => {
                let value = take_value(&mut argv, "--max-power")?;
                max_power = Some(parse_number::<f64>("--max-power", &value)?);
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(take_value(&mut argv, "--trace-out")?));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(take_value(&mut argv, "--metrics-out")?));
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            mode @ ("serve" | "journal" | "explore")
                if positionals.is_empty() && !serve && !journal_cmd && !explore_cmd =>
            {
                match mode {
                    "serve" => serve = true,
                    "journal" => journal_cmd = true,
                    _ => explore_cmd = true,
                }
            }
            other if !serve => positionals.push(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    if journal_cmd {
        for (set, flag) in [
            (workers.is_some(), "--workers/--sequential"),
            (search.is_some(), "--search"),
            (csv.is_some(), "--csv"),
            (json.is_some(), "--json"),
            (cache.is_some(), "--cache"),
            (journal.is_some(), "--journal"),
            (queue.is_some(), "--queue"),
            (quota.is_some(), "--quota"),
            (tcp.is_some(), "--tcp"),
            (budget.is_some(), "--budget"),
            (algorithm.is_some(), "--algorithm"),
            (seed.is_some(), "--seed"),
            (objective.is_some(), "--objective"),
            (ladder.is_some(), "--rungs"),
            (scout_share.is_some(), "--scout-share"),
            (stall.is_some(), "--stall"),
            (max_area.is_some(), "--max-area"),
            (max_power.is_some(), "--max-power"),
            (trace_out.is_some(), "--trace-out"),
            (metrics_out.is_some(), "--metrics-out"),
            (quiet, "--quiet"),
        ] {
            if set {
                return Err(format!("{flag} does not apply to journal mode\n{USAGE}"));
            }
        }
        match positionals.as_slice() {
            [action, path] if action == "compact" => {
                return Ok(Some(Args::JournalCompact { path: PathBuf::from(path) }));
            }
            _ => return Err(format!("usage: cimflow-dse journal compact <PATH>\n{USAGE}")),
        }
    }
    if explore_cmd {
        for (set, flag) in [
            (search.is_some(), "--search"),
            (cache.is_some(), "--cache"),
            (queue.is_some(), "--queue"),
            (quota.is_some(), "--quota"),
            (tcp.is_some(), "--tcp"),
        ] {
            if set {
                return Err(format!("{flag} does not apply to explore mode\n{USAGE}"));
            }
        }
        if positionals.len() > 1 {
            return Err(format!("unexpected argument `{}`\n{USAGE}", positionals[1]));
        }
        let spec_path = positionals.pop().map(PathBuf::from).ok_or_else(|| USAGE.to_owned())?;
        return Ok(Some(Args::Explore(ExploreArgs {
            spec_path,
            workers,
            budget,
            algorithm,
            seed,
            objective,
            ladder,
            scout_share,
            stall,
            max_area,
            max_power,
            journal,
            csv,
            json,
            trace_out,
            metrics_out,
            quiet,
        })));
    }
    if serve {
        for (set, flag) in [
            (csv.is_some(), "--csv"),
            (json.is_some(), "--json"),
            (journal.is_some(), "--journal"),
            (search.is_some(), "--search"),
            (budget.is_some(), "--budget"),
            (algorithm.is_some(), "--algorithm"),
            (seed.is_some(), "--seed"),
            (objective.is_some(), "--objective"),
            (ladder.is_some(), "--rungs"),
            (scout_share.is_some(), "--scout-share"),
            (stall.is_some(), "--stall"),
            (max_area.is_some(), "--max-area"),
            (max_power.is_some(), "--max-power"),
        ] {
            if set {
                return Err(format!("{flag} does not apply to serve mode\n{USAGE}"));
            }
        }
        return Ok(Some(Args::Serve(ServeArgs {
            workers,
            queue,
            quota,
            cache,
            tcp,
            trace_out,
            metrics_out,
            quiet,
        })));
    }
    for (set, flag) in [
        (queue.is_some(), "--queue"),
        (quota.is_some(), "--quota"),
        (tcp.is_some(), "--tcp"),
        (budget.is_some(), "--budget"),
        (algorithm.is_some(), "--algorithm"),
        (seed.is_some(), "--seed"),
        (ladder.is_some(), "--rungs"),
        (scout_share.is_some(), "--scout-share"),
        (stall.is_some(), "--stall"),
        (max_area.is_some(), "--max-area"),
        (max_power.is_some(), "--max-power"),
    ] {
        if set {
            return Err(format!("{flag} does not apply to sweep mode\n{USAGE}"));
        }
    }
    if positionals.len() > 1 {
        return Err(format!("unexpected argument `{}`\n{USAGE}", positionals[1]));
    }
    let spec_path = positionals.pop().map(PathBuf::from).ok_or_else(|| USAGE.to_owned())?;
    Ok(Some(Args::Sweep(SweepArgs {
        spec_path,
        workers,
        search,
        objective,
        csv,
        json,
        cache,
        journal,
        trace_out,
        metrics_out,
        quiet,
    })))
}

/// Console reporting with a single `--quiet` policy across subcommands:
/// `note` lines (banners, per-point progress, trajectories, frontier
/// tables) are silenced by `--quiet`, while `machine` lines (one-line
/// summaries, failure lists, export paths) always print so scripts and
/// CI can grep them. Serve mode reports on stderr, keeping stdout clean
/// for the wire protocol.
struct Reporter {
    quiet: bool,
    to_stderr: bool,
}

impl Reporter {
    fn stdout(quiet: bool) -> Self {
        Reporter { quiet, to_stderr: false }
    }

    fn stderr(quiet: bool) -> Self {
        Reporter { quiet, to_stderr: true }
    }

    /// Always printed: summaries and paths that scripts grep for.
    fn machine(&self, line: &str) {
        if self.to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    /// Human narration; silenced by `--quiet`.
    fn note(&self, line: &str) {
        if !self.quiet {
            self.machine(line);
        }
    }

    /// One line per finished sweep point.
    fn point(&self, p: &Progress) {
        if self.quiet {
            return;
        }
        let status = match (p.ok, p.cached) {
            (true, true) => "hit ",
            (true, false) => "ok  ",
            (false, _) => "FAIL",
        };
        self.machine(&format!("[{:>4}/{}] {status} {}", p.completed, p.total, p.label));
    }

    /// End-of-run latency digest from the metrics registry, merged
    /// across tenant/priority label sets.
    fn latency_summary(&self, snapshot: &MetricsSnapshot) {
        if self.quiet {
            return;
        }
        let mut queue: Option<HistogramSnapshot> = None;
        let mut latency: Option<HistogramSnapshot> = None;
        for entry in &snapshot.entries {
            if let MetricValue::Histogram(h) = &entry.value {
                let acc = match entry.name.as_str() {
                    "service.queue_wait_us" => &mut queue,
                    "service.eval_latency_us" => &mut latency,
                    _ => continue,
                };
                match acc {
                    Some(acc) => acc.merge(h),
                    None => *acc = Some(h.clone()),
                }
            }
        }
        if let Some(latency) = latency.filter(|h| h.count > 0) {
            let queue_text = queue.filter(|h| h.count > 0).map_or_else(String::new, |q| {
                format!("; queue wait p50 {}us p99 {}us", q.quantile(0.5), q.quantile(0.99))
            });
            self.machine(&format!(
                "eval latency p50 {}us p90 {}us p99 {}us{queue_text}",
                latency.quantile(0.5),
                latency.quantile(0.9),
                latency.quantile(0.99)
            ));
        }
    }
}

/// Observability wiring shared by the subcommands: a metrics registry
/// (always attached — the instruments are cheap atomics and feed the
/// end-of-run summary) plus a tracer allocated only when `--trace-out`
/// asks for a timeline.
struct ObsSink {
    registry: MetricsRegistry,
    tracer: Option<Tracer>,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl ObsSink {
    fn new(trace_out: &Option<PathBuf>, metrics_out: &Option<PathBuf>) -> Self {
        ObsSink {
            registry: MetricsRegistry::new(),
            tracer: trace_out.as_ref().map(|_| Tracer::new(DEFAULT_TRACE_CAPACITY)),
            trace_out: trace_out.clone(),
            metrics_out: metrics_out.clone(),
        }
    }

    /// Writes the Chrome trace and Prometheus exposition files, if
    /// requested. `exposition` is passed in so serve/explore can use the
    /// service's own rendering (which mirrors cache gauges) instead of
    /// the raw registry's.
    fn write(&self, reporter: &Reporter, exposition: &str) -> Result<(), DseError> {
        if let (Some(path), Some(tracer)) = (&self.trace_out, &self.tracer) {
            std::fs::write(path, tracer.to_chrome_json())
                .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
            reporter.machine(&format!("wrote trace -> {}", path.display()));
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, exposition)
                .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
            reporter.machine(&format!("wrote metrics -> {}", path.display()));
        }
        Ok(())
    }
}

fn run_journal_compact(path: &std::path::Path) -> Result<ExitCode, DseError> {
    let stats = SweepJournal::compact(path)?;
    println!(
        "compacted {}: kept {} resumable point(s), dropped {} superseded and {} failure line(s)",
        path.display(),
        stats.kept,
        stats.superseded,
        stats.failures
    );
    Ok(ExitCode::SUCCESS)
}

fn run_sweep(args: &SweepArgs) -> Result<ExitCode, DseError> {
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| DseError::io(format!("cannot read {}: {e}", args.spec_path.display())))?;
    let mut spec = SweepSpec::from_json(&text)?;
    if let Some(search) = args.search {
        spec.search_modes = vec![search];
    }
    let name = spec.name.clone().unwrap_or_else(|| args.spec_path.display().to_string());

    let cache = match &args.cache {
        Some(path) => EvalCache::load(path)?,
        None => EvalCache::new(),
    };
    let obs = ObsSink::new(&args.trace_out, &args.metrics_out);
    let mut executor = match args.workers.or(spec.workers) {
        Some(workers) => Executor::with_workers(workers),
        None => Executor::new(),
    }
    .with_metrics(obs.registry.clone());
    if let Some(tracer) = &obs.tracer {
        executor = executor.with_tracer(tracer.clone());
    }

    let reporter = Reporter::stdout(args.quiet);
    reporter.note(&format!(
        "sweep `{name}`: {} points on {} worker(s), {} cached evaluation(s) loaded",
        spec.point_count(),
        executor.workers(),
        cache.len()
    ));

    let started = Instant::now();
    let outcomes = match &args.journal {
        Some(path) => {
            executor.run_spec_journaled_with_progress(&spec, &cache, path, |p| reporter.point(p))?
        }
        None => executor.run_spec_with_progress(&spec, &cache, |p| reporter.point(p))?,
    };
    let elapsed = started.elapsed();

    let succeeded = outcomes.iter().filter(|o| o.result.is_ok()).count();
    let failed = outcomes.len() - succeeded;
    let replayed = outcomes
        .iter()
        .filter(|o| o.result.as_ref().is_ok_and(|e| e.eval_path.is_replayed()))
        .count();
    let stats = cache.stats();
    reporter.machine(&format!(
        "\n{} points in {:.2?}: {succeeded} ok, {failed} failed, {replayed} replayed; cache {} hits / {} misses ({:.0}% hit)",
        outcomes.len(),
        elapsed,
        stats.hits,
        stats.misses,
        stats.hit_ratio() * 100.0
    ));
    reporter.latency_summary(&obs.registry.snapshot());
    if let Some(path) = &args.journal {
        reporter.machine(&format!("journal -> {}", path.display()));
    }

    if failed > 0 {
        reporter.machine("\nfailed points:");
        for outcome in outcomes.iter().filter(|o| o.result.is_err()) {
            if let Err(e) = &outcome.result {
                reporter.machine(&format!("  {} -> {e}", outcome.point.label()));
            }
        }
    }

    report_outcomes(&outcomes, &reporter, args.objective.unwrap_or_default());

    if let Some(path) = &args.csv {
        std::fs::write(path, export::to_csv(&outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        reporter.machine(&format!("\nwrote CSV -> {}", path.display()));
    }
    if let Some(path) = &args.json {
        std::fs::write(path, export::to_json(&outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        reporter.machine(&format!("wrote JSON -> {}", path.display()));
    }
    if let Some(path) = &args.cache {
        cache.save(path)?;
        reporter.machine(&format!("saved cache ({} entries) -> {}", cache.len(), path.display()));
    }

    // The executor's per-run services are gone by now, so mirror the
    // cache gauges here the way a live service does at snapshot time.
    obs.registry.gauge("cache.hits").set(stats.hits as i64);
    obs.registry.gauge("cache.misses").set(stats.misses as i64);
    obs.registry.gauge("cache.coalesced").set(stats.coalesced as i64);
    obs.registry.gauge("cache.entries").set(cache.len() as i64);
    obs.write(&reporter, &obs.registry.snapshot().render_prometheus())?;

    Ok(if succeeded > 0 { ExitCode::SUCCESS } else { ExitCode::from(2) })
}

fn report_outcomes(outcomes: &[DseOutcome], reporter: &Reporter, objective: Objective) {
    let frontiers = analysis::pareto_frontier_by_model_with(outcomes, objective);
    let frontier_points: usize = frontiers.values().map(Vec::len).sum();
    let axes = match objective {
        Objective::Cycles => "(cycles, energy)",
        Objective::P99Latency => "(p99 latency, serving energy)",
        Objective::Area => "(cycles, area)",
    };
    reporter.note(&format!("\nPareto frontier over {axes}, per model: {frontier_points} point(s)"));
    for (model, frontier) in &frontiers {
        reporter.note(&format!("  {model}:"));
        for &index in frontier {
            let outcome = &outcomes[index];
            let Some(evaluation) = outcome.evaluation() else { continue };
            match (objective, &evaluation.serving) {
                (Objective::P99Latency, Some(serving)) => reporter.note(&format!(
                    "    {:<52} p99 {:>10.1} us {:>10.3} mJ {:>8.1} goodput qps",
                    outcome.point.label(),
                    serving.p99_latency_us,
                    serving.energy_mj,
                    serving.goodput_qps
                )),
                (Objective::Area, _) => reporter.note(&format!(
                    "    {:<52} {:>12} cycles {:>10.1} mm2 {:>8.3} TOPS",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles,
                    analysis::area_mm2(&evaluation.arch),
                    evaluation.simulation.throughput_tops()
                )),
                _ => reporter.note(&format!(
                    "    {:<52} {:>12} cycles {:>10.3} mJ {:>8.3} TOPS",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles,
                    evaluation.simulation.energy_mj(),
                    evaluation.simulation.throughput_tops()
                )),
            }
        }
    }

    let best = analysis::best_per_model(outcomes);
    if !best.is_empty() {
        reporter.note("\nfastest configuration per model:");
        for (model, index) in &best {
            let outcome = &outcomes[*index];
            if let Some(evaluation) = outcome.evaluation() {
                reporter.note(&format!(
                    "  {model:<16} {} ({} cycles)",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles
                ));
            }
        }
    }
}

fn run_explore(args: &ExploreArgs) -> Result<ExitCode, DseError> {
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| DseError::io(format!("cannot read {}: {e}", args.spec_path.display())))?;
    let mut spec = ExploreSpec::from_json(&text)?;
    if let Some(budget) = args.budget {
        spec = spec.with_budget(budget);
    }
    if let Some(algorithm) = args.algorithm {
        spec = spec.with_algorithm(algorithm);
    }
    if let Some(seed) = args.seed {
        spec = spec.with_seed(seed);
    }
    if let Some(objective) = args.objective {
        spec = spec.with_objective(objective);
    }
    if let Some(ladder) = &args.ladder {
        spec = spec.with_ladder(ladder.clone());
    }
    if args.scout_share.is_some() {
        spec = spec.with_scout_share(args.scout_share);
    }
    if args.stall.is_some() {
        spec = spec.with_stall_generations(args.stall);
    }
    if args.max_area.is_some() || args.max_power.is_some() {
        let caps = FeasibilityCaps {
            max_area_mm2: args.max_area.or(spec.caps.max_area_mm2),
            max_power_w: args.max_power.or(spec.caps.max_power_w),
        };
        spec = spec.with_caps(caps);
    }
    let name = spec.space.name.clone().unwrap_or_else(|| args.spec_path.display().to_string());

    let workers = args
        .workers
        .or(spec.space.workers)
        .unwrap_or_else(|| std::thread::available_parallelism().map(usize::from).unwrap_or(1));
    let obs = ObsSink::new(&args.trace_out, &args.metrics_out);
    let mut config = ServiceConfig::new().with_workers(workers).with_metrics(obs.registry.clone());
    if let Some(tracer) = &obs.tracer {
        config = config.with_tracer(tracer.clone());
    }
    let service = EvalService::new(config);
    let reporter = Reporter::stdout(args.quiet);
    reporter.note(&format!(
        "explore `{name}`: {} algorithm, budget {} of a {}-point space, seed {}, {} worker(s)",
        spec.algorithm,
        spec.budget,
        spec.space.point_count(),
        spec.seed,
        service.workers()
    ));

    let started = Instant::now();
    let report = match &args.journal {
        Some(path) => {
            let journal = Arc::new(SweepJournal::open(path)?);
            explore_journaled(&spec, &service, &journal)?
        }
        None => explore(&spec, &service)?,
    };
    let elapsed = started.elapsed();

    let succeeded = report.outcomes.iter().filter(|o| o.result.is_ok()).count();
    let resumed = report.outcomes.iter().filter(|o| o.cached).count();
    let replayed = report
        .outcomes
        .iter()
        .filter(|o| o.result.as_ref().is_ok_and(|e| e.eval_path.is_replayed()))
        .count();
    reporter.machine(&format!(
        "\nused {} of {} budget in {elapsed:.2?}: {} full-fidelity point(s) ({succeeded} ok, \
         {resumed} cached/resumed, {replayed} replayed / {interpreted} interpreted), {} coarse, \
         {:.1}% of the exhaustive grid evaluated",
        report.budget_used,
        report.budget,
        report.evaluated,
        report.coarse_evaluated,
        100.0 * report.budget_used as f64 / report.space_points.max(1) as f64,
        interpreted = succeeded - replayed,
    ));
    let split: Vec<String> =
        report.rung_evaluated.iter().map(|(rung, count)| format!("{rung}={count}")).collect();
    reporter.machine(&format!(
        "rung split: {} | scout share {:.2}",
        if split.is_empty() { "none".to_owned() } else { split.join(" ") },
        report.scout_share,
    ));
    if !report.rank_fidelity.is_empty() {
        let taus: Vec<String> =
            report.rank_fidelity.iter().map(|(key, tau)| format!("{key}={tau:.3}")).collect();
        reporter.machine(&format!("rank fidelity: {}", taus.join(" ")));
    }
    if report.stalled {
        reporter.machine("stopped early: hypervolume stalled");
    }
    reporter.latency_summary(&service.metrics_snapshot());
    reporter.note("\ngeneration trajectory:");
    for generation in &report.generations {
        reporter.note(&format!(
            "  [{:>3}] {:<10} +{:<3} point(s) ({} coarse) -> frontier {}",
            generation.index,
            generation.phase,
            generation.submitted,
            generation.coarse,
            generation.frontier_points
        ));
    }
    if let Some(path) = &args.journal {
        reporter.machine(&format!("journal -> {}", path.display()));
    }

    report_outcomes(&report.outcomes, &reporter, spec.objective);

    if let Some(path) = &args.csv {
        std::fs::write(path, export::to_csv(&report.outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        reporter.machine(&format!("\nwrote CSV -> {}", path.display()));
    }
    if let Some(path) = &args.json {
        std::fs::write(path, export::to_json(&report.outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        reporter.machine(&format!("wrote JSON -> {}", path.display()));
    }

    obs.write(&reporter, &service.render_metrics())?;

    Ok(if succeeded > 0 { ExitCode::SUCCESS } else { ExitCode::from(2) })
}

fn run_serve(args: &ServeArgs) -> Result<ExitCode, DseError> {
    let cache = match &args.cache {
        Some(path) => EvalCache::load(path)?,
        None => EvalCache::new(),
    };
    let obs = ObsSink::new(&args.trace_out, &args.metrics_out);
    let mut config = ServiceConfig::new().with_metrics(obs.registry.clone());
    if let Some(tracer) = &obs.tracer {
        config = config.with_tracer(tracer.clone());
    }
    if let Some(workers) = args.workers {
        config = config.with_workers(workers);
    }
    if let Some(queue) = args.queue {
        config = config.with_queue_capacity(queue);
    }
    if let Some(quota) = args.quota {
        config = config.with_tenant_quota(quota);
    }
    let service = Arc::new(EvalService::with_cache(config, cache.clone()));
    // stdout carries the wire protocol, so the reporter goes to stderr.
    let reporter = Reporter::stderr(args.quiet);
    reporter.note(&format!(
        "cimflow-dse serve: {} worker(s), queue {}, per-tenant quota {}, {} cached evaluation(s)",
        service.workers(),
        args.queue.map_or_else(|| "unbounded".to_owned(), |q| q.to_string()),
        args.quota.map_or_else(|| "off".to_owned(), |q| q.to_string()),
        cache.len()
    ));

    match args.tcp {
        Some(port) => {
            let server = TcpServer::spawn(Arc::clone(&service), port)
                .map_err(|e| DseError::io(format!("cannot bind 127.0.0.1:{port}: {e}")))?;
            // Machine-readable so scripts/tests can discover an
            // ephemeral port (--tcp 0).
            println!("listening {}", server.addr());
            server.wait_for_shutdown();
        }
        None => {
            serve_stdio(&service)
                .map_err(|e| DseError::io(format!("stdio transport failed: {e}")))?;
        }
    }

    let stats = service.stats();
    reporter.machine(&format!(
        "cimflow-dse serve: {} submitted, {} completed, {} cancelled, {} rejected; cache {} hits / {} misses",
        stats.submitted,
        stats.completed,
        stats.cancelled,
        stats.rejected,
        cache.stats().hits,
        cache.stats().misses
    ));
    reporter.latency_summary(&service.metrics_snapshot());
    if let Some(path) = &args.cache {
        cache.save(path)?;
        reporter.machine(&format!("saved cache ({} entries) -> {}", cache.len(), path.display()));
    }
    obs.write(&reporter, &service.render_metrics())?;
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match &args {
        Args::Sweep(sweep) => run_sweep(sweep),
        Args::Serve(serve) => run_serve(serve),
        Args::Explore(explore) => run_explore(explore),
        Args::JournalCompact { path } => run_journal_compact(path),
    };
    match outcome {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cimflow-dse: {e}");
            ExitCode::FAILURE
        }
    }
}
