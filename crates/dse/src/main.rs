//! The `cimflow-dse` CLI: runs a JSON sweep specification end-to-end
//! through the parallel executor and reports/export the results.
//!
//! ```text
//! cargo run --release -p cimflow-dse -- sweep.json \
//!     [--workers N] [--sequential] [--csv out.csv] [--json out.json] \
//!     [--cache cache.json] [--quiet]
//! ```
//!
//! Exit codes: 0 when at least one point evaluated successfully, 1 for a
//! usage/spec error, 2 when every point failed.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use cimflow_dse::{analysis, export, DseError, EvalCache, Executor, Progress, SweepSpec};

struct Args {
    spec_path: PathBuf,
    workers: Option<usize>,
    csv: Option<PathBuf>,
    json: Option<PathBuf>,
    cache: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "usage: cimflow-dse <sweep.json> [--workers N] [--sequential] \
[--csv PATH] [--json PATH] [--cache PATH] [--quiet]";

/// `Ok(None)` means `--help` was requested: print usage to stdout, exit 0.
fn parse_args(mut argv: std::env::Args) -> Result<Option<Args>, String> {
    argv.next(); // program name
    let mut spec_path = None;
    let mut workers = None;
    let mut csv = None;
    let mut json = None;
    let mut cache = None;
    let mut quiet = false;
    let take_value = |argv: &mut std::env::Args, flag: &str| {
        argv.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
    };
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--workers" => {
                let value = take_value(&mut argv, "--workers")?;
                workers = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| format!("--workers expects a number, got `{value}`"))?,
                );
            }
            "--sequential" => workers = Some(1),
            "--csv" => csv = Some(PathBuf::from(take_value(&mut argv, "--csv")?)),
            "--json" => json = Some(PathBuf::from(take_value(&mut argv, "--json")?)),
            "--cache" => cache = Some(PathBuf::from(take_value(&mut argv, "--cache")?)),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Ok(None),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other if spec_path.is_none() => spec_path = Some(PathBuf::from(other)),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let spec_path = spec_path.ok_or_else(|| USAGE.to_owned())?;
    Ok(Some(Args { spec_path, workers, csv, json, cache, quiet }))
}

fn run(args: &Args) -> Result<ExitCode, DseError> {
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| DseError::io(format!("cannot read {}: {e}", args.spec_path.display())))?;
    let spec = SweepSpec::from_json(&text)?;
    let name = spec.name.clone().unwrap_or_else(|| args.spec_path.display().to_string());

    let cache = match &args.cache {
        Some(path) => EvalCache::load(path)?,
        None => EvalCache::new(),
    };
    let executor = match args.workers.or(spec.workers) {
        Some(workers) => Executor::with_workers(workers),
        None => Executor::new(),
    };

    println!(
        "sweep `{name}`: {} points on {} worker(s), {} cached evaluation(s) loaded",
        spec.point_count(),
        executor.workers(),
        cache.len()
    );

    let quiet = args.quiet;
    let started = Instant::now();
    let outcomes = executor.run_spec_with_progress(&spec, &cache, |p: &Progress| {
        if !quiet {
            let status = match (p.ok, p.cached) {
                (true, true) => "hit ",
                (true, false) => "ok  ",
                (false, _) => "FAIL",
            };
            println!("[{:>4}/{}] {status} {}", p.completed, p.total, p.label);
        }
    })?;
    let elapsed = started.elapsed();

    let succeeded = outcomes.iter().filter(|o| o.result.is_ok()).count();
    let failed = outcomes.len() - succeeded;
    let stats = cache.stats();
    println!(
        "\n{} points in {:.2?}: {succeeded} ok, {failed} failed; cache {} hits / {} misses ({:.0}% hit)",
        outcomes.len(),
        elapsed,
        stats.hits,
        stats.misses,
        stats.hit_ratio() * 100.0
    );

    if failed > 0 {
        println!("\nfailed points:");
        for outcome in outcomes.iter().filter(|o| o.result.is_err()) {
            if let Err(e) = &outcome.result {
                println!("  {} -> {e}", outcome.point.label());
            }
        }
    }

    let frontiers = analysis::pareto_frontier_by_model(&outcomes);
    let frontier_points: usize = frontiers.values().map(Vec::len).sum();
    println!("\nPareto frontier over (cycles, energy), per model: {frontier_points} point(s)");
    for (model, frontier) in &frontiers {
        println!("  {model}:");
        for &index in frontier {
            let outcome = &outcomes[index];
            if let Some(evaluation) = outcome.evaluation() {
                println!(
                    "    {:<52} {:>12} cycles {:>10.3} mJ {:>8.3} TOPS",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles,
                    evaluation.simulation.energy_mj(),
                    evaluation.simulation.throughput_tops()
                );
            }
        }
    }

    let best = analysis::best_per_model(&outcomes);
    if !best.is_empty() {
        println!("\nfastest configuration per model:");
        for (model, index) in &best {
            let outcome = &outcomes[*index];
            if let Some(evaluation) = outcome.evaluation() {
                println!(
                    "  {model:<16} {} ({} cycles)",
                    outcome.point.label(),
                    evaluation.simulation.total_cycles
                );
            }
        }
    }

    if let Some(path) = &args.csv {
        std::fs::write(path, export::to_csv(&outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        println!("\nwrote CSV -> {}", path.display());
    }
    if let Some(path) = &args.json {
        std::fs::write(path, export::to_json(&outcomes))
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote JSON -> {}", path.display());
    }
    if let Some(path) = &args.cache {
        cache.save(path)?;
        println!("saved cache ({} entries) -> {}", cache.len(), path.display());
    }

    Ok(if succeeded > 0 { ExitCode::SUCCESS } else { ExitCode::from(2) })
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args()) {
        Ok(Some(args)) => args,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cimflow-dse: {e}");
            ExitCode::FAILURE
        }
    }
}
