//! Sweep journaling: an append-only JSONL record of finished
//! [`DseOutcome`]s, so an interrupted sweep resumes from the journal
//! instead of re-running warm points.
//!
//! The journal complements the [`EvalCache`](crate::EvalCache): the cache
//! is a content-addressed store that must be explicitly saved, while the
//! journal is written incrementally — one line per finished point, flushed
//! as it lands — so even a killed process loses at most the point it was
//! evaluating. Successful entries are keyed by the same content-hashed
//! [`CacheKey`] the cache uses, so resumption is immune to grid reordering
//! and spec edits that keep a point's content identical. Failed points are
//! recorded for the log but always re-run on resume (their failure may
//! have been transient), matching the cache's errors-are-not-cached
//! policy.
//!
//! A journal file starts with a header line carrying the engine and
//! format versions; a mismatching or missing header makes
//! [`SweepJournal::open`] start a fresh journal (stale results must not
//! be resumed across engine changes). A malformed trailing line — the
//! signature of a crash mid-write — is dropped, and everything before it
//! is kept.
//!
//! # Size-based rotation
//!
//! A journal opened with [`SweepJournal::open_rotating`] rotates once the
//! active file grows past a configurable byte limit: the active file is
//! renamed to `<path>.1` (older segments shift to `<path>.2`, `<path>.3`,
//! … — higher numbers are older) and a fresh header-only active file
//! takes its place, so one multi-million-point run never accretes a
//! single unbounded file. Every `open` variant reads the rotated
//! segments back, oldest first, before the active file; each segment is
//! header-checked and crash-tail-tolerant exactly like the active file.
//! [`SweepJournal::compact`] merges the segments into one deduplicated
//! active file and deletes them.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::cache::{CACHE_ENGINE_VERSION, CACHE_FORMAT_VERSION};
use crate::{CacheKey, DseError, DseOutcome, Evaluation, PointSpec};

/// On-disk journal format version; bumped together with the cache format
/// (journal entries embed the same [`Evaluation`] schema). Version 2:
/// entries embed `Evaluation.eval_path` and the `PointSpec`
/// frequency/memory-port axes.
pub const JOURNAL_FORMAT_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
struct JournalHeader {
    journal: String,
    format: u32,
    /// Evaluation-semantics version (shared with the cache).
    cache_format: u32,
    engine: String,
}

impl JournalHeader {
    fn current() -> Self {
        JournalHeader {
            journal: "cimflow-dse-sweep".to_owned(),
            format: JOURNAL_FORMAT_VERSION,
            cache_format: CACHE_FORMAT_VERSION,
            engine: CACHE_ENGINE_VERSION.to_owned(),
        }
    }

    fn is_current(&self) -> bool {
        let current = Self::current();
        self.journal == current.journal
            && self.format == current.format
            && self.cache_format == current.cache_format
            && self.engine == current.engine
    }
}

/// One journaled point. `evaluation` is present for successes (resumable),
/// `error` for failures (log-only).
#[derive(Serialize, Deserialize)]
struct JournalEntry {
    key: Option<CacheKey>,
    point: PointSpec,
    evaluation: Option<Evaluation>,
    error: Option<String>,
    cached: bool,
}

/// What a compaction pass dropped and kept (see
/// [`SweepJournal::compact`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionStats {
    /// Resumable (successful, deduplicated) entries kept.
    pub kept: usize,
    /// Superseded or duplicate entries of an already-kept key dropped.
    pub superseded: usize,
    /// Failure/log-only lines dropped (they are always re-run on resume).
    pub failures: usize,
}

/// An append-only JSONL journal of finished sweep points.
///
/// Thread-safe: service workers append concurrently. Appends are
/// best-effort from the workers' perspective — an I/O failure must never
/// fail the sweep itself — but [`SweepJournal::record`] surfaces the
/// error for callers that want to know.
#[derive(Debug)]
pub struct SweepJournal {
    path: PathBuf,
    entries: Mutex<HashMap<CacheKey, Evaluation>>,
    file: Mutex<ActiveFile>,
    /// Rotate the active file past this many bytes; `None` never rotates.
    rotate_limit: Option<u64>,
}

/// The active journal file plus its running byte size (rotation is
/// decided on the tracked size, not a metadata syscall per append).
#[derive(Debug)]
struct ActiveFile {
    file: std::fs::File,
    bytes: u64,
}

/// The `n`-th rotated segment of a journal (`<path>.<n>`; 1 is the most
/// recently rotated, higher numbers are older).
fn segment_path(path: &Path, n: u32) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(format!(".{n}"));
    PathBuf::from(name)
}

/// The existing rotated segments of a journal with their numbers,
/// ascending `n` (newest rotated first). Enumerated from the directory
/// rather than probed sequentially, so a numbering gap — the signature
/// of a crash between rotation renames — hides at most the segment
/// that was mid-rename, never every segment behind the gap.
fn numbered_segments(path: &Path) -> Vec<(u32, PathBuf)> {
    let Some(file_name) = path.file_name().map(|name| name.to_string_lossy().into_owned()) else {
        return Vec::new();
    };
    let directory = match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(&directory) else { return Vec::new() };
    let prefix = format!("{file_name}.");
    let mut numbered: Vec<(u32, PathBuf)> = entries
        .flatten()
        .filter_map(|entry| {
            let name = entry.file_name().to_string_lossy().into_owned();
            let n: u32 = name.strip_prefix(&prefix)?.parse().ok()?;
            (n > 0).then(|| (n, entry.path()))
        })
        .collect();
    numbered.sort_by_key(|(n, _)| *n);
    numbered
}

/// The rotated segment paths of a journal, ascending `n`.
fn existing_segments(path: &Path) -> Vec<PathBuf> {
    numbered_segments(path).into_iter().map(|(_, segment)| segment).collect()
}

/// The parsed prefix of a journal file: each kept line with its key (for
/// successful entries) and evaluation.
struct ParsedJournal {
    lines: Vec<(String, Option<CacheKey>, Option<Evaluation>)>,
}

/// Reads the valid, header-checked prefix of a journal file. A stale or
/// missing header yields an empty parse; a malformed trailing line (crash
/// mid-write) drops the tail and keeps the prefix.
fn parse_journal(path: &Path) -> Result<ParsedJournal, DseError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(DseError::io(format!("cannot read {}: {e}", path.display()))),
    };
    let mut lines = text.lines();
    let header_ok = lines
        .next()
        .and_then(|line| serde_json::from_str::<JournalHeader>(line).ok())
        .is_some_and(|header| header.is_current());
    let mut parsed = Vec::new();
    if header_ok {
        for line in lines {
            match serde_json::from_str::<JournalEntry>(line) {
                Ok(entry) => {
                    let key = entry.key.filter(|_| entry.evaluation.is_some());
                    parsed.push((line.to_owned(), key, entry.evaluation));
                }
                // A malformed line is a crash-truncated tail: keep the
                // valid prefix, drop the rest.
                Err(_) => break,
            }
        }
    }
    Ok(ParsedJournal { lines: parsed })
}

/// Marks which lines survive deduplication: for every key only the
/// *last* successful entry is kept (earlier ones are superseded);
/// keyless/failure lines pass through untouched.
fn dedup_mask(lines: &[(String, Option<CacheKey>, Option<Evaluation>)]) -> Vec<bool> {
    let mut seen: std::collections::HashSet<CacheKey> = std::collections::HashSet::new();
    let mut keep = vec![true; lines.len()];
    for (index, (_, key, _)) in lines.iter().enumerate().rev() {
        if let Some(key) = key {
            if !seen.insert(*key) {
                keep[index] = false;
            }
        }
    }
    keep
}

/// Writes a normalized journal file (current header + `lines`), returning
/// the byte size written.
fn write_journal(path: &Path, lines: &[&str]) -> Result<u64, DseError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| DseError::io(format!("cannot create {}: {e}", parent.display())))?;
        }
    }
    let mut contents = serde_json::to_string(&JournalHeader::current())
        .expect("journal header serialization cannot fail");
    contents.push('\n');
    for line in lines {
        contents.push_str(line);
        contents.push('\n');
    }
    std::fs::write(path, &contents)
        .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))?;
    Ok(contents.len() as u64)
}

impl SweepJournal {
    /// Opens (or creates) a journal at `path`, loading every resumable
    /// point recorded by a previous run of the same engine/format.
    ///
    /// A journal written by a different engine or format version — or a
    /// file without a journal header — is discarded and restarted fresh.
    /// A malformed trailing line (crash mid-write) is dropped; the valid
    /// prefix is kept and the file is rewritten without the garbage tail.
    /// Superseded entries — an earlier success for a key a later line
    /// also records — are dropped during the rewrite, so a journal that
    /// accumulated duplicates across resumed runs shrinks back to one
    /// line per point.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] when the file cannot be read, rewritten
    /// or created.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, DseError> {
        Self::open_with_limit(path.into(), None)
    }

    /// [`Self::open`] with size-based rotation: once an append pushes the
    /// active file past `max_bytes`, it is rotated to `<path>.1` (older
    /// segments shift up) and a fresh active file is started. Rotation
    /// triggers on append only — an oversized pre-existing file rotates
    /// at its next recorded point, not at open.
    ///
    /// # Errors
    ///
    /// See [`Self::open`].
    pub fn open_rotating(path: impl Into<PathBuf>, max_bytes: u64) -> Result<Self, DseError> {
        Self::open_with_limit(path.into(), Some(max_bytes))
    }

    fn open_with_limit(path: PathBuf, rotate_limit: Option<u64>) -> Result<Self, DseError> {
        let mut entries = HashMap::new();
        // Rotated segments, oldest (highest number) first: a key
        // re-recorded later overwrites the older evaluation. Segments
        // are read-only archives — only the active file is normalized.
        for segment in existing_segments(&path).iter().rev() {
            for (_, key, evaluation) in parse_journal(segment)?.lines {
                if let (Some(key), Some(evaluation)) = (key, evaluation) {
                    entries.insert(key, evaluation);
                }
            }
        }
        let parsed = parse_journal(&path)?;
        let keep = dedup_mask(&parsed.lines);
        let mut kept = Vec::new();
        for ((line, key, evaluation), keep) in parsed.lines.iter().zip(&keep) {
            if !keep {
                continue;
            }
            if let (Some(key), Some(evaluation)) = (key, evaluation) {
                entries.insert(*key, evaluation.clone());
            }
            kept.push(line.as_str());
        }
        // Rewrite the normalized journal (fresh header, deduplicated
        // valid entries only) and keep the handle open for appending.
        let bytes = write_journal(&path, &kept)?;
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| DseError::io(format!("cannot open {}: {e}", path.display())))?;
        Ok(SweepJournal {
            path,
            entries: Mutex::new(entries),
            file: Mutex::new(ActiveFile { file, bytes }),
            rotate_limit,
        })
    }

    /// Compacts a journal in place without opening it for appending:
    /// drops superseded/duplicate entries (keeping each key's latest
    /// success) *and* failure/log-only lines, which resumption re-runs
    /// anyway. Rotated segments are folded into the rewritten active
    /// file and deleted, so a rotated journal compacts back to a single
    /// file. The `cimflow-dse journal compact` subcommand is a thin
    /// wrapper over this.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] when a file cannot be read, rewritten or
    /// removed.
    pub fn compact(path: impl Into<PathBuf>) -> Result<CompactionStats, DseError> {
        let path = path.into();
        let segments = existing_segments(&path);
        // Chronological order: oldest segment first, active file last,
        // so dedup keeps each key's latest success across the whole set.
        let mut lines = Vec::new();
        for segment in segments.iter().rev() {
            lines.extend(parse_journal(segment)?.lines);
        }
        lines.extend(parse_journal(&path)?.lines);
        let keep = dedup_mask(&lines);
        let mut stats = CompactionStats::default();
        let mut kept = Vec::new();
        for ((line, key, _), keep) in lines.iter().zip(&keep) {
            if key.is_none() {
                stats.failures += 1;
            } else if !keep {
                stats.superseded += 1;
            } else {
                stats.kept += 1;
                kept.push(line.as_str());
            }
        }
        write_journal(&path, &kept)?;
        for segment in segments {
            std::fs::remove_file(&segment)
                .map_err(|e| DseError::io(format!("cannot remove {}: {e}", segment.display())))?;
        }
        Ok(stats)
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of resumable (successful) points in the journal.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("journal poisoned").len()
    }

    /// Whether the journal holds no resumable points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The journaled evaluation of a point, if any.
    pub fn lookup(&self, key: &CacheKey) -> Option<Evaluation> {
        self.entries.lock().expect("journal poisoned").get(key).cloned()
    }

    /// Appends one finished outcome (flushed immediately). `key` is the
    /// point's content hash when its model resolved; keyless entries are
    /// log-only. On a rotating journal, an append that pushes the active
    /// file past the byte limit rotates it afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] when the append (or a rotation rename)
    /// fails. Workers treat this as best-effort.
    pub fn record(&self, key: Option<CacheKey>, outcome: &DseOutcome) -> Result<(), DseError> {
        let entry = JournalEntry {
            key,
            point: outcome.point.clone(),
            evaluation: outcome.result.as_ref().ok().cloned(),
            error: outcome.result.as_ref().err().map(ToString::to_string),
            cached: outcome.cached,
        };
        let mut line =
            serde_json::to_string(&entry).expect("journal entry serialization cannot fail");
        line.push('\n');
        {
            let mut active = self.file.lock().expect("journal poisoned");
            active
                .file
                .write_all(line.as_bytes())
                .and_then(|()| active.file.flush())
                .map_err(|e| DseError::io(format!("cannot append {}: {e}", self.path.display())))?;
            active.bytes += line.len() as u64;
            if self.rotate_limit.is_some_and(|limit| active.bytes > limit) {
                self.rotate_locked(&mut active)?;
            }
        }
        if let (Some(key), Ok(evaluation)) = (key, &outcome.result) {
            self.entries.lock().expect("journal poisoned").insert(key, evaluation.clone());
        }
        Ok(())
    }

    /// Rotates the over-limit active file to `<path>.1`, shifting older
    /// segments up, and starts a fresh header-only active file. Caller
    /// holds the file lock. Segments are shifted highest number first
    /// by their *actual* numbers, so a gap left by an interrupted
    /// earlier rotation never causes a rename onto an occupied slot.
    fn rotate_locked(&self, active: &mut ActiveFile) -> Result<(), DseError> {
        let rename = |from: &Path, to: &Path| {
            std::fs::rename(from, to).map_err(|e| {
                DseError::io(format!("cannot rotate {} -> {}: {e}", from.display(), to.display()))
            })
        };
        for (n, segment) in numbered_segments(&self.path).into_iter().rev() {
            rename(&segment, &segment_path(&self.path, n + 1))?;
        }
        rename(&self.path, &segment_path(&self.path, 1))?;
        let bytes = write_journal(&self.path, &[])?;
        active.file = std::fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| DseError::io(format!("cannot open {}: {e}", self.path.display())))?;
        active.bytes = bytes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, EvalCache, Executor, SweepSpec};
    use cimflow_arch::ArchConfig;
    use cimflow_compiler::{SearchMode, Strategy};
    use cimflow_nn::models;

    fn journal_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cimflow-dse-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        path
    }

    fn spec() -> SweepSpec {
        SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
    }

    #[test]
    fn interrupted_sweeps_resume_from_the_journal() {
        let path = journal_path("resume.jsonl");
        // First run journals both points.
        let outcomes = Executor::with_workers(2)
            .run_spec_journaled(&spec(), &EvalCache::new(), &path)
            .unwrap();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.result.is_ok() && !o.cached));
        assert_eq!(SweepJournal::open(&path).unwrap().len(), 2);

        // "Interrupted" re-run on a *cold* cache: every point is served
        // from the journal — zero evaluations, zero cache misses.
        let cache = EvalCache::new();
        let resumed = Executor::sequential().run_spec_journaled(&spec(), &cache, &path).unwrap();
        assert!(resumed.iter().all(|o| o.cached), "journaled points must not re-run");
        assert_eq!(cache.stats().misses, 0);
        for (a, b) in outcomes.iter().zip(&resumed) {
            assert_eq!(a.point, b.point);
            assert_eq!(
                a.result.as_ref().unwrap().simulation.total_cycles,
                b.result.as_ref().unwrap().simulation.total_cycles
            );
        }
        // The journal also seeds the cache for non-journaled callers.
        assert_eq!(cache.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_journals_resume_the_finished_prefix_only() {
        let path = journal_path("partial.jsonl");
        let wide = spec().with_mg_sizes(&[4, 8, 16]);
        // Journal only the mg=4 point, then "crash".
        Executor::sequential()
            .run_spec_journaled(&spec().with_mg_sizes(&[4]), &EvalCache::new(), &path)
            .unwrap();
        // Corrupt the tail the way a killed process would.
        {
            use std::io::Write as _;
            let mut file = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
            write!(file, "{{\"key\": {{\"arch\": 1, \"mo").unwrap();
        }
        let cache = EvalCache::new();
        let outcomes = Executor::with_workers(2).run_spec_journaled(&wide, &cache, &path).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].cached, "the journaled point resumes");
        assert!(!outcomes[1].cached && !outcomes[2].cached, "unjournaled points run");
        assert_eq!(cache.stats().misses, 2);
        // The second run journaled the remaining points: now everything
        // resumes.
        assert_eq!(SweepJournal::open(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_points_are_logged_but_always_re_run() {
        let path = journal_path("failures.jsonl");
        let bad = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[0]);
        let outcomes =
            Executor::sequential().run_spec_journaled(&bad, &EvalCache::new(), &path).unwrap();
        assert!(outcomes[0].result.is_err());
        let journal = SweepJournal::open(&path).unwrap();
        assert_eq!(journal.len(), 0, "failures are not resumable");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("architecture error"), "failures are still logged");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_engine_journals_start_fresh() {
        let path = journal_path("stale.jsonl");
        std::fs::write(
            &path,
            "{\"journal\": \"cimflow-dse-sweep\", \"format\": 1, \"cache_format\": 1, \
             \"engine\": \"0.0.0-other\"}\n{\"not\": \"an entry\"}\n",
        )
        .unwrap();
        let journal = SweepJournal::open(&path).unwrap();
        assert!(journal.is_empty());
        // The rewritten file carries the current header and nothing else.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains(CACHE_ENGINE_VERSION));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_drops_superseded_entries_and_compaction_drops_failures() {
        let path = journal_path("compact.jsonl");
        let journal = SweepJournal::open(&path).unwrap();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let evaluation = evaluate(&arch, &model, Strategy::GenericMapping).unwrap();
        let point = spec().expand().unwrap()[0].clone();
        // The same key recorded three times (as accumulating resumed runs
        // do), plus one failure line.
        for _ in 0..3 {
            let outcome = crate::DseOutcome {
                point: point.clone(),
                result: Ok(evaluation.clone()),
                cached: false,
            };
            journal.record(Some(key), &outcome).unwrap();
        }
        let failed = crate::DseOutcome {
            point: point.clone(),
            result: Err(crate::DseError::io("boom")),
            cached: false,
        };
        journal.record(None, &failed).unwrap();
        drop(journal);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 5, "header + 4");

        // Reopening dedups the superseded duplicates but keeps the
        // failure log line.
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.lookup(&key).is_some());
        drop(reopened);
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 3, "header + 2");

        // Full compaction also drops the failure line and reports what
        // happened.
        let stats = SweepJournal::compact(&path).unwrap();
        assert_eq!(stats, CompactionStats { kept: 1, superseded: 0, failures: 1 });
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 2, "header + 1");
        // The compacted journal still resumes.
        let after = SweepJournal::open(&path).unwrap();
        assert_eq!(after.len(), 1);
        assert!(after.lookup(&key).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compacting_a_missing_or_stale_journal_yields_an_empty_file() {
        let path = journal_path("compact-stale.jsonl");
        let stats = SweepJournal::compact(&path).unwrap();
        assert_eq!(stats, CompactionStats::default());
        std::fs::write(
            &path,
            "{\"journal\": \"cimflow-dse-sweep\", \"format\": 1, \"cache_format\": 1, \
             \"engine\": \"0.0.0-other\"}\n{\"not\": \"an entry\"}\n",
        )
        .unwrap();
        let stats = SweepJournal::compact(&path).unwrap();
        assert_eq!(stats, CompactionStats::default(), "stale journals compact to empty");
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1, "header only");
        std::fs::remove_file(&path).ok();
    }

    /// Distinct cache keys over one reusable evaluation (the journal
    /// does not validate key/value consistency, so rotation tests need
    /// not pay for N real evaluations).
    fn keyed_outcomes(count: usize) -> (Vec<CacheKey>, crate::DseOutcome) {
        let model = models::mobilenet_v2(32);
        let evaluation =
            evaluate(&ArchConfig::paper_default(), &model, Strategy::GenericMapping).unwrap();
        let keys = (0..count)
            .map(|i| {
                let arch = ArchConfig::paper_default().with_macros_per_group(2 << i);
                CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential)
            })
            .collect();
        let outcome = crate::DseOutcome {
            point: spec().expand().unwrap()[0].clone(),
            result: Ok(evaluation),
            cached: false,
        };
        (keys, outcome)
    }

    #[test]
    fn rotation_splits_past_the_limit_and_open_reads_segments() {
        let path = journal_path("rotate.jsonl");
        // A 1-byte limit rotates after every append: one entry per
        // segment, newest in `.1`.
        let journal = SweepJournal::open_rotating(&path, 1).unwrap();
        let (keys, outcome) = keyed_outcomes(4);
        for &key in &keys {
            journal.record(Some(key), &outcome).unwrap();
        }
        assert_eq!(journal.len(), 4);
        drop(journal);
        for n in 1..=4 {
            assert!(segment_path(&path, n).exists(), "segment {n} exists");
        }
        assert!(!segment_path(&path, 5).exists());
        let active = std::fs::read_to_string(&path).unwrap();
        assert_eq!(active.lines().count(), 1, "the active file holds only the fresh header");

        // A plain (non-rotating) reopen reads every rotated segment.
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 4);
        for key in &keys {
            assert!(reopened.lookup(key).is_some());
        }
        // Without a limit it appends without rotating further.
        let (more, _) = keyed_outcomes(5);
        reopened.record(Some(more[4]), &outcome).unwrap();
        drop(reopened);
        assert!(!segment_path(&path, 5).exists());
        assert_eq!(SweepJournal::open(&path).unwrap().len(), 5);

        for n in 1..=4 {
            std::fs::remove_file(segment_path(&path, n)).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_truncated_rotated_tails_drop_only_the_torn_entry() {
        let path = journal_path("rotate-torn.jsonl");
        let journal = SweepJournal::open_rotating(&path, 1).unwrap();
        let (keys, outcome) = keyed_outcomes(4);
        for &key in &keys {
            journal.record(Some(key), &outcome).unwrap();
        }
        drop(journal);
        // `.1` is the newest rotated segment and holds the last key;
        // tear its entry the way a crash mid-rotation-write would.
        let newest = segment_path(&path, 1);
        let text = std::fs::read_to_string(&newest).unwrap();
        std::fs::write(&newest, &text[..text.len() - 50]).unwrap();

        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 3, "only the torn entry is lost");
        assert!(reopened.lookup(&keys[3]).is_none());
        for key in &keys[..3] {
            assert!(reopened.lookup(key).is_some());
        }
        drop(reopened);
        for n in 1..=4 {
            std::fs::remove_file(segment_path(&path, n)).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segment_gaps_from_interrupted_rotations_hide_only_the_missing_segment() {
        let path = journal_path("rotate-gap.jsonl");
        let journal = SweepJournal::open_rotating(&path, 1).unwrap();
        let (keys, outcome) = keyed_outcomes(4);
        for &key in &keys {
            journal.record(Some(key), &outcome).unwrap();
        }
        drop(journal);
        // A crash between rotation renames leaves a numbering gap at
        // `.1` (everything shifted up, the active file not yet moved).
        // Only that segment's entry may be lost; the rest must load.
        std::fs::remove_file(segment_path(&path, 1)).unwrap();
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 3, "segments behind the gap still load");
        assert!(reopened.lookup(&keys[3]).is_none(), "only the removed segment's entry is lost");
        drop(reopened);

        // A rotation over the gapped set must not clobber a survivor:
        // every pre-gap key is still resumable afterwards.
        let journal = SweepJournal::open_rotating(&path, 1).unwrap();
        let (more, _) = keyed_outcomes(5);
        journal.record(Some(more[4]), &outcome).unwrap();
        assert_eq!(journal.len(), 4);
        drop(journal);
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 4);
        for key in keys[..3].iter().chain([&more[4]]) {
            assert!(reopened.lookup(key).is_some());
        }
        for segment in existing_segments(&path) {
            std::fs::remove_file(segment).ok();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_merges_rotated_segments_back_into_one_file() {
        let path = journal_path("rotate-compact.jsonl");
        let journal = SweepJournal::open_rotating(&path, 1).unwrap();
        let (keys, outcome) = keyed_outcomes(3);
        for &key in &keys {
            journal.record(Some(key), &outcome).unwrap();
        }
        // A superseding duplicate of the first key and a failure line,
        // spread across further segments.
        journal.record(Some(keys[0]), &outcome).unwrap();
        let failed = crate::DseOutcome {
            point: outcome.point.clone(),
            result: Err(crate::DseError::io("boom")),
            cached: false,
        };
        journal.record(None, &failed).unwrap();
        drop(journal);
        assert!(segment_path(&path, 5).exists(), "five appends rotated five segments");

        let stats = SweepJournal::compact(&path).unwrap();
        assert_eq!(stats, CompactionStats { kept: 3, superseded: 1, failures: 1 });
        assert!(existing_segments(&path).is_empty(), "compaction removes the segments");
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 3);
        for key in &keys {
            assert!(reopened.lookup(key).is_some());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_and_lookup_round_trip() {
        let path = journal_path("roundtrip.jsonl");
        let journal = SweepJournal::open(&path).unwrap();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let evaluation = evaluate(&arch, &model, Strategy::GenericMapping).unwrap();
        let outcome = crate::DseOutcome {
            point: spec().expand().unwrap()[1].clone(),
            result: Ok(evaluation.clone()),
            cached: false,
        };
        journal.record(Some(key), &outcome).unwrap();
        assert_eq!(
            journal.lookup(&key).unwrap().simulation.total_cycles,
            evaluation.simulation.total_cycles
        );
        // A reopened journal sees the same entry.
        drop(journal);
        let reopened = SweepJournal::open(&path).unwrap();
        assert_eq!(reopened.len(), 1);
        assert!(reopened.lookup(&key).is_some());
        std::fs::remove_file(&path).ok();
    }
}
