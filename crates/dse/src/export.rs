//! Result exporters: flat per-point rows as CSV or JSON.

use serde::Serialize;

use crate::{analysis, DseOutcome};

/// One flattened result row of a sweep report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SweepRow {
    /// Grid index of the point.
    pub index: usize,
    /// Model name.
    pub model: String,
    /// Input resolution.
    pub resolution: u32,
    /// Strategy short name.
    pub strategy: String,
    /// System-level search mode (`sequential` or `joint`).
    pub search: String,
    /// Number of chips.
    pub chip_count: u64,
    /// Per-chip core count.
    pub core_count: u64,
    /// Per-core local memory in KiB.
    pub local_memory_kib: u64,
    /// NoC flit size in bytes.
    pub flit_bytes: u64,
    /// Macro-group size.
    pub mg_size: u64,
    /// Operating frequency in MHz (timing-only axis).
    pub frequency_mhz: u64,
    /// Global-memory port core index (timing-only axis).
    pub memory_port: u64,
    /// `"ok"` or `"error"`.
    pub status: String,
    /// Whether the evaluation came from the cache.
    pub cached: bool,
    /// How the report was produced: `"interpreted"` (full simulation) or
    /// `"replayed"` (bit-exact trace replay); empty for failed points.
    pub eval_path: String,
    /// Execution cycles (0 on error).
    pub cycles: u64,
    /// Energy in millijoules (0 on error).
    pub energy_mj: f64,
    /// Throughput in TOPS (0 on error).
    pub tops: f64,
    /// Energy efficiency in TOPS/W (0 on error).
    pub tops_per_watt: f64,
    /// Pipeline stages chosen by the partitioner (0 on error).
    pub stages: usize,
    /// Mean duplication factor (0 on error).
    pub mean_duplication: f64,
    /// Offered request rate in QPS (0 when the point ran without a
    /// traffic workload — the serving columns below are then all 0).
    pub offered_qps: u64,
    /// Serving p99 request latency in microseconds (0 when unserved).
    pub p99_latency_us: f64,
    /// Serving goodput in completed requests per second (0 when unserved).
    pub goodput_qps: f64,
    /// Estimated saturation throughput in QPS (0 when unserved).
    pub saturation_qps: f64,
    /// Energy of the whole serving run in millijoules (0 when unserved).
    pub serving_energy_mj: f64,
    /// Whether the point is on its model's (cycles, energy) Pareto
    /// frontier (frontiers are computed per model — cross-workload
    /// domination is meaningless).
    pub pareto: bool,
    /// Whether the point is on its model's (p99 latency, serving
    /// energy) Pareto frontier; always `false` for unserved points.
    pub pareto_p99: bool,
    /// The error message for failed points (`None` when ok).
    pub error: Option<String>,
}

/// Flattens outcomes into report rows (per-model Pareto membership
/// included).
pub fn rows(outcomes: &[DseOutcome]) -> Vec<SweepRow> {
    let frontier: std::collections::BTreeSet<usize> =
        analysis::pareto_frontier_by_model(outcomes).into_values().flatten().collect();
    let p99_frontier: std::collections::BTreeSet<usize> =
        analysis::pareto_frontier_by_model_with(outcomes, analysis::Objective::P99Latency)
            .into_values()
            .flatten()
            .collect();
    outcomes
        .iter()
        .enumerate()
        .map(|(index, outcome)| {
            let point = &outcome.point;
            let mut row = SweepRow {
                index,
                model: point.model.name.clone(),
                resolution: point.model.resolution,
                strategy: point.strategy.name().to_owned(),
                search: point.search.name().to_owned(),
                chip_count: point.chip_count,
                core_count: point.core_count,
                local_memory_kib: point.local_memory_kib,
                flit_bytes: point.flit_bytes,
                mg_size: point.mg_size,
                frequency_mhz: point.frequency_mhz,
                memory_port: point.memory_port,
                status: "error".to_owned(),
                cached: outcome.cached,
                eval_path: String::new(),
                cycles: 0,
                energy_mj: 0.0,
                tops: 0.0,
                tops_per_watt: 0.0,
                stages: 0,
                mean_duplication: 0.0,
                offered_qps: point.offered_qps,
                p99_latency_us: 0.0,
                goodput_qps: 0.0,
                saturation_qps: 0.0,
                serving_energy_mj: 0.0,
                pareto: frontier.contains(&index),
                pareto_p99: p99_frontier.contains(&index),
                error: None,
            };
            match &outcome.result {
                Ok(evaluation) => {
                    row.status = "ok".to_owned();
                    row.eval_path = evaluation.eval_path.name().to_owned();
                    row.cycles = evaluation.simulation.total_cycles;
                    row.energy_mj = evaluation.simulation.energy_mj();
                    row.tops = evaluation.simulation.throughput_tops();
                    row.tops_per_watt = evaluation.simulation.tops_per_watt();
                    row.stages = evaluation.stages;
                    row.mean_duplication = evaluation.mean_duplication;
                    if let Some(serving) = &evaluation.serving {
                        row.p99_latency_us = serving.p99_latency_us;
                        row.goodput_qps = serving.goodput_qps;
                        row.saturation_qps = serving.saturation_qps;
                        row.serving_energy_mj = serving.energy_mj;
                    }
                }
                Err(e) => {
                    row.error = Some(e.to_string());
                }
            }
            row
        })
        .collect()
}

/// CSV column order (kept in sync with [`to_csv`]).
pub const CSV_HEADER: &str = "index,model,resolution,strategy,search,chip_count,core_count,\
local_memory_kib,flit_bytes,mg_size,frequency_mhz,memory_port,status,cached,eval_path,cycles,\
energy_mj,tops,tops_per_watt,stages,mean_duplication,offered_qps,p99_latency_us,goodput_qps,\
saturation_qps,serving_energy_mj,pareto,pareto_p99,error";

/// Renders outcomes as a CSV document (header + one row per point).
pub fn to_csv(outcomes: &[DseOutcome]) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for row in rows(outcomes) {
        let error = row.error.as_deref().unwrap_or("");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.4},{:.4},{},{:.3},{},\
             {:.3},{:.3},{:.3},{:.6},{},{},{}\n",
            row.index,
            csv_escape(&row.model),
            row.resolution,
            row.strategy,
            row.search,
            row.chip_count,
            row.core_count,
            row.local_memory_kib,
            row.flit_bytes,
            row.mg_size,
            row.frequency_mhz,
            row.memory_port,
            row.status,
            row.cached,
            row.eval_path,
            row.cycles,
            row.energy_mj,
            row.tops,
            row.tops_per_watt,
            row.stages,
            row.mean_duplication,
            row.offered_qps,
            row.p99_latency_us,
            row.goodput_qps,
            row.saturation_qps,
            row.serving_energy_mj,
            row.pareto,
            row.pareto_p99,
            csv_escape(error),
        ));
    }
    out
}

/// Renders outcomes as a pretty-printed JSON array of row objects.
pub fn to_json(outcomes: &[DseOutcome]) -> String {
    serde_json::to_string_pretty(&rows(outcomes)).expect("row serialization cannot fail")
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalCache, Executor, SweepSpec};
    use cimflow_compiler::Strategy;

    fn outcomes() -> Vec<DseOutcome> {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[8, 0]); // one valid point, one invalid
        Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap()
    }

    #[test]
    fn csv_contains_every_point_with_status() {
        let csv = to_csv(&outcomes());
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 rows: {csv}");
        assert_eq!(lines[0], CSV_HEADER);
        assert!(lines[1].contains(",ok,"));
        assert!(lines[1].contains(",interpreted,"));
        assert!(lines[2].contains(",error,"));
        assert!(lines[2].contains(",error,false,,"), "failed rows leave eval_path empty");
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "row arity matches header"
        );
    }

    #[test]
    fn json_rows_round_trip_shape() {
        let json = to_json(&outcomes());
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let rows = value.as_seq().expect("array of rows");
        assert_eq!(rows.len(), 2);
        let first = rows[0].as_map().unwrap();
        assert!(first.iter().any(|(k, _)| k == "cycles"));
        assert!(first.iter().any(|(k, _)| k == "pareto"));
    }

    #[test]
    fn csv_escaping_quotes_fields() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn successful_single_point_is_on_the_frontier() {
        let rows = rows(&outcomes());
        assert!(rows[0].pareto, "the only successful point is trivially Pareto-optimal");
        assert!(!rows[1].pareto);
        assert!(!rows[1].pareto_p99, "unserved points are never p99-Pareto");
        assert!(rows[1].error.as_deref().unwrap_or("").contains("must be positive"));
    }

    #[test]
    fn serving_columns_fill_for_traffic_sweeps() {
        use crate::TrafficSpec;
        use cimflow_traffic::WorkloadSpec;

        let workload = WorkloadSpec { requests: 32, ..WorkloadSpec::default() };
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_traffic(TrafficSpec::new(&[100]).with_workload(workload));
        let outcomes = Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap();
        let rows = rows(&outcomes);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].offered_qps, 100);
        assert!(rows[0].p99_latency_us > 0.0, "{rows:?}");
        assert!(rows[0].goodput_qps > 0.0);
        assert!(rows[0].saturation_qps > 0.0);
        assert!(rows[0].serving_energy_mj > 0.0);
        assert!(rows[0].pareto_p99, "the only served point is trivially p99-Pareto");

        let csv = to_csv(&outcomes);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines[0].split(',').count(), lines[1].split(',').count());
        assert!(lines[0].contains("p99_latency_us,goodput_qps"));
    }
}
