//! Adaptive Pareto-guided exploration: budgeted search over a sweep grid
//! that finds (most of) the per-model (cycles, energy) frontier at a
//! fraction of the exhaustive grid's evaluations.
//!
//! A [`SweepSpec`] describes a cartesian *space*; exhaustively expanding
//! it explodes combinatorially (models × strategies × search modes ×
//! chip counts × cores × memory × flit × MG sizes) even though the
//! Pareto frontier is tiny. An [`ExploreSpec`] wraps the same space with
//! an evaluation **budget**, an **algorithm** and a **seed**, and
//! [`explore`] spends the budget adaptively instead:
//!
//! * [`ExploreAlgorithm::SuccessiveHalving`] — generations of uniformly
//!   sampled points are first priced on the cheapest rung of the spec's
//!   [`FidelityLadder`] (by default one 32 px coarse-simulation rung:
//!   resolution floored, search pinned to [`SearchMode::Sequential`])
//!   and the per-model Pareto survivors of the accumulated proxy pool
//!   climb the ladder rung by rung until full fidelity. When a point's
//!   projection *is* the point itself, the evaluation counts directly
//!   as full fidelity.
//! * [`ExploreAlgorithm::Evolutionary`] — a population seeded from a
//!   sparse (strided) grid sample evolves by mutation (step one axis to
//!   an adjacent value) and crossover (per-axis mixing of two parents);
//!   parents are selected by per-model Pareto rank, ties broken by
//!   NSGA-II crowding distance over (cycles, energy). A ladder with an
//!   analytical rung prescreens each brood for free before any budget
//!   is spent.
//!
//! The ladder is **calibrated online**: every graduation feeds the
//! `(proxy, full)` pair to a per-`(model, rung)` Kendall-tau tracker
//! ([`RankFidelity`]), and the successive-halving scouting share adapts
//! to the measured rank fidelity instead of the historical fixed
//! half-budget cap ([`scout_share_for`]). [`FeasibilityCaps`] cut
//! area/power-infeasible candidates before budget is spent on them
//! (with dominated-but-feasible fallbacks), and an optional
//! hypervolume stopping rule ends a run whose per-model frontiers have
//! stopped growing.
//!
//! Every generation is submitted as one batch through the shared
//! [`EvalService`] pipeline, so duplicate points coalesce in the
//! [`EvalCache`](crate::EvalCache) and an attached [`SweepJournal`]
//! makes an interrupted exploration resumable: re-running the same spec
//! and seed replays the identical trajectory with journaled points
//! served for free (no point is ever re-evaluated).
//!
//! Determinism: the engine carries its own xorshift64* PRNG seeded from
//! the spec (no `rand` dependency), batches are waited on in submission
//! order, and selection sorts with total orders — the same
//! `(space, budget, algorithm, seed)` always explores the same points.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_nn::{models, Model};
use cimflow_obs::{thread_track, AttrValue, Counter, Gauge, MetricsRegistry, Tracer};
use serde::{Content, Deserialize, Serialize};

use crate::analysis::Objective;
use crate::eval::{served_model_name, TrafficJob};
use crate::fidelity::{
    scout_share_for, AnalyticalPricer, FeasibilityCaps, Fidelity, FidelityLadder, RankFidelity,
};
use crate::journal::SweepJournal;
use crate::spec::{SweepAxes, AXIS_COUNT};
use crate::{analysis, DseError, DseOutcome, EvalService, Job, PointSpec, SweepSpec};

/// Relative frontier-hypervolume improvement below which a generation
/// counts as stalled for the stopping rule.
const STALL_RELATIVE_EPSILON: f64 = 1e-3;

/// The resolution coarse-fidelity evaluations are floored to: the
/// smallest geometry the model zoo keeps structurally identical (the
/// cross-crate tests pin it for the same reason).
pub const COARSE_RESOLUTION: u32 = 32;

/// Seed used when a spec does not carry one.
pub const DEFAULT_SEED: u64 = 0x5EED_C1F1;

/// The exploration strategy of an [`ExploreSpec`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExploreAlgorithm {
    /// Coarse-fidelity generations; per-model Pareto survivors are
    /// promoted to full fidelity.
    SuccessiveHalving,
    /// Pareto-rank/crowding-selected population with axis mutation and
    /// crossover.
    #[default]
    Evolutionary,
}

impl ExploreAlgorithm {
    /// Wire name of the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            ExploreAlgorithm::SuccessiveHalving => "successive_halving",
            ExploreAlgorithm::Evolutionary => "evolutionary",
        }
    }

    /// Parses a wire/CLI name (short aliases accepted).
    pub fn from_name(text: &str) -> Option<Self> {
        match text {
            "successive_halving" | "successive-halving" | "sh" | "halving" => {
                Some(ExploreAlgorithm::SuccessiveHalving)
            }
            "evolutionary" | "evo" | "genetic" => Some(ExploreAlgorithm::Evolutionary),
            _ => None,
        }
    }
}

impl fmt::Display for ExploreAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for ExploreAlgorithm {
    fn serialize(&self) -> Content {
        Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for ExploreAlgorithm {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected algorithm name string"))?;
        ExploreAlgorithm::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown explore algorithm `{text}`")))
    }
}

/// A budgeted, seeded exploration of a sweep space — the on-disk input
/// of `cimflow-dse explore <spec.json>`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExploreSpec {
    /// The design space (the grid is *described*, never fully expanded
    /// into evaluations).
    pub space: SweepSpec,
    /// Maximum number of evaluations (coarse + full fidelity) the
    /// exploration may submit.
    pub budget: u64,
    /// The exploration algorithm.
    pub algorithm: ExploreAlgorithm,
    /// PRNG seed: the same `(space, budget, algorithm, seed)` explores
    /// the same points.
    pub seed: u64,
    /// The objective pair selection ranks by. [`Objective::P99Latency`]
    /// requires the space to carry a `traffic` section (otherwise no
    /// point has serving metrics and nothing is ever selected).
    pub objective: Objective,
    /// The proxy-fidelity ladder the search schedules over. Defaults to
    /// the historical single 32 px coarse rung
    /// ([`FidelityLadder::standard`]); rungs are validated against the
    /// space before the run starts.
    pub ladder: FidelityLadder,
    /// Pins the scouting budget share instead of adapting it from the
    /// measured rank fidelity (`None` = calibrated/adaptive; `Some(0.5)`
    /// reproduces the historical fixed half-budget split exactly).
    pub scout_share: Option<f64>,
    /// Stop after this many consecutive generations whose per-model
    /// frontier hypervolume improves by less than 0.1% (`None` = run to
    /// budget).
    pub stall_generations: Option<u32>,
    /// Area/power feasibility caps. Inactive caps (the default) admit
    /// everything.
    pub caps: FeasibilityCaps,
}

impl ExploreSpec {
    /// Wraps a space with the default budget (a quarter of the grid, at
    /// least 4), the default algorithm, the default seed and the
    /// default (cycles, energy) objective.
    pub fn new(space: SweepSpec) -> Self {
        let budget = default_budget(&space);
        ExploreSpec {
            space,
            budget,
            algorithm: ExploreAlgorithm::default(),
            seed: DEFAULT_SEED,
            objective: Objective::default(),
            ladder: FidelityLadder::default(),
            scout_share: None,
            stall_generations: None,
            caps: FeasibilityCaps::none(),
        }
    }

    /// Sets the selection objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the evaluation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: ExploreAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fidelity ladder.
    #[must_use]
    pub fn with_ladder(mut self, ladder: FidelityLadder) -> Self {
        self.ladder = ladder;
        self
    }

    /// Pins the scouting budget share (`Some(0.5)` is the historical
    /// fixed split; `None` adapts it from the measured rank fidelity).
    #[must_use]
    pub fn with_scout_share(mut self, share: Option<f64>) -> Self {
        self.scout_share = share;
        self
    }

    /// Sets the hypervolume stopping rule.
    #[must_use]
    pub fn with_stall_generations(mut self, generations: Option<u32>) -> Self {
        self.stall_generations = generations;
        self
    }

    /// Sets the feasibility caps.
    #[must_use]
    pub fn with_caps(mut self, caps: FeasibilityCaps) -> Self {
        self.caps = caps;
        self
    }

    /// Serializes the spec to pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ExploreSpec serialization cannot fail")
    }

    /// Parses a spec from JSON. Only `space` is required; an omitted
    /// `budget` defaults to a quarter of the grid (at least 4), an
    /// omitted `algorithm` to `evolutionary`, an omitted `seed` to
    /// [`DEFAULT_SEED`].
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, DseError> {
        serde_json::from_str(text).map_err(|e| DseError::spec(e.to_string()))
    }
}

/// The default budget of a space: a quarter of the grid, at least 4.
fn default_budget(space: &SweepSpec) -> u64 {
    (space.point_count() as u64 / 4).max(4)
}

impl Deserialize for ExploreSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for ExploreSpec"))?;
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let space = match field("space") {
            Some(value) => SweepSpec::deserialize(value)
                .map_err(|e| serde::Error::new(format!("ExploreSpec.space: {e}")))?,
            None => return Err(serde::Error::new("ExploreSpec needs a `space`")),
        };
        fn opt<T: Deserialize>(
            value: Option<&Content>,
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match value {
                Some(Content::Null) | None => Ok(None),
                Some(value) => T::deserialize(value)
                    .map(Some)
                    .map_err(|e| serde::Error::new(format!("ExploreSpec.{name}: {e}"))),
            }
        }
        let budget = opt(field("budget"), "budget")?.unwrap_or_else(|| default_budget(&space));
        Ok(ExploreSpec {
            space,
            budget,
            algorithm: opt(field("algorithm"), "algorithm")?.unwrap_or_default(),
            seed: opt(field("seed"), "seed")?.unwrap_or(DEFAULT_SEED),
            objective: opt(field("objective"), "objective")?.unwrap_or_default(),
            ladder: opt(field("ladder"), "ladder")?.unwrap_or_default(),
            scout_share: opt(field("scout_share"), "scout_share")?,
            stall_generations: opt(field("stall_generations"), "stall_generations")?,
            caps: opt(field("caps"), "caps")?.unwrap_or_default(),
        })
    }
}

/// One generation of an exploration run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// 0-based generation number.
    pub index: usize,
    /// What the generation did (`seed`, `generation`, `halving`).
    pub phase: String,
    /// Evaluations submitted (budget charged) this generation.
    pub submitted: usize,
    /// Of `submitted`, how many ran at coarse fidelity.
    pub coarse: usize,
    /// Cumulative per-model frontier size over the full-fidelity
    /// outcomes after this generation.
    pub frontier_points: usize,
    /// Per-rung evaluation counts this generation (wire rung names;
    /// `analytical` entries are free and not part of `submitted`).
    pub rungs: BTreeMap<String, usize>,
}

/// The result of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The algorithm that ran.
    pub algorithm: ExploreAlgorithm,
    /// The seed it ran under.
    pub seed: u64,
    /// Size of the exhaustive grid the exploration avoided expanding.
    pub space_points: usize,
    /// The configured budget.
    pub budget: u64,
    /// Evaluations actually submitted (coarse + full; journal-resumed
    /// submissions count — re-running them costs nothing but they were
    /// part of the trajectory).
    pub budget_used: u64,
    /// Full-fidelity (in-space) points evaluated: `outcomes.len()`.
    pub evaluated: usize,
    /// Coarse-fidelity evaluations (successive halving only).
    pub coarse_evaluated: usize,
    /// Every full-fidelity outcome, in deterministic submission order.
    /// Feed these to [`export`](crate::export) for CSV/JSON reports.
    pub outcomes: Vec<DseOutcome>,
    /// Per-model Pareto frontier: model name → indices into `outcomes`,
    /// ascending cycles. With active [`FeasibilityCaps`] this is the
    /// frontier of the *feasible* outcomes; a model with no feasible
    /// outcome falls back to its unconstrained frontier.
    pub frontier: BTreeMap<String, Vec<usize>>,
    /// Per-generation trajectory.
    pub generations: Vec<GenerationStats>,
    /// Per-rung evaluation counts over the whole run (wire rung names;
    /// `analytical` entries are free and never charge budget).
    pub rung_evaluated: BTreeMap<String, u64>,
    /// Measured rank fidelity per `model/rung` (Kendall tau of proxy
    /// rank against full-fidelity rank on graduated points; pairs with
    /// fewer than [`crate::MIN_CALIBRATION_SAMPLES`] graduations are
    /// absent).
    pub rank_fidelity: BTreeMap<String, f64>,
    /// The scouting budget share in effect when the run ended (the
    /// adaptive split successive halving used; 0 when the ladder has no
    /// simulated proxy rung).
    pub scout_share: f64,
    /// True when the hypervolume stopping rule ended the run before the
    /// budget was spent.
    pub stalled: bool,
}

impl ExploreReport {
    /// The `(cycles, energy_mj)` objectives of one model's frontier,
    /// ascending cycles (empty for unknown models).
    pub fn frontier_objectives(&self, model: &str) -> Vec<(u64, f64)> {
        self.frontier
            .get(model)
            .map(|indices| {
                indices
                    .iter()
                    .filter_map(|&i| self.outcomes[i].evaluation())
                    .map(|e| (e.simulation.total_cycles, e.simulation.energy_mj()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Explores `spec.space` within `spec.budget` evaluations on `service`.
///
/// # Errors
///
/// Returns [`DseError::Spec`] when the space names no model or no
/// strategy, [`DseError::Io`] when the service refuses the batch (it is
/// shutting down). Per-point failures stay inside their outcomes.
pub fn explore(spec: &ExploreSpec, service: &EvalService) -> Result<ExploreReport, DseError> {
    explore_inner(spec, service, None)
}

/// [`explore`] against a [`SweepJournal`]: journaled points are served
/// without re-running and fresh outcomes are appended, so an interrupted
/// exploration resumes — with the same spec and seed the trajectory is
/// identical and every already-journaled point is free.
///
/// # Errors
///
/// See [`explore`].
pub fn explore_journaled(
    spec: &ExploreSpec,
    service: &EvalService,
    journal: &Arc<SweepJournal>,
) -> Result<ExploreReport, DseError> {
    explore_inner(spec, service, Some(Arc::clone(journal)))
}

fn explore_inner(
    spec: &ExploreSpec,
    service: &EvalService,
    journal: Option<Arc<SweepJournal>>,
) -> Result<ExploreReport, DseError> {
    let axes = spec.space.axes()?;
    spec.ladder.validate_for(&axes)?;
    if let Some(share) = spec.scout_share {
        if !(0.0..=1.0).contains(&share) {
            return Err(DseError::spec(format!("scout_share must be within [0, 1], got {share}")));
        }
    }
    // Mirror `expand_jobs`: validate the workload once per run and,
    // under co-location, resolve the whole model axis up front (an
    // unresolvable colocated model is a spec error, never a silently
    // shrunken mix).
    let traffic = match &spec.space.traffic {
        Some(section) => {
            let served = if section.colocate { spec.space.models.len() } else { 1 };
            section.workload.validate(served).map_err(|e| DseError::spec(e.to_string()))?;
            let pool = if section.colocate {
                let mut colocated = Vec::with_capacity(spec.space.models.len());
                for m in &spec.space.models {
                    let model = models::by_name(&m.name, m.resolution)
                        .map(Arc::new)
                        .ok_or_else(|| DseError::UnknownModel { name: m.name.clone() })?;
                    colocated.push((served_model_name(&m.name, m.resolution), model));
                }
                Some(Arc::new(TrafficJob { workload: section.workload.clone(), colocated }))
            } else {
                None
            };
            Some((section.workload.clone(), pool))
        }
        None => None,
    };
    let base = spec.space.base_arch();
    let mut run = Run {
        axes,
        base,
        service,
        obs: ExploreObs::new(service, spec),
        journal,
        rng: XorShift::new(spec.seed),
        budget: spec.budget,
        used: 0,
        coarse_used: 0,
        visited: HashSet::new(),
        points: Vec::new(),
        outcomes: Vec::new(),
        generations: Vec::new(),
        resolved: HashMap::new(),
        objective: spec.objective,
        traffic,
        ladder: spec.ladder.clone(),
        scout_share_pin: spec.scout_share,
        caps: spec.caps,
        stall_generations: spec.stall_generations,
        calibration: RankFidelity::new(),
        analytical: AnalyticalPricer::new(base),
        proxy_evidence: HashMap::new(),
        arch_feasibility: HashMap::new(),
        rung_used: BTreeMap::new(),
        hv_history: Vec::new(),
        stalled: false,
    };
    match spec.algorithm {
        ExploreAlgorithm::SuccessiveHalving => successive_halving(&mut run)?,
        ExploreAlgorithm::Evolutionary => evolutionary(&mut run)?,
    }
    let frontier = constrained_frontier(&run.outcomes, spec.objective, &spec.caps);
    let scout_share = run.scout_share();
    Ok(ExploreReport {
        algorithm: spec.algorithm,
        seed: spec.seed,
        space_points: run.axes.point_count(),
        budget: spec.budget,
        budget_used: run.used,
        evaluated: run.outcomes.len(),
        coarse_evaluated: run.coarse_used as usize,
        frontier,
        generations: run.generations,
        rung_evaluated: run.rung_used,
        rank_fidelity: run.calibration.snapshot(),
        scout_share,
        stalled: run.stalled,
        outcomes: run.outcomes,
    })
}

/// Per-model feasible candidates: (outcome index, objective pair).
type FeasibleByModel = BTreeMap<String, Vec<(usize, (u64, f64))>>;

/// Per-model promotion candidates: (flat index, ladder level, proxy
/// objectives).
type PromotionPool = BTreeMap<String, Vec<(usize, usize, (u64, f64))>>;

/// The per-model frontier under the caps: the frontier of the feasible
/// outcomes, with a model that has *no* feasible outcome falling back
/// to its unconstrained frontier (a dominated-but-feasible point beats
/// an infeasible frontier point, but an all-infeasible model still
/// reports its best effort).
fn constrained_frontier(
    outcomes: &[DseOutcome],
    objective: Objective,
    caps: &FeasibilityCaps,
) -> BTreeMap<String, Vec<usize>> {
    let unconstrained = analysis::pareto_frontier_by_model_with(outcomes, objective);
    if !caps.is_active() {
        return unconstrained;
    }
    let mut feasible: FeasibleByModel = BTreeMap::new();
    for (at, outcome) in outcomes.iter().enumerate() {
        if !caps.admits_outcome(outcome) {
            continue;
        }
        let objectives = outcome
            .evaluation()
            .and_then(|evaluation| objective.of(evaluation))
            .filter(|pair| pair.1.is_finite());
        if let Some(objectives) = objectives {
            feasible.entry(outcome.point.model.name.clone()).or_default().push((at, objectives));
        }
    }
    unconstrained
        .into_iter()
        .map(|(model, fallback)| {
            let indices = match feasible.get(&model) {
                None => fallback,
                Some(candidates) => {
                    let points: Vec<(u64, f64)> =
                        candidates.iter().map(|(_, objectives)| *objectives).collect();
                    analysis::pareto_indices(&points)
                        .into_iter()
                        .map(|local| candidates[local].0)
                        .collect()
                }
            };
            (model, indices)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// xorshift64\* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // splitmix64 finalizer: a bijective mix, so every seed lands on
        // a distinct, well-scrambled state and adjacent seeds diverge
        // in every bit (a plain XOR against a constant would collapse
        // each even/odd seed pair once the low bit is forced). The
        // final `| 1` keeps the xorshift state nonzero.
        let mut mixed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mixed = (mixed ^ (mixed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        mixed ^= mixed >> 31;
        XorShift(mixed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Generation/population size for a space: `⌈√space⌉` clamped to
/// `[4, 32]` — big enough to cover every model of a sparse seed, small
/// enough that a budgeted run gets several selection rounds.
fn generation_size(space: usize) -> usize {
    ((space as f64).sqrt().ceil() as usize).clamp(4, 32)
}

/// Exploration-engine instruments, resolved once from the service's
/// registry/tracer so each generation pays only atomic updates. The
/// coarse-vs-full split and the budget burn-down are the signals that
/// tell whether a run spent its budget scouting or promoting.
struct ExploreObs {
    tracer: Option<Tracer>,
    metrics: MetricsRegistry,
    evals_full: Counter,
    evals_coarse: Counter,
    budget_remaining: Gauge,
    /// Scouting-allowance burn-down (`explore.scout_budget_remaining`).
    scout_remaining: Gauge,
    /// Per-rung counters (`explore.rung_evals{rung}`), resolved lazily
    /// as rungs are first exercised.
    rung_counters: HashMap<String, Counter>,
    /// `now_us` at the start of the open generation (tracing only).
    generation_start: Option<u64>,
}

impl ExploreObs {
    fn new(service: &EvalService, spec: &ExploreSpec) -> Self {
        let metrics = service.metrics();
        let obs = ExploreObs {
            tracer: service.tracer(),
            evals_full: metrics.counter_with("explore.evals", &[("fidelity", "full")]),
            evals_coarse: metrics.counter_with("explore.evals", &[("fidelity", "coarse")]),
            budget_remaining: metrics.gauge("explore.budget_remaining"),
            scout_remaining: metrics.gauge("explore.scout_budget_remaining"),
            rung_counters: HashMap::new(),
            metrics,
            generation_start: None,
        };
        obs.budget_remaining.set(spec.budget as i64);
        obs
    }

    /// Adds to the per-rung evaluation counter.
    fn rung_add(&mut self, rung: &str, count: u64) {
        if count == 0 {
            return;
        }
        self.rung_counters
            .entry(rung.to_owned())
            .or_insert_with(|| self.metrics.counter_with("explore.rung_evals", &[("rung", rung)]))
            .add(count);
    }

    /// Publishes one measured rank fidelity as milli-tau (gauges are
    /// integers; tau ∈ [−1, 1] maps to [−1000, 1000]).
    fn set_rank_fidelity(&self, model: &str, rung: &str, tau: f64) {
        self.metrics
            .gauge_with("explore.rank_fidelity", &[("model", model), ("rung", rung)])
            .set((tau * 1000.0).round() as i64);
    }

    /// Marks the start of a generation (the matching
    /// [`Run::push_generation`] closes the span).
    fn begin_generation(&mut self) {
        if let Some(tracer) = &self.tracer {
            self.generation_start = Some(tracer.now_us());
        }
    }

    fn finish_generation(&mut self, stats: &GenerationStats, remaining: u64) {
        self.evals_coarse.add(stats.coarse as u64);
        self.evals_full.add((stats.submitted - stats.coarse) as u64);
        self.budget_remaining.set(remaining as i64);
        if let Some(tracer) = &self.tracer {
            let end = tracer.now_us();
            let start = self.generation_start.take().unwrap_or(end);
            tracer.complete(
                &format!("generation-{}", stats.index),
                "explore",
                thread_track(),
                start,
                end.saturating_sub(start),
                vec![
                    ("phase".to_owned(), AttrValue::from(stats.phase.as_str())),
                    ("submitted".to_owned(), AttrValue::from(stats.submitted)),
                    ("coarse".to_owned(), AttrValue::from(stats.coarse)),
                    ("frontier_points".to_owned(), AttrValue::from(stats.frontier_points)),
                    ("budget_remaining".to_owned(), AttrValue::from(remaining)),
                ],
            );
        }
    }
}

struct Run<'s> {
    axes: SweepAxes,
    base: ArchConfig,
    service: &'s EvalService,
    obs: ExploreObs,
    journal: Option<Arc<SweepJournal>>,
    rng: XorShift,
    budget: u64,
    used: u64,
    coarse_used: u64,
    /// Flat indices of in-space points already submitted at full
    /// fidelity (never resubmitted — revisits are free by construction).
    visited: HashSet<usize>,
    /// Index vectors aligned with `outcomes`.
    points: Vec<[usize; AXIS_COUNT]>,
    /// Full-fidelity outcomes in submission order.
    outcomes: Vec<DseOutcome>,
    generations: Vec<GenerationStats>,
    resolved: HashMap<(String, u32), Result<Arc<Model>, DseError>>,
    /// The objective pair selection ranks by.
    objective: Objective,
    /// The space's serving workload, when it has a `traffic` section:
    /// the workload plus the shared co-location pool (`None` for solo
    /// serving — each job then serves its own model alone).
    traffic: Option<(cimflow_traffic::WorkloadSpec, Option<Arc<TrafficJob>>)>,
    /// The proxy-fidelity ladder the search schedules over.
    ladder: FidelityLadder,
    /// A pinned scouting share (`None` = adapt from calibration).
    scout_share_pin: Option<f64>,
    /// Area/power feasibility caps.
    caps: FeasibilityCaps,
    /// The hypervolume stopping rule (`None` = run to budget).
    stall_generations: Option<u32>,
    /// Online per-`(model, rung)` rank-fidelity tracker.
    calibration: RankFidelity,
    /// Cached analytical pricer (condensed graphs per model).
    analytical: AnalyticalPricer,
    /// Proxy primary objectives observed per flat index, by rung name:
    /// consumed into `calibration` when the point graduates to full
    /// fidelity.
    proxy_evidence: HashMap<usize, Vec<(String, f64)>>,
    /// Memoized area-cap verdicts per flat index (arch-only, so they
    /// are exact before any simulation).
    arch_feasibility: HashMap<usize, bool>,
    /// Per-rung evaluation counts over the run (wire rung names).
    rung_used: BTreeMap<String, u64>,
    /// Total per-model frontier hypervolume after each generation
    /// (stopping rule only).
    hv_history: Vec<f64>,
    /// Whether the stopping rule ended the run.
    stalled: bool,
}

impl Run<'_> {
    fn space(&self) -> usize {
        self.axes.point_count()
    }

    fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.used)
    }

    fn job_of(&mut self, point: PointSpec) -> Job {
        let arch = point.arch(&self.base);
        let model = self
            .resolved
            .entry((point.model.name.clone(), point.model.resolution))
            .or_insert_with(|| {
                models::by_name(&point.model.name, point.model.resolution)
                    .map(Arc::new)
                    .ok_or_else(|| DseError::UnknownModel { name: point.model.name.clone() })
            })
            .clone();
        let traffic = self.traffic.as_ref().and_then(|(workload, pool)| match pool {
            Some(shared) => Some(Arc::clone(shared)),
            None => model.as_ref().ok().map(|resolved| {
                Arc::new(TrafficJob {
                    workload: workload.clone(),
                    colocated: vec![(
                        served_model_name(&point.model.name, point.model.resolution),
                        Arc::clone(resolved),
                    )],
                })
            }),
        });
        Job { spec: point, arch, model, traffic }
    }

    /// Submits one batch through the service (journaled when attached)
    /// and waits for it; charges one budget unit per point.
    fn evaluate_batch(&mut self, points: Vec<PointSpec>) -> Result<Vec<DseOutcome>, DseError> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        self.used += points.len() as u64;
        let jobs: Vec<Job> = points.into_iter().map(|point| self.job_of(point)).collect();
        let batch = match &self.journal {
            Some(journal) => self.service.submit_jobs_journaled(jobs, journal),
            None => self.service.submit_jobs(jobs),
        }
        .map_err(|rejected| DseError::io(format!("exploration batch rejected: {rejected}")))?;
        Ok(batch.wait())
    }

    /// Records full-fidelity outcomes and their index vectors, feeding
    /// any proxy evidence the point accumulated on its way up the
    /// ladder into the rank-fidelity calibration.
    fn record(&mut self, flats: &[usize], outcomes: Vec<DseOutcome>) {
        debug_assert_eq!(flats.len(), outcomes.len());
        for (&flat, outcome) in flats.iter().zip(outcomes) {
            if let Some(evidence) = self.proxy_evidence.remove(&flat) {
                if let Some((full_primary, _)) = self.objectives_of(&outcome) {
                    for (rung, proxy_primary) in evidence {
                        self.calibration.record(
                            &outcome.point.model.name,
                            &rung,
                            proxy_primary,
                            full_primary as f64,
                        );
                    }
                }
            }
            self.points.push(self.axes.indices_of(flat));
            self.outcomes.push(outcome);
        }
    }

    /// Remembers the proxy primary objective a rung measured for a
    /// point (consumed by [`Run::record`] on graduation).
    fn note_proxy(&mut self, flat: usize, rung: &str, primary: u64) {
        self.proxy_evidence.entry(flat).or_default().push((rung.to_owned(), primary as f64));
    }

    /// The scouting budget share in effect: the pinned share when set,
    /// otherwise the mean of [`scout_share_for`] over every
    /// `(model, coarse rung)` pair — uncalibrated pairs contribute the
    /// historical half, so a fresh run splits the budget exactly as the
    /// fixed-cap engine did. 0 when the ladder has no simulated coarse
    /// rung (nothing to scout with).
    fn scout_share(&self) -> f64 {
        if let Some(pinned) = self.scout_share_pin {
            return pinned;
        }
        let rungs = self.ladder.coarse_rung_names();
        if rungs.is_empty() {
            return 0.0;
        }
        let mut names: Vec<&str> = self.axes.models.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        let mut total = 0.0;
        let mut count = 0usize;
        for model in &names {
            for rung in &rungs {
                total += scout_share_for(self.calibration.tau(model, rung));
                count += 1;
            }
        }
        total / count.max(1) as f64
    }

    /// The scouting allowance in evaluations: `⌈budget × share⌉`,
    /// recomputed every generation so the split tracks the calibration
    /// as it accumulates.
    fn scout_budget(&self) -> usize {
        (self.budget as f64 * self.scout_share()).ceil() as usize
    }

    /// Whether a point passes the arch-derived area cap (memoized; the
    /// cap is exact before any simulation). Always true with inactive
    /// caps.
    fn arch_feasible(&mut self, flat: usize) -> bool {
        if !self.caps.is_active() {
            return true;
        }
        if let Some(&known) = self.arch_feasibility.get(&flat) {
            return known;
        }
        let point = self.axes.point(self.axes.indices_of(flat));
        let feasible = self.caps.admits_arch(&point.arch(&self.base));
        self.arch_feasibility.insert(flat, feasible);
        feasible
    }

    /// The stopping rule: appends the current total frontier
    /// hypervolume to the history and reports whether the configured
    /// number of consecutive stalled generations has been reached.
    /// Without a configured rule this is free and always false.
    fn generation_stalled(&mut self) -> bool {
        let Some(limit) = self.stall_generations else { return false };
        self.hv_history.push(self.current_hypervolume());
        if hypervolume_stalled(&self.hv_history, limit as usize) {
            self.stalled = true;
            return true;
        }
        false
    }

    /// Total per-model frontier hypervolume of the recorded outcomes
    /// under the run objective, each model against its own worst-corner
    /// reference point.
    fn current_hypervolume(&self) -> f64 {
        let mut by_model: BTreeMap<&str, Vec<(u64, f64)>> = BTreeMap::new();
        for outcome in &self.outcomes {
            if let Some(objectives) = self.objectives_of(outcome) {
                by_model.entry(outcome.point.model.name.as_str()).or_default().push(objectives);
            }
        }
        by_model
            .values()
            .map(|points| {
                let reference = (
                    points.iter().map(|p| p.0).max().unwrap_or(0) + 1,
                    points.iter().map(|p| p.1).fold(0.0f64, f64::max) * 1.01 + f64::EPSILON,
                );
                analysis::hypervolume(points, reference)
            })
            .sum()
    }

    /// Cumulative per-model frontier size over the recorded outcomes.
    fn frontier_points(&self) -> usize {
        analysis::pareto_frontier_by_model_with(&self.outcomes, self.objective)
            .values()
            .map(Vec::len)
            .sum()
    }

    fn push_generation(
        &mut self,
        phase: &str,
        submitted: usize,
        coarse: usize,
        rungs: BTreeMap<String, usize>,
    ) {
        for (rung, count) in &rungs {
            *self.rung_used.entry(rung.clone()).or_default() += *count as u64;
            self.obs.rung_add(rung, *count as u64);
        }
        for (key, tau) in self.calibration.snapshot() {
            if let Some((model, rung)) = key.split_once('/') {
                self.obs.set_rank_fidelity(model, rung, tau);
            }
        }
        let scout_left = self.scout_budget().saturating_sub(self.coarse_used as usize);
        self.obs.scout_remaining.set(scout_left as i64);
        let stats = GenerationStats {
            index: self.generations.len(),
            phase: phase.to_owned(),
            submitted,
            coarse,
            frontier_points: self.frontier_points(),
            rungs,
        };
        let remaining = self.remaining_budget();
        self.obs.finish_generation(&stats, remaining);
        self.generations.push(stats);
    }

    /// The finite objectives of a recorded outcome under the run's
    /// [`Objective`] (`None` for failed points, non-finite energies,
    /// or unserved points under [`Objective::P99Latency`]).
    fn objectives_of(&self, outcome: &DseOutcome) -> Option<(u64, f64)> {
        let evaluation = outcome.evaluation()?;
        let objectives = self.objective.of(evaluation)?;
        objectives.1.is_finite().then_some(objectives)
    }

    /// Takes a strided (stratified) sample of up to `count` members of
    /// the ascending `pool`, removing them in one `retain` pass: even
    /// coverage of the grid — every model's subspace gets scouts — with
    /// the phase randomized from the run PRNG. A uniform sample of the
    /// same size routinely leaves whole regions of a small scouting
    /// budget unseen. (The pool is an index vector over the grid —
    /// O(space) memory, fine up to ~10⁷ points; beyond that the strided
    /// positions would need to be computed arithmetically like the
    /// evolutionary fallback scan.)
    fn sample_strided(&mut self, pool: &mut Vec<usize>, count: usize) -> Vec<usize> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let stride = pool.len() / count;
        let start = self.rng.below(stride.max(1));
        let positions: HashSet<usize> = (0..count).map(|i| start + i * stride).collect();
        let picked: Vec<usize> = {
            let mut ordered: Vec<usize> = positions.iter().copied().collect();
            ordered.sort_unstable();
            ordered.into_iter().map(|at| pool[at]).collect()
        };
        let mut at = 0;
        pool.retain(|_| {
            let keep = !positions.contains(&at);
            at += 1;
            keep
        });
        picked
    }
}

// ---------------------------------------------------------------------------
// Successive halving
// ---------------------------------------------------------------------------

/// The finite `(cycles, energy)` objectives of a point, or `None` for a
/// failed/non-finite evaluation.
type Objectives = Option<(u64, f64)>;

/// Proxy evidence about one in-space point: its flat grid index, its
/// model name, the ladder level its objectives were measured at, and
/// those objectives (points sharing a projection share its objectives).
type PoolEntry = (usize, String, usize, Objectives);

/// Selection candidates grouped per model: `(index, (cycles, energy))`
/// pairs, where the index is an outcome index (parent selection).
type CandidatesByModel<'a> = BTreeMap<&'a str, Vec<(usize, (u64, f64))>>;

/// Appends a point's evidence to the promotion pool, indexed by flat
/// grid index so ladder climbs can update it in place.
fn push_pool(
    pool: &mut Vec<PoolEntry>,
    index: &mut HashMap<usize, usize>,
    flat: usize,
    model: String,
    objectives: Objectives,
) {
    index.insert(flat, pool.len());
    pool.push((flat, model, 0, objectives));
}

/// Replaces a pooled point's evidence with measurements from a higher
/// ladder rung.
fn climb_pool(
    pool: &mut [PoolEntry],
    index: &HashMap<usize, usize>,
    flat: usize,
    level: usize,
    objectives: Objectives,
) {
    if let Some(&at) = index.get(&flat) {
        pool[at].2 = level;
        pool[at].3 = objectives;
    }
}

/// The hypervolume stopping rule: true when the last `limit`
/// generation-over-generation deltas are all relatively negligible
/// (within [`STALL_RELATIVE_EPSILON`] of the preceding reading). Never
/// stalls with `limit == 0` or before `limit + 1` readings exist.
fn hypervolume_stalled(history: &[f64], limit: usize) -> bool {
    if limit == 0 || history.len() <= limit {
        return false;
    }
    history[history.len() - limit - 1..]
        .windows(2)
        .all(|pair| (pair[1] - pair[0]).abs() <= STALL_RELATIVE_EPSILON * pair[0].abs())
}

fn successive_halving(run: &mut Run) -> Result<(), DseError> {
    let space = run.space();
    let generation = generation_size(space);
    let chain: Vec<Fidelity> = run.ladder.rungs().to_vec();
    let scout = chain.first().cloned();
    let scout_name = scout.as_ref().map(Fidelity::name).unwrap_or_default();
    // What a point graduating past pool level `level` evaluates as:
    // a terminal [`Fidelity::Replay`] rung relabels the promotion so
    // the batch rides the trace-replay fast path; everything else is a
    // plain full-fidelity submission.
    let terminal = |next: usize| -> &'static str {
        match chain.get(next) {
            Some(Fidelity::Replay) => "replay",
            _ => "full",
        }
    };
    // Direct evaluations under a replay scout *are* the replay rung.
    let direct_rung = match &scout {
        Some(Fidelity::Replay) => "replay",
        _ => "full",
    };
    // Flat indices never sampled at any fidelity; shrinks as
    // generations consume it.
    let mut unseen: Vec<usize> = (0..space).collect();
    // Accumulated proxy evidence, one entry per sampled in-space point.
    let mut pool: Vec<PoolEntry> = Vec::new();
    let mut pool_index: HashMap<usize, usize> = HashMap::new();
    let mut proxy_results: HashMap<String, Objectives> = HashMap::new();
    // Full outcomes of the proxy evaluations, so an in-space point that
    // *is* a previously scouted projection is recorded from the held
    // outcome instead of being submitted (and charged) a second time.
    let mut proxy_outcomes_by_label: HashMap<String, DseOutcome> = HashMap::new();

    while run.remaining_budget() > 0 {
        run.obs.begin_generation();
        let mut rungs: BTreeMap<String, usize> = BTreeMap::new();
        // Simulated proxy evaluations (scouting and ladder climbs) get
        // at most the calibrated share of the total budget; the rest is
        // reserved for full-fidelity promotions of the survivors.
        // Without the split, late generations keep paying for proxy
        // evidence they no longer have the budget to act on. Sampled
        // points that are their own projection are full-fidelity
        // evaluations and do not count against the scouting share.
        let scout_budget = run.scout_budget();

        // --- Scouting rung: a strided sample of fresh points priced at
        // the bottom of the ladder (skipped once the scouting share of
        // the budget is spent). ---
        let remaining = run.remaining_budget() as usize;
        let sample_size = match &scout {
            // Analytical pricing is free: a full generation regardless
            // of remaining budget.
            Some(Fidelity::Analytical) => generation,
            Some(_) if (run.coarse_used as usize) < scout_budget => generation.min(remaining),
            Some(_) => 0,
            // An empty ladder degenerates to pure strided search.
            None => generation.min(remaining),
        };
        let sampled = run.sample_strided(&mut unseen, sample_size);
        let mut direct = Vec::new(); // projection == point: full fidelity
        let mut projected = Vec::new();
        match &scout {
            Some(Fidelity::Analytical) => {
                for &flat in &sampled {
                    let point = run.axes.point(run.axes.indices_of(flat));
                    let objectives = run.analytical.objectives(&point);
                    if let Some((cycles, _)) = objectives {
                        run.note_proxy(flat, &scout_name, cycles);
                    }
                    push_pool(&mut pool, &mut pool_index, flat, point.model.name, objectives);
                }
                if !sampled.is_empty() {
                    *rungs.entry(scout_name.clone()).or_default() += sampled.len();
                }
            }
            Some(rung) => {
                for &flat in &sampled {
                    let point = run.axes.point(run.axes.indices_of(flat));
                    let projection = rung.project(&point);
                    if projection == point {
                        run.visited.insert(flat);
                        if let Some(outcome) = proxy_outcomes_by_label.get(&point.label()) {
                            // This point was already evaluated as
                            // another point's projection: record the
                            // held outcome for free.
                            let objectives = run.objectives_of(outcome);
                            push_pool(
                                &mut pool,
                                &mut pool_index,
                                flat,
                                point.model.name.clone(),
                                objectives,
                            );
                            run.record(&[flat], vec![outcome.clone()]);
                        } else {
                            direct.push((flat, point));
                        }
                    } else {
                        projected.push((flat, point, projection));
                    }
                }
            }
            None => {
                for &flat in &sampled {
                    let point = run.axes.point(run.axes.indices_of(flat));
                    run.visited.insert(flat);
                    direct.push((flat, point));
                }
            }
        }
        // A direct point is its own projection, so a sibling sampled in
        // the same generation (e.g. the same model at a higher
        // resolution) must share its evaluation, not submit a duplicate
        // proxy job.
        let direct_labels: HashSet<String> =
            direct.iter().map(|(_, point)| point.label()).collect();
        let mut scout_jobs: Vec<(usize, String, PointSpec)> = Vec::new();
        // Points whose projection is evaluated by (or shared with) this
        // generation's batches: their pool evidence is filled in
        // *after* the batches land, so a same-generation label
        // collision cannot freeze a placeholder into the pool.
        let mut shared: Vec<(usize, String, String)> = Vec::new();
        for (flat, point, projection) in projected {
            let label = projection.label();
            match proxy_results.get(&label) {
                // A previous generation already paid for (or failed)
                // this projection: reuse its evidence.
                Some(&objectives) => {
                    if let Some((cycles, _)) = objectives {
                        run.note_proxy(flat, &scout_name, cycles);
                    }
                    push_pool(&mut pool, &mut pool_index, flat, point.model.name, objectives);
                }
                None => {
                    if !direct_labels.contains(&label)
                        && !scout_jobs.iter().any(|(_, pending, _)| pending == &label)
                    {
                        scout_jobs.push((flat, label.clone(), projection));
                    }
                    shared.push((flat, point.model.name, label));
                }
            }
        }
        // Enforce the scouting allowance on the actual proxy jobs
        // (their count is only known after classification): projections
        // beyond the allowance are dropped and their points returned to
        // the unseen pool, so the promotion rung always keeps its
        // share.
        let mut allowance = scout_budget.saturating_sub(run.coarse_used as usize);
        if scout_jobs.len() > allowance {
            let dropped: HashSet<String> =
                scout_jobs[allowance..].iter().map(|(_, label, _)| label.clone()).collect();
            scout_jobs.truncate(allowance);
            shared.retain(|(flat, _, label)| {
                if dropped.contains(label) {
                    unseen.push(*flat);
                    false
                } else {
                    true
                }
            });
            unseen.sort_unstable();
        }
        allowance -= scout_jobs.len();

        let direct_flats: Vec<usize> = direct.iter().map(|(flat, _)| *flat).collect();
        let direct_points: Vec<PointSpec> = direct.into_iter().map(|(_, point)| point).collect();
        let direct_outcomes = run.evaluate_batch(direct_points)?;
        for (&flat, outcome) in direct_flats.iter().zip(&direct_outcomes) {
            let objectives = run.objectives_of(outcome);
            push_pool(
                &mut pool,
                &mut pool_index,
                flat,
                outcome.point.model.name.clone(),
                objectives,
            );
            // A direct point is its own projection: register it so a
            // sibling projecting onto it (e.g. the same model at a
            // higher resolution) reuses this evaluation instead of
            // paying budget for a proxy job the cache already holds.
            proxy_results.insert(outcome.point.label(), objectives);
        }
        if !direct_flats.is_empty() {
            *rungs.entry(direct_rung.to_owned()).or_default() += direct_flats.len();
        }
        run.record(&direct_flats, direct_outcomes);

        let scout_points: Vec<PointSpec> =
            scout_jobs.iter().map(|(_, _, projection)| projection.clone()).collect();
        let scout_count = scout_points.len();
        run.coarse_used += scout_count as u64;
        let scout_outcomes = run.evaluate_batch(scout_points)?;
        for ((_, label, _), outcome) in scout_jobs.iter().zip(&scout_outcomes) {
            proxy_results.insert(label.clone(), run.objectives_of(outcome));
            proxy_outcomes_by_label.insert(label.clone(), outcome.clone());
        }
        if scout_count > 0 {
            *rungs.entry(scout_name.clone()).or_default() += scout_count;
        }
        for (flat, model, label) in shared {
            let objectives = proxy_results.get(&label).copied().flatten();
            if let Some((cycles, _)) = objectives {
                run.note_proxy(flat, &scout_name, cycles);
            }
            push_pool(&mut pool, &mut pool_index, flat, model, objectives);
        }

        // --- Promotion: climb survivors one rung up the ladder, best
        // proxy Pareto rank first (ascending cycles within a rank);
        // points at the top of the chain graduate to full fidelity. The
        // proxy objectives are only a proxy, so the band behind the
        // scouted frontier still earns a look while promotion budget
        // remains. With active caps, arch-infeasible points sort behind
        // every feasible candidate: dominated-but-feasible fallbacks
        // get their full-fidelity look first. ---
        let mut by_model: PromotionPool = BTreeMap::new();
        for (flat, model, level, objectives) in &pool {
            if let Some(objectives) = objectives {
                by_model.entry(model.clone()).or_default().push((*flat, *level, *objectives));
            }
        }
        let mut queues: Vec<Vec<(usize, usize)>> = Vec::new();
        for candidates in by_model.values() {
            let objectives: Vec<(u64, f64)> =
                candidates.iter().map(|&(_, _, objectives)| objectives).collect();
            let ranks = analysis::pareto_ranks(&objectives);
            let feasible: Vec<bool> =
                candidates.iter().map(|&(flat, _, _)| run.arch_feasible(flat)).collect();
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            order.sort_by(|&a, &b| {
                feasible[b]
                    .cmp(&feasible[a])
                    .then(ranks[a].cmp(&ranks[b]))
                    .then(objectives[a].0.cmp(&objectives[b].0))
                    .then(a.cmp(&b))
            });
            queues.push(
                order
                    .into_iter()
                    .filter(|&local| !run.visited.contains(&candidates[local].0))
                    .map(|local| (candidates[local].0, candidates[local].1))
                    .collect(),
            );
        }
        // Round-robin across models so a tight budget still promotes
        // every workload's best candidates.
        let mut full_promotions: Vec<(usize, &'static str)> = Vec::new();
        let mut climb_jobs: Vec<(usize, String, PointSpec, String)> = Vec::new();
        let mut climb_links: Vec<(usize, usize, String, String)> = Vec::new();
        let mut free_climbs = 0usize;
        let mut planned = 0usize;
        let mut cursor = 0;
        let lanes = queues.len().max(1);
        while (planned as u64) < run.remaining_budget()
            && queues.iter().any(|queue| !queue.is_empty())
        {
            let queue = &mut queues[cursor % lanes];
            if let Some(&(flat, level)) = queue.first() {
                queue.remove(0);
                let next = level + 1;
                let climb = match chain.get(next) {
                    Some(rung @ Fidelity::CoarseSim(_)) => {
                        let point = run.axes.point(run.axes.indices_of(flat));
                        let projection = rung.project(&point);
                        (projection != point).then(|| (projection, rung.name()))
                    }
                    _ => None,
                };
                match climb {
                    Some((projection, rung_name)) => {
                        let label = projection.label();
                        if let Some(&objectives) = proxy_results.get(&label) {
                            // Another point's projection already paid
                            // for this rung: climb for free.
                            if let Some((cycles, _)) = objectives {
                                run.note_proxy(flat, &rung_name, cycles);
                            }
                            climb_pool(&mut pool, &pool_index, flat, next, objectives);
                            free_climbs += 1;
                        } else if climb_jobs.iter().any(|(_, pending, _, _)| pending == &label) {
                            // Shares a climb job already planned this
                            // round; evidence fills in after the batch.
                            climb_links.push((flat, next, rung_name, label));
                        } else if allowance > 0 {
                            allowance -= 1;
                            planned += 1;
                            climb_jobs.push((flat, label.clone(), projection, rung_name.clone()));
                            climb_links.push((flat, next, rung_name, label));
                        } else {
                            // The scouting allowance is spent: graduate
                            // the point directly so promotion budget
                            // never strands behind an unaffordable
                            // intermediate rung.
                            run.visited.insert(flat);
                            planned += 1;
                            full_promotions.push((flat, terminal(chain.len())));
                        }
                    }
                    None => {
                        run.visited.insert(flat);
                        planned += 1;
                        full_promotions.push((flat, terminal(next)));
                    }
                }
            }
            cursor += 1;
        }

        let climb_points: Vec<PointSpec> =
            climb_jobs.iter().map(|(_, _, projection, _)| projection.clone()).collect();
        let climb_count = climb_points.len();
        run.coarse_used += climb_count as u64;
        let climb_outcomes = run.evaluate_batch(climb_points)?;
        for ((_, label, _, rung_name), outcome) in climb_jobs.iter().zip(&climb_outcomes) {
            proxy_results.insert(label.clone(), run.objectives_of(outcome));
            proxy_outcomes_by_label.insert(label.clone(), outcome.clone());
            *rungs.entry(rung_name.clone()).or_default() += 1;
        }
        for (flat, next, rung_name, label) in climb_links {
            let objectives = proxy_results.get(&label).copied().flatten();
            if let Some((cycles, _)) = objectives {
                run.note_proxy(flat, &rung_name, cycles);
            }
            climb_pool(&mut pool, &pool_index, flat, next, objectives);
        }

        let full_flats: Vec<usize> = full_promotions.iter().map(|&(flat, _)| flat).collect();
        let promoted_points: Vec<PointSpec> =
            full_flats.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
        let promoted_outcomes = run.evaluate_batch(promoted_points)?;
        run.record(&full_flats, promoted_outcomes);
        for (_, rung_name) in &full_promotions {
            *rungs.entry((*rung_name).to_owned()).or_default() += 1;
        }

        let submitted = direct_flats.len() + scout_count + climb_count + full_promotions.len();
        run.push_generation("halving", submitted, scout_count + climb_count, rungs);
        if submitted == 0 && free_climbs == 0 {
            // Nothing left to sample, climb, or promote: the space (or
            // the promotable frontier) is exhausted.
            break;
        }
        if run.generation_stalled() {
            break;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Evolutionary search
// ---------------------------------------------------------------------------

fn evolutionary(run: &mut Run) -> Result<(), DseError> {
    let space = run.space();
    let population = generation_size(space);

    // Seed: a sparse strided sample of the grid. The model axis is the
    // outermost, so the stride covers every workload.
    run.obs.begin_generation();
    let mut seeds: Vec<usize> =
        (0..population.min(space)).map(|i| i * space / population.min(space)).collect();
    seeds.dedup();
    seeds.truncate(run.remaining_budget() as usize);
    for &flat in &seeds {
        run.visited.insert(flat);
    }
    let seed_points: Vec<PointSpec> =
        seeds.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
    let submitted = seed_points.len();
    let seed_outcomes = run.evaluate_batch(seed_points)?;
    run.record(&seeds, seed_outcomes);
    let seed_rungs = if submitted > 0 {
        BTreeMap::from([("full".to_owned(), submitted)])
    } else {
        BTreeMap::new()
    };
    run.push_generation("seed", submitted, 0, seed_rungs);

    // Breed half a population per generation: twice the selection
    // rounds per budget, which matters far more than brood size when
    // the budget is a fraction of the space. With an analytical rung on
    // the ladder, a triple brood is bred and the free estimator keeps
    // the most promising (feasible-first, ascending estimated cycles).
    let brood = (population / 2).max(2);
    let prescreen = run.ladder.has_analytical();
    while run.remaining_budget() > 0 && run.visited.len() < space {
        run.obs.begin_generation();
        let mut rungs: BTreeMap<String, usize> = BTreeMap::new();
        let parents = select_parents(run, population);
        let want = if prescreen { brood * 3 } else { brood };
        let mut children = offspring(run, &parents, want);
        if children.is_empty() {
            break;
        }
        if prescreen && children.len() > 1 {
            *rungs.entry("analytical".to_owned()).or_default() += children.len();
            let keep = brood.min(children.len()).min(run.remaining_budget() as usize);
            let priced: Vec<(usize, bool, Objectives)> = children
                .iter()
                .map(|&flat| {
                    let point = run.axes.point(run.axes.indices_of(flat));
                    let objectives = run.analytical.objectives(&point);
                    (flat, run.arch_feasible(flat), objectives)
                })
                .collect();
            let mut order: Vec<usize> = (0..priced.len()).collect();
            order.sort_by(|&a, &b| {
                let (_, fa, oa) = priced[a];
                let (_, fb, ob) = priced[b];
                fb.cmp(&fa)
                    .then_with(|| match (oa, ob) {
                        (Some(x), Some(y)) => x.0.cmp(&y.0),
                        (Some(_), None) => std::cmp::Ordering::Less,
                        (None, Some(_)) => std::cmp::Ordering::Greater,
                        (None, None) => std::cmp::Ordering::Equal,
                    })
                    .then(a.cmp(&b))
            });
            children = order
                .into_iter()
                .take(keep)
                .map(|at| {
                    let (flat, _, objectives) = priced[at];
                    if let Some((cycles, _)) = objectives {
                        run.note_proxy(flat, "analytical", cycles);
                    }
                    flat
                })
                .collect();
        }
        for &flat in &children {
            run.visited.insert(flat);
        }
        let child_points: Vec<PointSpec> =
            children.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
        let submitted = child_points.len();
        let child_outcomes = run.evaluate_batch(child_points)?;
        run.record(&children, child_outcomes);
        *rungs.entry("full".to_owned()).or_default() += submitted;
        run.push_generation("generation", submitted, 0, rungs);
        if run.generation_stalled() {
            break;
        }
    }
    Ok(())
}

/// Selects up to `count` parents from the evaluated population: per
/// model, sort by (cap feasibility, Pareto rank, descending crowding
/// distance, evaluation order), then interleave the models round-robin
/// so every workload keeps breeding stock. With inactive caps every
/// outcome is feasible and the ordering is the classic NSGA-II one;
/// with active caps, cap-violating outcomes breed only after every
/// feasible candidate — including dominated-but-feasible ones.
fn select_parents(run: &Run, count: usize) -> Vec<[usize; AXIS_COUNT]> {
    let mut by_model: CandidatesByModel = BTreeMap::new();
    for (at, outcome) in run.outcomes.iter().enumerate() {
        if let Some(objectives) = run.objectives_of(outcome) {
            by_model.entry(outcome.point.model.name.as_str()).or_default().push((at, objectives));
        }
    }
    let mut queues: Vec<std::vec::IntoIter<usize>> = by_model
        .values()
        .map(|group| {
            let objectives: Vec<(u64, f64)> = group.iter().map(|(_, o)| *o).collect();
            let ranks = analysis::pareto_ranks(&objectives);
            let crowding = analysis::crowding_distances(&objectives, &ranks);
            let feasible: Vec<bool> =
                group.iter().map(|&(at, _)| run.caps.admits_outcome(&run.outcomes[at])).collect();
            let mut order: Vec<usize> = (0..group.len()).collect();
            order.sort_by(|&a, &b| {
                feasible[b]
                    .cmp(&feasible[a])
                    .then(ranks[a].cmp(&ranks[b]))
                    .then(crowding[b].total_cmp(&crowding[a]))
                    .then(group[a].0.cmp(&group[b].0))
            });
            order.into_iter().map(|local| group[local].0).collect::<Vec<usize>>().into_iter()
        })
        .collect();
    let mut parents = Vec::new();
    let mut cursor = 0;
    let lanes = queues.len().max(1);
    while parents.len() < count && queues.iter().any(|queue| queue.len() > 0) {
        if let Some(at) = queues[cursor % lanes].next() {
            parents.push(run.points[at]);
        }
        cursor += 1;
    }
    parents
}

/// Breeds up to `count` fresh (unvisited) children: mutation steps one
/// axis to an adjacent value, crossover mixes two parents per axis.
/// When breeding stalls (tiny spaces, exhausted neighborhoods), the
/// remainder is filled by a deterministic scan from a random grid
/// offset, which guarantees a full-budget run exhausts the space.
fn offspring(run: &mut Run, parents: &[[usize; AXIS_COUNT]], count: usize) -> Vec<usize> {
    let space = run.space();
    let unvisited = space - run.visited.len();
    let target = count.min(run.remaining_budget() as usize).min(unvisited);
    let mut children: Vec<usize> = Vec::new();
    let mut fresh: HashSet<usize> = HashSet::new();
    let mut tries = 0;
    // Parents are rank-ordered (round-robin across models), so a
    // min-of-two tournament on the index biases breeding toward the
    // frontier without starving diversity.
    let tournament = |rng: &mut XorShift, len: usize| rng.below(len).min(rng.below(len));
    while children.len() < target && tries < 20 * count && !parents.is_empty() {
        tries += 1;
        let child = if parents.len() >= 2 && run.rng.coin() {
            let a = parents[tournament(&mut run.rng, parents.len())];
            let b = parents[tournament(&mut run.rng, parents.len())];
            crossover(&mut run.rng, a, b)
        } else {
            let parent = parents[tournament(&mut run.rng, parents.len())];
            mutate(&mut run.rng, &run.axes, parent)
        };
        let flat = run.axes.flat_of(child);
        if !run.visited.contains(&flat) && fresh.insert(flat) {
            children.push(flat);
        }
    }
    if children.len() < target {
        let start = run.rng.below(space.max(1));
        for offset in 0..space {
            if children.len() >= target {
                break;
            }
            let flat = (start + offset) % space;
            if !run.visited.contains(&flat) && fresh.insert(flat) {
                children.push(flat);
            }
        }
    }
    children
}

fn mutate(
    rng: &mut XorShift,
    axes: &SweepAxes,
    parent: [usize; AXIS_COUNT],
) -> [usize; AXIS_COUNT] {
    let dims = axes.dims();
    let movable: Vec<usize> = (0..AXIS_COUNT).filter(|&axis| dims[axis] > 1).collect();
    let mut child = parent;
    if movable.is_empty() {
        return child;
    }
    let axis = movable[rng.below(movable.len())];
    let at = child[axis];
    child[axis] = if at == 0 {
        1
    } else if at + 1 == dims[axis] {
        at - 1
    } else if rng.coin() {
        at + 1
    } else {
        at - 1
    };
    child
}

fn crossover(
    rng: &mut XorShift,
    a: [usize; AXIS_COUNT],
    b: [usize; AXIS_COUNT],
) -> [usize; AXIS_COUNT] {
    let mut child = a;
    for axis in 0..AXIS_COUNT {
        if rng.coin() {
            child[axis] = b[axis];
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use cimflow_compiler::{SearchMode, Strategy};

    fn space() -> SweepSpec {
        SweepSpec::new()
            .named("explore-unit")
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
            .with_flit_sizes(&[8, 16])
    }

    #[test]
    fn spec_json_round_trips_and_defaults_apply() {
        let spec = ExploreSpec::new(space())
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(99);
        let back = ExploreSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let partial = ExploreSpec::from_json(
            "{\"space\": {\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}], \
             \"strategies\": [\"dp\"], \"mg_sizes\": [2, 4, 8, 16]}}",
        )
        .unwrap();
        assert_eq!(partial.budget, 4, "a quarter of the 4-point grid, floored at 4");
        assert_eq!(partial.algorithm, ExploreAlgorithm::Evolutionary);
        assert_eq!(partial.seed, DEFAULT_SEED);
        assert!(ExploreSpec::from_json("{\"budget\": 4}").is_err(), "space is required");

        assert_eq!(ExploreAlgorithm::from_name("sh"), Some(ExploreAlgorithm::SuccessiveHalving));
        assert_eq!(ExploreAlgorithm::from_name("evo"), Some(ExploreAlgorithm::Evolutionary));
        assert_eq!(ExploreAlgorithm::from_name("annealing"), None);
    }

    #[test]
    fn xorshift_is_deterministic_and_seed_sensitive() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let mut c = XorShift::new(8);
        let from_a: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let from_b: Vec<u64> = (0..8).map(|_| b.next()).collect();
        let from_c: Vec<u64> = (0..8).map(|_| c.next()).collect();
        assert_eq!(from_a, from_b);
        assert_ne!(from_a, from_c);
        // Adjacent even/odd seed pairs must diverge too (an unmixed
        // `seed ^ CONST | 1` used to collapse each such pair onto one
        // state).
        for seed in 0..64u64 {
            assert_ne!(
                XorShift::new(seed).next(),
                XorShift::new(seed + 1).next(),
                "seeds {seed} and {} collide",
                seed + 1
            );
        }
        let mut d = XorShift::new(0);
        assert!((0..8).all(|_| d.below(5) < 5));
    }

    #[test]
    fn coarse_projection_floors_resolution_and_pins_search() {
        let point = SweepSpec::new()
            .with_model("vgg19", 64)
            .with_strategies(&[Strategy::DpOptimized])
            .with_search_modes(&[SearchMode::Joint])
            .expand()
            .unwrap()[0]
            .clone();
        let rung = Fidelity::CoarseSim(COARSE_RESOLUTION);
        let coarse = rung.project(&point);
        assert_eq!(coarse.model.resolution, COARSE_RESOLUTION);
        assert_eq!(coarse.search, SearchMode::Sequential);
        assert_ne!(coarse, point);
        // A point already at the floor with the default search *is* its
        // own coarse projection.
        let fine = space().expand().unwrap()[0].clone();
        assert_eq!(rung.project(&fine), fine);
    }

    #[test]
    fn generation_size_scales_with_the_space() {
        assert_eq!(generation_size(1), 4);
        assert_eq!(generation_size(16), 4);
        assert_eq!(generation_size(100), 10);
        assert_eq!(generation_size(100_000), 32);
    }

    #[test]
    fn mutation_steps_one_axis_and_crossover_mixes() {
        let axes = space().axes().unwrap();
        let mut rng = XorShift::new(3);
        let parent = axes.indices_of(0);
        for _ in 0..32 {
            let child = mutate(&mut rng, &axes, parent);
            let moved: Vec<usize> =
                (0..AXIS_COUNT).filter(|&axis| child[axis] != parent[axis]).collect();
            assert_eq!(moved.len(), 1, "exactly one axis moves");
            let axis = moved[0];
            assert_eq!(child[axis].abs_diff(parent[axis]), 1, "the move is to an adjacent value");
        }
        let a = axes.indices_of(0);
        let b = axes.indices_of(axes.point_count() - 1);
        for _ in 0..32 {
            let child = crossover(&mut rng, a, b);
            for axis in 0..AXIS_COUNT {
                assert!(child[axis] == a[axis] || child[axis] == b[axis]);
            }
        }
    }

    #[test]
    fn shared_coarse_projections_do_not_drop_points() {
        // Two resolutions of one model project onto the *same* coarse
        // point (both floor to 32 px). Sampled in the same generation,
        // the projection must be scouted once and both siblings must
        // still be promotable — a frozen placeholder used to drop the
        // second sibling from the search forever.
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(1);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.coarse_evaluated, 1, "the shared projection is scouted once");
        assert_eq!(report.evaluated, 2, "both siblings reach full fidelity");
        assert_eq!(report.budget_used, 3);
    }

    #[test]
    fn in_space_coarse_projections_share_the_direct_evaluation() {
        // The 32 px point *is* the 64 px point's coarse projection and a
        // grid point of its own: one evaluation serves both roles, no
        // coarse job is submitted, and no budget is double-charged.
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(2)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(5);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.coarse_evaluated, 0, "the direct evaluation doubles as the scout");
        assert_eq!(report.evaluated, 2, "both grid points reach full fidelity");
        assert_eq!(report.budget_used, 2);
        assert_eq!(service.cache().stats().misses, 2, "nothing evaluates twice");
    }

    #[test]
    fn explore_counts_fidelity_splits_and_burns_down_the_budget_gauge() {
        use cimflow_obs::{MetricValue, MetricsRegistry};

        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(4096);
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(1);
        let service = EvalService::new(
            ServiceConfig::new()
                .with_workers(2)
                .with_metrics(registry.clone())
                .with_tracer(tracer.clone()),
        );
        let report = explore(&spec, &service).unwrap();

        let snapshot = registry.snapshot();
        let counter = |labels: &[(&str, &str)]| match snapshot.get("explore.evals", labels) {
            Some(MetricValue::Counter(n)) => *n,
            other => panic!("expected a counter at {labels:?}, got {other:?}"),
        };
        assert_eq!(counter(&[("fidelity", "coarse")]), report.coarse_evaluated as u64);
        assert_eq!(
            counter(&[("fidelity", "coarse")]) + counter(&[("fidelity", "full")]),
            report.budget_used
        );
        match snapshot.get("explore.budget_remaining", &[]) {
            Some(MetricValue::Gauge(left)) => {
                assert_eq!(*left as u64, spec.budget - report.budget_used)
            }
            other => panic!("expected the burn-down gauge, got {other:?}"),
        }
        // One generation span per recorded generation, attrs intact.
        let spans: Vec<_> =
            tracer.events().into_iter().filter(|e| e.category == "explore").collect();
        assert_eq!(spans.len(), report.generations.len());
        assert!(spans[0].attrs.iter().any(|(k, _)| k == "budget_remaining"));
    }

    #[test]
    fn explore_respects_the_budget_and_reports_a_frontier() {
        let spec = ExploreSpec::new(space()).with_budget(3).with_seed(11);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert!(report.budget_used <= 3);
        assert_eq!(report.evaluated, report.outcomes.len());
        assert!(report.evaluated >= 1);
        assert_eq!(report.space_points, 4);
        assert!(!report.frontier["mobilenetv2"].is_empty());
        assert!(!report.generations.is_empty());
        let submitted: usize = report.generations.iter().map(|g| g.submitted).sum();
        assert_eq!(submitted as u64, report.budget_used);

        // The same seed explores the same points; a different seed is
        // free to differ.
        let again = explore(&spec, &service).unwrap();
        assert_eq!(
            report.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
            again.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        );
        // And the warm service served every revisit from the cache.
        assert!(again.outcomes.iter().all(|o| o.cached));
    }

    #[test]
    fn explore_rejects_a_ladder_no_point_can_use() {
        let ladder = FidelityLadder::new(vec![Fidelity::CoarseSim(64)]).unwrap();
        let spec = ExploreSpec::new(space()).with_budget(3).with_ladder(ladder);
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let err = explore(&spec, &service).unwrap_err();
        assert!(err.to_string().contains("coarse64"), "got: {err}");

        let bad_share = ExploreSpec::new(space()).with_budget(3).with_scout_share(Some(1.5));
        assert!(explore(&bad_share, &service).is_err());
    }

    #[test]
    fn custom_coarse_rung_resolutions_are_honored() {
        // A 48 px rung instead of the default 32 px floor: the scouted
        // projections must land on the configured rung and be reported
        // under its name.
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8]);
        let ladder = FidelityLadder::new(vec![Fidelity::CoarseSim(48)]).unwrap();
        let spec = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(2)
            .with_ladder(ladder);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert!(report.rung_evaluated.contains_key("coarse48"), "{:?}", report.rung_evaluated);
        assert!(!report.rung_evaluated.contains_key("coarse32"));
        assert_eq!(report.coarse_evaluated as u64, report.rung_evaluated["coarse48"]);
    }

    #[test]
    fn analytical_rung_prices_for_free_and_calibrates() {
        // A pure-analytical ladder: scouting costs no budget, every
        // charged evaluation is full fidelity, and graduations feed the
        // rank-fidelity calibration.
        let ladder = FidelityLadder::new(vec![Fidelity::Analytical]).unwrap();
        let spec = ExploreSpec::new(space())
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(9)
            .with_ladder(ladder);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.budget_used, 3);
        assert_eq!(report.evaluated, 3);
        assert_eq!(report.coarse_evaluated, 0, "analytical pricing charges nothing");
        assert_eq!(report.rung_evaluated["analytical"], 4, "the whole generation is priced");
        assert_eq!(report.rung_evaluated["full"], 3);
        assert!(
            report.rank_fidelity.contains_key("mobilenetv2/analytical"),
            "three graduations reach the calibration floor: {:?}",
            report.rank_fidelity
        );
        assert_eq!(report.scout_share, 0.0, "no simulated proxy rung, no scouting split");
    }

    #[test]
    fn pinned_scout_share_reproduces_the_fixed_split() {
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let adaptive = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(1);
        let pinned = adaptive.clone().with_scout_share(Some(0.5));
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let a = explore(&adaptive, &service).unwrap();
        let b = explore(&pinned, &service).unwrap();
        assert_eq!(
            a.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
            b.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
            "below the calibration floor the adaptive split is the historical half"
        );
        assert_eq!(b.scout_share, 0.5);
    }

    #[test]
    fn hypervolume_stall_rule_needs_enough_flat_readings() {
        assert!(!hypervolume_stalled(&[1.0, 1.0, 1.0], 0), "limit 0 disables the rule");
        assert!(!hypervolume_stalled(&[1.0, 1.0], 2), "too few readings");
        assert!(hypervolume_stalled(&[1.0, 1.0, 1.0], 2));
        assert!(hypervolume_stalled(&[5.0, 1.0, 1.0, 1.0], 2), "older growth is forgiven");
        assert!(!hypervolume_stalled(&[1.0, 2.0, 2.0, 2.0], 3), "growth within the window");
        assert!(hypervolume_stalled(&[1.0, 2.0, 2.0, 2.0], 2));
        assert!(hypervolume_stalled(&[0.0, 0.0], 1), "an empty frontier can stall");
    }

    #[test]
    fn infeasible_caps_keep_a_dominated_but_feasible_frontier() {
        // A cap nothing satisfies: the frontier falls back to the
        // unconstrained one instead of vanishing.
        let impossible = FeasibilityCaps { max_area_mm2: Some(1e-6), max_power_w: None };
        let spec = ExploreSpec::new(space()).with_budget(3).with_seed(11).with_caps(impossible);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert!(!report.frontier["mobilenetv2"].is_empty(), "fallback frontier survives");

        // A cap everything satisfies changes nothing.
        let open = FeasibilityCaps { max_area_mm2: Some(1e9), max_power_w: Some(1e9) };
        let relaxed = ExploreSpec::new(space()).with_budget(3).with_seed(11).with_caps(open);
        let baseline = ExploreSpec::new(space()).with_budget(3).with_seed(11);
        let capped = explore(&relaxed, &service).unwrap();
        let free = explore(&baseline, &service).unwrap();
        assert_eq!(capped.frontier, free.frontier);
    }
}
