//! Adaptive Pareto-guided exploration: budgeted search over a sweep grid
//! that finds (most of) the per-model (cycles, energy) frontier at a
//! fraction of the exhaustive grid's evaluations.
//!
//! A [`SweepSpec`] describes a cartesian *space*; exhaustively expanding
//! it explodes combinatorially (models × strategies × search modes ×
//! chip counts × cores × memory × flit × MG sizes) even though the
//! Pareto frontier is tiny. An [`ExploreSpec`] wraps the same space with
//! an evaluation **budget**, an **algorithm** and a **seed**, and
//! [`explore`] spends the budget adaptively instead:
//!
//! * [`ExploreAlgorithm::SuccessiveHalving`] — generations of uniformly
//!   sampled points are first evaluated at *coarse fidelity* (the model
//!   resolution floored to 32 px, the search mode pinned to
//!   [`SearchMode::Sequential`]) and only the per-model Pareto survivors
//!   of the accumulated coarse pool are promoted to full fidelity. When
//!   a point's coarse projection *is* the point itself, the evaluation
//!   counts directly as full fidelity.
//! * [`ExploreAlgorithm::Evolutionary`] — a population seeded from a
//!   sparse (strided) grid sample evolves by mutation (step one axis to
//!   an adjacent value) and crossover (per-axis mixing of two parents);
//!   parents are selected by per-model Pareto rank, ties broken by
//!   NSGA-II crowding distance over (cycles, energy).
//!
//! Every generation is submitted as one batch through the shared
//! [`EvalService`] pipeline, so duplicate points coalesce in the
//! [`EvalCache`](crate::EvalCache) and an attached [`SweepJournal`]
//! makes an interrupted exploration resumable: re-running the same spec
//! and seed replays the identical trajectory with journaled points
//! served for free (no point is ever re-evaluated).
//!
//! Determinism: the engine carries its own xorshift64* PRNG seeded from
//! the spec (no `rand` dependency), batches are waited on in submission
//! order, and selection sorts with total orders — the same
//! `(space, budget, algorithm, seed)` always explores the same points.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_compiler::SearchMode;
use cimflow_nn::{models, Model};
use cimflow_obs::{thread_track, AttrValue, Counter, Gauge, Tracer};
use serde::{Content, Deserialize, Serialize};

use crate::analysis::Objective;
use crate::eval::{served_model_name, TrafficJob};
use crate::journal::SweepJournal;
use crate::spec::{SweepAxes, AXIS_COUNT};
use crate::{analysis, DseError, DseOutcome, EvalService, Job, PointSpec, SweepSpec};

/// The resolution coarse-fidelity evaluations are floored to: the
/// smallest geometry the model zoo keeps structurally identical (the
/// cross-crate tests pin it for the same reason).
pub const COARSE_RESOLUTION: u32 = 32;

/// Seed used when a spec does not carry one.
pub const DEFAULT_SEED: u64 = 0x5EED_C1F1;

/// The exploration strategy of an [`ExploreSpec`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExploreAlgorithm {
    /// Coarse-fidelity generations; per-model Pareto survivors are
    /// promoted to full fidelity.
    SuccessiveHalving,
    /// Pareto-rank/crowding-selected population with axis mutation and
    /// crossover.
    #[default]
    Evolutionary,
}

impl ExploreAlgorithm {
    /// Wire name of the algorithm.
    pub fn name(self) -> &'static str {
        match self {
            ExploreAlgorithm::SuccessiveHalving => "successive_halving",
            ExploreAlgorithm::Evolutionary => "evolutionary",
        }
    }

    /// Parses a wire/CLI name (short aliases accepted).
    pub fn from_name(text: &str) -> Option<Self> {
        match text {
            "successive_halving" | "successive-halving" | "sh" | "halving" => {
                Some(ExploreAlgorithm::SuccessiveHalving)
            }
            "evolutionary" | "evo" | "genetic" => Some(ExploreAlgorithm::Evolutionary),
            _ => None,
        }
    }
}

impl fmt::Display for ExploreAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for ExploreAlgorithm {
    fn serialize(&self) -> Content {
        Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for ExploreAlgorithm {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected algorithm name string"))?;
        ExploreAlgorithm::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown explore algorithm `{text}`")))
    }
}

/// A budgeted, seeded exploration of a sweep space — the on-disk input
/// of `cimflow-dse explore <spec.json>`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExploreSpec {
    /// The design space (the grid is *described*, never fully expanded
    /// into evaluations).
    pub space: SweepSpec,
    /// Maximum number of evaluations (coarse + full fidelity) the
    /// exploration may submit.
    pub budget: u64,
    /// The exploration algorithm.
    pub algorithm: ExploreAlgorithm,
    /// PRNG seed: the same `(space, budget, algorithm, seed)` explores
    /// the same points.
    pub seed: u64,
    /// The objective pair selection ranks by. [`Objective::P99Latency`]
    /// requires the space to carry a `traffic` section (otherwise no
    /// point has serving metrics and nothing is ever selected).
    pub objective: Objective,
}

impl ExploreSpec {
    /// Wraps a space with the default budget (a quarter of the grid, at
    /// least 4), the default algorithm, the default seed and the
    /// default (cycles, energy) objective.
    pub fn new(space: SweepSpec) -> Self {
        let budget = default_budget(&space);
        ExploreSpec {
            space,
            budget,
            algorithm: ExploreAlgorithm::default(),
            seed: DEFAULT_SEED,
            objective: Objective::default(),
        }
    }

    /// Sets the selection objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the evaluation budget.
    #[must_use]
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: ExploreAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Serializes the spec to pretty JSON (the on-disk format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ExploreSpec serialization cannot fail")
    }

    /// Parses a spec from JSON. Only `space` is required; an omitted
    /// `budget` defaults to a quarter of the grid (at least 4), an
    /// omitted `algorithm` to `evolutionary`, an omitted `seed` to
    /// [`DEFAULT_SEED`].
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] for malformed JSON.
    pub fn from_json(text: &str) -> Result<Self, DseError> {
        serde_json::from_str(text).map_err(|e| DseError::spec(e.to_string()))
    }
}

/// The default budget of a space: a quarter of the grid, at least 4.
fn default_budget(space: &SweepSpec) -> u64 {
    (space.point_count() as u64 / 4).max(4)
}

impl Deserialize for ExploreSpec {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map =
            content.as_map().ok_or_else(|| serde::Error::new("expected map for ExploreSpec"))?;
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        let space = match field("space") {
            Some(value) => SweepSpec::deserialize(value)
                .map_err(|e| serde::Error::new(format!("ExploreSpec.space: {e}")))?,
            None => return Err(serde::Error::new("ExploreSpec needs a `space`")),
        };
        fn opt<T: Deserialize>(
            value: Option<&Content>,
            name: &str,
        ) -> Result<Option<T>, serde::Error> {
            match value {
                Some(Content::Null) | None => Ok(None),
                Some(value) => T::deserialize(value)
                    .map(Some)
                    .map_err(|e| serde::Error::new(format!("ExploreSpec.{name}: {e}"))),
            }
        }
        let budget = opt(field("budget"), "budget")?.unwrap_or_else(|| default_budget(&space));
        Ok(ExploreSpec {
            space,
            budget,
            algorithm: opt(field("algorithm"), "algorithm")?.unwrap_or_default(),
            seed: opt(field("seed"), "seed")?.unwrap_or(DEFAULT_SEED),
            objective: opt(field("objective"), "objective")?.unwrap_or_default(),
        })
    }
}

/// One generation of an exploration run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenerationStats {
    /// 0-based generation number.
    pub index: usize,
    /// What the generation did (`seed`, `generation`, `halving`).
    pub phase: String,
    /// Evaluations submitted (budget charged) this generation.
    pub submitted: usize,
    /// Of `submitted`, how many ran at coarse fidelity.
    pub coarse: usize,
    /// Cumulative per-model frontier size over the full-fidelity
    /// outcomes after this generation.
    pub frontier_points: usize,
}

/// The result of an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// The algorithm that ran.
    pub algorithm: ExploreAlgorithm,
    /// The seed it ran under.
    pub seed: u64,
    /// Size of the exhaustive grid the exploration avoided expanding.
    pub space_points: usize,
    /// The configured budget.
    pub budget: u64,
    /// Evaluations actually submitted (coarse + full; journal-resumed
    /// submissions count — re-running them costs nothing but they were
    /// part of the trajectory).
    pub budget_used: u64,
    /// Full-fidelity (in-space) points evaluated: `outcomes.len()`.
    pub evaluated: usize,
    /// Coarse-fidelity evaluations (successive halving only).
    pub coarse_evaluated: usize,
    /// Every full-fidelity outcome, in deterministic submission order.
    /// Feed these to [`export`](crate::export) for CSV/JSON reports.
    pub outcomes: Vec<DseOutcome>,
    /// Per-model Pareto frontier: model name → indices into `outcomes`,
    /// ascending cycles.
    pub frontier: BTreeMap<String, Vec<usize>>,
    /// Per-generation trajectory.
    pub generations: Vec<GenerationStats>,
}

impl ExploreReport {
    /// The `(cycles, energy_mj)` objectives of one model's frontier,
    /// ascending cycles (empty for unknown models).
    pub fn frontier_objectives(&self, model: &str) -> Vec<(u64, f64)> {
        self.frontier
            .get(model)
            .map(|indices| {
                indices
                    .iter()
                    .filter_map(|&i| self.outcomes[i].evaluation())
                    .map(|e| (e.simulation.total_cycles, e.simulation.energy_mj()))
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Explores `spec.space` within `spec.budget` evaluations on `service`.
///
/// # Errors
///
/// Returns [`DseError::Spec`] when the space names no model or no
/// strategy, [`DseError::Io`] when the service refuses the batch (it is
/// shutting down). Per-point failures stay inside their outcomes.
pub fn explore(spec: &ExploreSpec, service: &EvalService) -> Result<ExploreReport, DseError> {
    explore_inner(spec, service, None)
}

/// [`explore`] against a [`SweepJournal`]: journaled points are served
/// without re-running and fresh outcomes are appended, so an interrupted
/// exploration resumes — with the same spec and seed the trajectory is
/// identical and every already-journaled point is free.
///
/// # Errors
///
/// See [`explore`].
pub fn explore_journaled(
    spec: &ExploreSpec,
    service: &EvalService,
    journal: &Arc<SweepJournal>,
) -> Result<ExploreReport, DseError> {
    explore_inner(spec, service, Some(Arc::clone(journal)))
}

fn explore_inner(
    spec: &ExploreSpec,
    service: &EvalService,
    journal: Option<Arc<SweepJournal>>,
) -> Result<ExploreReport, DseError> {
    let axes = spec.space.axes()?;
    // Mirror `expand_jobs`: validate the workload once per run and,
    // under co-location, resolve the whole model axis up front (an
    // unresolvable colocated model is a spec error, never a silently
    // shrunken mix).
    let traffic = match &spec.space.traffic {
        Some(section) => {
            let served = if section.colocate { spec.space.models.len() } else { 1 };
            section.workload.validate(served).map_err(|e| DseError::spec(e.to_string()))?;
            let pool = if section.colocate {
                let mut colocated = Vec::with_capacity(spec.space.models.len());
                for m in &spec.space.models {
                    let model = models::by_name(&m.name, m.resolution)
                        .map(Arc::new)
                        .ok_or_else(|| DseError::UnknownModel { name: m.name.clone() })?;
                    colocated.push((served_model_name(&m.name, m.resolution), model));
                }
                Some(Arc::new(TrafficJob { workload: section.workload.clone(), colocated }))
            } else {
                None
            };
            Some((section.workload.clone(), pool))
        }
        None => None,
    };
    let mut run = Run {
        axes,
        base: spec.space.base_arch(),
        service,
        obs: ExploreObs::new(service, spec),
        journal,
        rng: XorShift::new(spec.seed),
        budget: spec.budget,
        used: 0,
        coarse_used: 0,
        visited: HashSet::new(),
        points: Vec::new(),
        outcomes: Vec::new(),
        generations: Vec::new(),
        resolved: HashMap::new(),
        objective: spec.objective,
        traffic,
    };
    match spec.algorithm {
        ExploreAlgorithm::SuccessiveHalving => successive_halving(&mut run)?,
        ExploreAlgorithm::Evolutionary => evolutionary(&mut run)?,
    }
    let frontier = analysis::pareto_frontier_by_model_with(&run.outcomes, spec.objective);
    Ok(ExploreReport {
        algorithm: spec.algorithm,
        seed: spec.seed,
        space_points: run.axes.point_count(),
        budget: spec.budget,
        budget_used: run.used,
        evaluated: run.outcomes.len(),
        coarse_evaluated: run.coarse_used as usize,
        outcomes: run.outcomes,
        frontier,
        generations: run.generations,
    })
}

// ---------------------------------------------------------------------------
// Engine internals
// ---------------------------------------------------------------------------

/// xorshift64\* — deterministic, dependency-free randomness.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        // splitmix64 finalizer: a bijective mix, so every seed lands on
        // a distinct, well-scrambled state and adjacent seeds diverge
        // in every bit (a plain XOR against a constant would collapse
        // each even/odd seed pair once the low bit is forced). The
        // final `| 1` keeps the xorshift state nonzero.
        let mut mixed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mixed = (mixed ^ (mixed >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        mixed = (mixed ^ (mixed >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        mixed ^= mixed >> 31;
        XorShift(mixed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }

    fn coin(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Generation/population size for a space: `⌈√space⌉` clamped to
/// `[4, 32]` — big enough to cover every model of a sparse seed, small
/// enough that a budgeted run gets several selection rounds.
fn generation_size(space: usize) -> usize {
    ((space as f64).sqrt().ceil() as usize).clamp(4, 32)
}

/// Exploration-engine instruments, resolved once from the service's
/// registry/tracer so each generation pays only atomic updates. The
/// coarse-vs-full split and the budget burn-down are the signals that
/// tell whether a run spent its budget scouting or promoting.
struct ExploreObs {
    tracer: Option<Tracer>,
    evals_full: Counter,
    evals_coarse: Counter,
    budget_remaining: Gauge,
    /// `now_us` at the start of the open generation (tracing only).
    generation_start: Option<u64>,
}

impl ExploreObs {
    fn new(service: &EvalService, spec: &ExploreSpec) -> Self {
        let metrics = service.metrics();
        let obs = ExploreObs {
            tracer: service.tracer(),
            evals_full: metrics.counter_with("explore.evals", &[("fidelity", "full")]),
            evals_coarse: metrics.counter_with("explore.evals", &[("fidelity", "coarse")]),
            budget_remaining: metrics.gauge("explore.budget_remaining"),
            generation_start: None,
        };
        obs.budget_remaining.set(spec.budget as i64);
        obs
    }

    /// Marks the start of a generation (the matching
    /// [`Run::push_generation`] closes the span).
    fn begin_generation(&mut self) {
        if let Some(tracer) = &self.tracer {
            self.generation_start = Some(tracer.now_us());
        }
    }

    fn finish_generation(&mut self, stats: &GenerationStats, remaining: u64) {
        self.evals_coarse.add(stats.coarse as u64);
        self.evals_full.add((stats.submitted - stats.coarse) as u64);
        self.budget_remaining.set(remaining as i64);
        if let Some(tracer) = &self.tracer {
            let end = tracer.now_us();
            let start = self.generation_start.take().unwrap_or(end);
            tracer.complete(
                &format!("generation-{}", stats.index),
                "explore",
                thread_track(),
                start,
                end.saturating_sub(start),
                vec![
                    ("phase".to_owned(), AttrValue::from(stats.phase.as_str())),
                    ("submitted".to_owned(), AttrValue::from(stats.submitted)),
                    ("coarse".to_owned(), AttrValue::from(stats.coarse)),
                    ("frontier_points".to_owned(), AttrValue::from(stats.frontier_points)),
                    ("budget_remaining".to_owned(), AttrValue::from(remaining)),
                ],
            );
        }
    }
}

struct Run<'s> {
    axes: SweepAxes,
    base: ArchConfig,
    service: &'s EvalService,
    obs: ExploreObs,
    journal: Option<Arc<SweepJournal>>,
    rng: XorShift,
    budget: u64,
    used: u64,
    coarse_used: u64,
    /// Flat indices of in-space points already submitted at full
    /// fidelity (never resubmitted — revisits are free by construction).
    visited: HashSet<usize>,
    /// Index vectors aligned with `outcomes`.
    points: Vec<[usize; AXIS_COUNT]>,
    /// Full-fidelity outcomes in submission order.
    outcomes: Vec<DseOutcome>,
    generations: Vec<GenerationStats>,
    resolved: HashMap<(String, u32), Result<Arc<Model>, DseError>>,
    /// The objective pair selection ranks by.
    objective: Objective,
    /// The space's serving workload, when it has a `traffic` section:
    /// the workload plus the shared co-location pool (`None` for solo
    /// serving — each job then serves its own model alone).
    traffic: Option<(cimflow_traffic::WorkloadSpec, Option<Arc<TrafficJob>>)>,
}

impl Run<'_> {
    fn space(&self) -> usize {
        self.axes.point_count()
    }

    fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.used)
    }

    fn job_of(&mut self, point: PointSpec) -> Job {
        let arch = point.arch(&self.base);
        let model = self
            .resolved
            .entry((point.model.name.clone(), point.model.resolution))
            .or_insert_with(|| {
                models::by_name(&point.model.name, point.model.resolution)
                    .map(Arc::new)
                    .ok_or_else(|| DseError::UnknownModel { name: point.model.name.clone() })
            })
            .clone();
        let traffic = self.traffic.as_ref().and_then(|(workload, pool)| match pool {
            Some(shared) => Some(Arc::clone(shared)),
            None => model.as_ref().ok().map(|resolved| {
                Arc::new(TrafficJob {
                    workload: workload.clone(),
                    colocated: vec![(
                        served_model_name(&point.model.name, point.model.resolution),
                        Arc::clone(resolved),
                    )],
                })
            }),
        });
        Job { spec: point, arch, model, traffic }
    }

    /// Submits one batch through the service (journaled when attached)
    /// and waits for it; charges one budget unit per point.
    fn evaluate_batch(&mut self, points: Vec<PointSpec>) -> Result<Vec<DseOutcome>, DseError> {
        if points.is_empty() {
            return Ok(Vec::new());
        }
        self.used += points.len() as u64;
        let jobs: Vec<Job> = points.into_iter().map(|point| self.job_of(point)).collect();
        let batch = match &self.journal {
            Some(journal) => self.service.submit_jobs_journaled(jobs, journal),
            None => self.service.submit_jobs(jobs),
        }
        .map_err(|rejected| DseError::io(format!("exploration batch rejected: {rejected}")))?;
        Ok(batch.wait())
    }

    /// Records full-fidelity outcomes and their index vectors.
    fn record(&mut self, flats: &[usize], outcomes: Vec<DseOutcome>) {
        debug_assert_eq!(flats.len(), outcomes.len());
        for (&flat, outcome) in flats.iter().zip(outcomes) {
            self.points.push(self.axes.indices_of(flat));
            self.outcomes.push(outcome);
        }
    }

    /// Cumulative per-model frontier size over the recorded outcomes.
    fn frontier_points(&self) -> usize {
        analysis::pareto_frontier_by_model_with(&self.outcomes, self.objective)
            .values()
            .map(Vec::len)
            .sum()
    }

    fn push_generation(&mut self, phase: &str, submitted: usize, coarse: usize) {
        let stats = GenerationStats {
            index: self.generations.len(),
            phase: phase.to_owned(),
            submitted,
            coarse,
            frontier_points: self.frontier_points(),
        };
        let remaining = self.remaining_budget();
        self.obs.finish_generation(&stats, remaining);
        self.generations.push(stats);
    }

    /// The finite objectives of a recorded outcome under the run's
    /// [`Objective`] (`None` for failed points, non-finite energies,
    /// or unserved points under [`Objective::P99Latency`]).
    fn objectives_of(&self, outcome: &DseOutcome) -> Option<(u64, f64)> {
        let evaluation = outcome.evaluation()?;
        let objectives = self.objective.of(evaluation)?;
        objectives.1.is_finite().then_some(objectives)
    }

    /// Takes a strided (stratified) sample of up to `count` members of
    /// the ascending `pool`, removing them in one `retain` pass: even
    /// coverage of the grid — every model's subspace gets scouts — with
    /// the phase randomized from the run PRNG. A uniform sample of the
    /// same size routinely leaves whole regions of a small scouting
    /// budget unseen. (The pool is an index vector over the grid —
    /// O(space) memory, fine up to ~10⁷ points; beyond that the strided
    /// positions would need to be computed arithmetically like the
    /// evolutionary fallback scan.)
    fn sample_strided(&mut self, pool: &mut Vec<usize>, count: usize) -> Vec<usize> {
        let count = count.min(pool.len());
        if count == 0 {
            return Vec::new();
        }
        let stride = pool.len() / count;
        let start = self.rng.below(stride.max(1));
        let positions: HashSet<usize> = (0..count).map(|i| start + i * stride).collect();
        let picked: Vec<usize> = {
            let mut ordered: Vec<usize> = positions.iter().copied().collect();
            ordered.sort_unstable();
            ordered.into_iter().map(|at| pool[at]).collect()
        };
        let mut at = 0;
        pool.retain(|_| {
            let keep = !positions.contains(&at);
            at += 1;
            keep
        });
        picked
    }
}

/// The coarse-fidelity projection of a point: resolution floored to
/// [`COARSE_RESOLUTION`], search mode pinned to `Sequential`.
fn coarse_of(point: &PointSpec) -> PointSpec {
    let mut coarse = point.clone();
    coarse.model.resolution = coarse.model.resolution.min(COARSE_RESOLUTION);
    coarse.search = SearchMode::Sequential;
    coarse
}

// ---------------------------------------------------------------------------
// Successive halving
// ---------------------------------------------------------------------------

/// The finite `(cycles, energy)` objectives of a point, or `None` for a
/// failed/non-finite evaluation.
type Objectives = Option<(u64, f64)>;

/// Coarse evidence about one in-space point: its flat grid index, its
/// model name, and the coarse objectives observed for it.
type CoarseEvidence = (usize, String, Objectives);

/// Selection candidates grouped per model: `(index, (cycles, energy))`
/// pairs, where the index is a flat grid index (promotion) or an
/// outcome index (parent selection).
type CandidatesByModel<'a> = BTreeMap<&'a str, Vec<(usize, (u64, f64))>>;

fn successive_halving(run: &mut Run) -> Result<(), DseError> {
    let space = run.space();
    let generation = generation_size(space);
    // Flat indices never sampled at either fidelity; shrinks as
    // generations consume it.
    let mut unseen: Vec<usize> = (0..space).collect();
    // Accumulated coarse evidence: one entry per sampled in-space point
    // (points sharing a coarse projection share its objectives).
    let mut pool: Vec<CoarseEvidence> = Vec::new();
    let mut coarse_results: HashMap<String, Objectives> = HashMap::new();
    // Full outcomes of the coarse evaluations, so an in-space point that
    // *is* a previously scouted projection is recorded from the held
    // outcome instead of being submitted (and charged) a second time.
    let mut coarse_outcomes_by_label: HashMap<String, DseOutcome> = HashMap::new();

    // *Coarse* scouting gets at most half the total budget; the other
    // half is reserved for full-fidelity promotions of the survivors.
    // Without the split, late generations keep paying for coarse
    // evidence they no longer have the budget to act on. Sampled points
    // that are their own coarse projection are full-fidelity evaluations
    // and do not count against the scouting half.
    let scout_budget = (run.budget as usize).div_ceil(2);

    while run.remaining_budget() > 0 {
        run.obs.begin_generation();
        // --- Coarse rung: a strided sample of fresh points (skipped
        // once the coarse half of the budget is spent). ---
        let remaining = run.remaining_budget() as usize;
        let sample_size =
            if (run.coarse_used as usize) < scout_budget { generation.min(remaining) } else { 0 };
        let sampled = run.sample_strided(&mut unseen, sample_size);
        let mut direct = Vec::new(); // coarse == full: counts as in-space
        let mut projected = Vec::new();
        for &flat in &sampled {
            let point = run.axes.point(run.axes.indices_of(flat));
            let coarse = coarse_of(&point);
            if coarse == point {
                run.visited.insert(flat);
                if let Some(outcome) = coarse_outcomes_by_label.get(&point.label()) {
                    // This point was already evaluated as another
                    // point's coarse projection: record the held
                    // outcome for free instead of resubmitting.
                    pool.push((flat, point.model.name.clone(), run.objectives_of(outcome)));
                    run.record(&[flat], vec![outcome.clone()]);
                } else {
                    direct.push((flat, point));
                }
            } else {
                projected.push((flat, point, coarse));
            }
        }
        // A direct point is its own coarse projection, so a sibling
        // sampled in the same generation (e.g. the same model at a
        // higher resolution) must share its evaluation, not submit a
        // duplicate coarse job.
        let direct_labels: HashSet<String> =
            direct.iter().map(|(_, point)| point.label()).collect();
        let mut coarse_jobs: Vec<(usize, String, PointSpec)> = Vec::new();
        // Points whose coarse projection is evaluated by (or shared
        // with) this generation's batches: their pool evidence is
        // filled in *after* the batches land, so a same-generation
        // label collision cannot freeze a placeholder into the pool.
        let mut shared: Vec<(usize, String, String)> = Vec::new();
        for (flat, point, coarse) in projected {
            let label = coarse.label();
            match coarse_results.get(&label) {
                // A previous generation already paid for (or failed)
                // this projection: reuse its evidence.
                Some(&objectives) => pool.push((flat, point.model.name.clone(), objectives)),
                None => {
                    if !direct_labels.contains(&label)
                        && !coarse_jobs.iter().any(|(_, pending, _)| pending == &label)
                    {
                        coarse_jobs.push((flat, label.clone(), coarse));
                    }
                    shared.push((flat, point.model.name.clone(), label));
                }
            }
        }
        // Enforce the scouting half-budget on the actual coarse jobs
        // (their count is only known after classification): projections
        // beyond the allowance are dropped and their points returned to
        // the unseen pool, so the promotion rung always keeps its half.
        let allowance = scout_budget.saturating_sub(run.coarse_used as usize);
        if coarse_jobs.len() > allowance {
            let dropped: HashSet<String> =
                coarse_jobs[allowance..].iter().map(|(_, label, _)| label.clone()).collect();
            coarse_jobs.truncate(allowance);
            shared.retain(|(flat, _, label)| {
                if dropped.contains(label) {
                    unseen.push(*flat);
                    false
                } else {
                    true
                }
            });
            unseen.sort_unstable();
        }

        let direct_flats: Vec<usize> = direct.iter().map(|(flat, _)| *flat).collect();
        let direct_points: Vec<PointSpec> = direct.into_iter().map(|(_, point)| point).collect();
        let direct_outcomes = run.evaluate_batch(direct_points)?;
        for (&flat, outcome) in direct_flats.iter().zip(&direct_outcomes) {
            let objectives = run.objectives_of(outcome);
            pool.push((flat, outcome.point.model.name.clone(), objectives));
            // A direct point is its own coarse projection: register it
            // so a sibling projecting onto it (e.g. the same model at a
            // higher resolution) reuses this evaluation instead of
            // paying budget for a coarse job the cache already holds.
            coarse_results.insert(outcome.point.label(), objectives);
        }
        run.record(&direct_flats, direct_outcomes);

        let coarse_points: Vec<PointSpec> =
            coarse_jobs.iter().map(|(_, _, coarse)| coarse.clone()).collect();
        let coarse_count = coarse_points.len();
        run.coarse_used += coarse_count as u64;
        let coarse_outcomes = run.evaluate_batch(coarse_points)?;
        for ((_, label, _), outcome) in coarse_jobs.iter().zip(&coarse_outcomes) {
            coarse_results.insert(label.clone(), run.objectives_of(outcome));
            coarse_outcomes_by_label.insert(label.clone(), outcome.clone());
        }
        for (flat, model, label) in shared {
            let objectives = coarse_results.get(&label).copied().flatten();
            pool.push((flat, model, objectives));
        }

        // --- Promotion rung: full fidelity for the per-model survivors
        // of the accumulated coarse pool, best coarse Pareto rank first
        // (ascending cycles within a rank). The coarse objectives are a
        // proxy, so the band behind the scouted frontier still earns a
        // full-fidelity look while promotion budget remains. ---
        let mut by_model: CandidatesByModel = BTreeMap::new();
        for (flat, model, objectives) in &pool {
            if let Some(objectives) = objectives {
                by_model.entry(model).or_default().push((*flat, *objectives));
            }
        }
        let mut queues: Vec<Vec<usize>> = by_model
            .values()
            .map(|candidates| {
                let objectives: Vec<(u64, f64)> =
                    candidates.iter().map(|(_, objectives)| *objectives).collect();
                let ranks = analysis::pareto_ranks(&objectives);
                let mut order: Vec<usize> = (0..candidates.len()).collect();
                order.sort_by(|&a, &b| {
                    ranks[a]
                        .cmp(&ranks[b])
                        .then(objectives[a].0.cmp(&objectives[b].0))
                        .then(a.cmp(&b))
                });
                order
                    .into_iter()
                    .map(|local| candidates[local].0)
                    .filter(|flat| !run.visited.contains(flat))
                    .collect()
            })
            .collect();
        // Round-robin across models so a tight budget still promotes
        // every workload's best candidates.
        let mut promoted: Vec<usize> = Vec::new();
        let mut cursor = 0;
        let lanes = queues.len().max(1);
        while (promoted.len() as u64) < run.remaining_budget()
            && queues.iter().any(|queue| !queue.is_empty())
        {
            let queue = &mut queues[cursor % lanes];
            if let Some(flat) = queue.first().copied() {
                queue.remove(0);
                run.visited.insert(flat);
                promoted.push(flat);
            }
            cursor += 1;
        }
        let promoted_points: Vec<PointSpec> =
            promoted.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
        let promoted_outcomes = run.evaluate_batch(promoted_points)?;
        run.record(&promoted, promoted_outcomes);

        let submitted = direct_flats.len() + coarse_count + promoted.len();
        run.push_generation("halving", submitted, coarse_count);
        if submitted == 0 {
            // Nothing left to sample and no survivor to promote: the
            // space (or the promotable frontier) is exhausted.
            break;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Evolutionary search
// ---------------------------------------------------------------------------

fn evolutionary(run: &mut Run) -> Result<(), DseError> {
    let space = run.space();
    let population = generation_size(space);

    // Seed: a sparse strided sample of the grid. The model axis is the
    // outermost, so the stride covers every workload.
    run.obs.begin_generation();
    let mut seeds: Vec<usize> =
        (0..population.min(space)).map(|i| i * space / population.min(space)).collect();
    seeds.dedup();
    seeds.truncate(run.remaining_budget() as usize);
    for &flat in &seeds {
        run.visited.insert(flat);
    }
    let seed_points: Vec<PointSpec> =
        seeds.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
    let submitted = seed_points.len();
    let seed_outcomes = run.evaluate_batch(seed_points)?;
    run.record(&seeds, seed_outcomes);
    run.push_generation("seed", submitted, 0);

    // Breed half a population per generation: twice the selection
    // rounds per budget, which matters far more than brood size when
    // the budget is a fraction of the space.
    let brood = (population / 2).max(2);
    while run.remaining_budget() > 0 && run.visited.len() < space {
        run.obs.begin_generation();
        let parents = select_parents(run, population);
        let children = offspring(run, &parents, brood);
        if children.is_empty() {
            break;
        }
        for &flat in &children {
            run.visited.insert(flat);
        }
        let child_points: Vec<PointSpec> =
            children.iter().map(|&flat| run.axes.point(run.axes.indices_of(flat))).collect();
        let submitted = child_points.len();
        let child_outcomes = run.evaluate_batch(child_points)?;
        run.record(&children, child_outcomes);
        run.push_generation("generation", submitted, 0);
    }
    Ok(())
}

/// Selects up to `count` parents from the evaluated population: per
/// model, sort by (Pareto rank, descending crowding distance, evaluation
/// order), then interleave the models round-robin so every workload
/// keeps breeding stock.
fn select_parents(run: &Run, count: usize) -> Vec<[usize; AXIS_COUNT]> {
    let mut by_model: CandidatesByModel = BTreeMap::new();
    for (at, outcome) in run.outcomes.iter().enumerate() {
        if let Some(objectives) = run.objectives_of(outcome) {
            by_model.entry(outcome.point.model.name.as_str()).or_default().push((at, objectives));
        }
    }
    let mut queues: Vec<std::vec::IntoIter<usize>> = by_model
        .values()
        .map(|group| {
            let objectives: Vec<(u64, f64)> = group.iter().map(|(_, o)| *o).collect();
            let ranks = analysis::pareto_ranks(&objectives);
            let crowding = analysis::crowding_distances(&objectives, &ranks);
            let mut order: Vec<usize> = (0..group.len()).collect();
            order.sort_by(|&a, &b| {
                ranks[a]
                    .cmp(&ranks[b])
                    .then(crowding[b].total_cmp(&crowding[a]))
                    .then(group[a].0.cmp(&group[b].0))
            });
            order.into_iter().map(|local| group[local].0).collect::<Vec<usize>>().into_iter()
        })
        .collect();
    let mut parents = Vec::new();
    let mut cursor = 0;
    let lanes = queues.len().max(1);
    while parents.len() < count && queues.iter().any(|queue| queue.len() > 0) {
        if let Some(at) = queues[cursor % lanes].next() {
            parents.push(run.points[at]);
        }
        cursor += 1;
    }
    parents
}

/// Breeds up to `count` fresh (unvisited) children: mutation steps one
/// axis to an adjacent value, crossover mixes two parents per axis.
/// When breeding stalls (tiny spaces, exhausted neighborhoods), the
/// remainder is filled by a deterministic scan from a random grid
/// offset, which guarantees a full-budget run exhausts the space.
fn offspring(run: &mut Run, parents: &[[usize; AXIS_COUNT]], count: usize) -> Vec<usize> {
    let space = run.space();
    let unvisited = space - run.visited.len();
    let target = count.min(run.remaining_budget() as usize).min(unvisited);
    let mut children: Vec<usize> = Vec::new();
    let mut fresh: HashSet<usize> = HashSet::new();
    let mut tries = 0;
    // Parents are rank-ordered (round-robin across models), so a
    // min-of-two tournament on the index biases breeding toward the
    // frontier without starving diversity.
    let tournament = |rng: &mut XorShift, len: usize| rng.below(len).min(rng.below(len));
    while children.len() < target && tries < 20 * count && !parents.is_empty() {
        tries += 1;
        let child = if parents.len() >= 2 && run.rng.coin() {
            let a = parents[tournament(&mut run.rng, parents.len())];
            let b = parents[tournament(&mut run.rng, parents.len())];
            crossover(&mut run.rng, a, b)
        } else {
            let parent = parents[tournament(&mut run.rng, parents.len())];
            mutate(&mut run.rng, &run.axes, parent)
        };
        let flat = run.axes.flat_of(child);
        if !run.visited.contains(&flat) && fresh.insert(flat) {
            children.push(flat);
        }
    }
    if children.len() < target {
        let start = run.rng.below(space.max(1));
        for offset in 0..space {
            if children.len() >= target {
                break;
            }
            let flat = (start + offset) % space;
            if !run.visited.contains(&flat) && fresh.insert(flat) {
                children.push(flat);
            }
        }
    }
    children
}

fn mutate(
    rng: &mut XorShift,
    axes: &SweepAxes,
    parent: [usize; AXIS_COUNT],
) -> [usize; AXIS_COUNT] {
    let dims = axes.dims();
    let movable: Vec<usize> = (0..AXIS_COUNT).filter(|&axis| dims[axis] > 1).collect();
    let mut child = parent;
    if movable.is_empty() {
        return child;
    }
    let axis = movable[rng.below(movable.len())];
    let at = child[axis];
    child[axis] = if at == 0 {
        1
    } else if at + 1 == dims[axis] {
        at - 1
    } else if rng.coin() {
        at + 1
    } else {
        at - 1
    };
    child
}

fn crossover(
    rng: &mut XorShift,
    a: [usize; AXIS_COUNT],
    b: [usize; AXIS_COUNT],
) -> [usize; AXIS_COUNT] {
    let mut child = a;
    for axis in 0..AXIS_COUNT {
        if rng.coin() {
            child[axis] = b[axis];
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use cimflow_compiler::Strategy;

    fn space() -> SweepSpec {
        SweepSpec::new()
            .named("explore-unit")
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8])
            .with_flit_sizes(&[8, 16])
    }

    #[test]
    fn spec_json_round_trips_and_defaults_apply() {
        let spec = ExploreSpec::new(space())
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(99);
        let back = ExploreSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let partial = ExploreSpec::from_json(
            "{\"space\": {\"models\": [{\"name\": \"resnet18\", \"resolution\": 32}], \
             \"strategies\": [\"dp\"], \"mg_sizes\": [2, 4, 8, 16]}}",
        )
        .unwrap();
        assert_eq!(partial.budget, 4, "a quarter of the 4-point grid, floored at 4");
        assert_eq!(partial.algorithm, ExploreAlgorithm::Evolutionary);
        assert_eq!(partial.seed, DEFAULT_SEED);
        assert!(ExploreSpec::from_json("{\"budget\": 4}").is_err(), "space is required");

        assert_eq!(ExploreAlgorithm::from_name("sh"), Some(ExploreAlgorithm::SuccessiveHalving));
        assert_eq!(ExploreAlgorithm::from_name("evo"), Some(ExploreAlgorithm::Evolutionary));
        assert_eq!(ExploreAlgorithm::from_name("annealing"), None);
    }

    #[test]
    fn xorshift_is_deterministic_and_seed_sensitive() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        let mut c = XorShift::new(8);
        let from_a: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let from_b: Vec<u64> = (0..8).map(|_| b.next()).collect();
        let from_c: Vec<u64> = (0..8).map(|_| c.next()).collect();
        assert_eq!(from_a, from_b);
        assert_ne!(from_a, from_c);
        // Adjacent even/odd seed pairs must diverge too (an unmixed
        // `seed ^ CONST | 1` used to collapse each such pair onto one
        // state).
        for seed in 0..64u64 {
            assert_ne!(
                XorShift::new(seed).next(),
                XorShift::new(seed + 1).next(),
                "seeds {seed} and {} collide",
                seed + 1
            );
        }
        let mut d = XorShift::new(0);
        assert!((0..8).all(|_| d.below(5) < 5));
    }

    #[test]
    fn coarse_projection_floors_resolution_and_pins_search() {
        let point = SweepSpec::new()
            .with_model("vgg19", 64)
            .with_strategies(&[Strategy::DpOptimized])
            .with_search_modes(&[SearchMode::Joint])
            .expand()
            .unwrap()[0]
            .clone();
        let coarse = coarse_of(&point);
        assert_eq!(coarse.model.resolution, COARSE_RESOLUTION);
        assert_eq!(coarse.search, SearchMode::Sequential);
        assert_ne!(coarse, point);
        // A point already at the floor with the default search *is* its
        // own coarse projection.
        let fine = space().expand().unwrap()[0].clone();
        assert_eq!(coarse_of(&fine), fine);
    }

    #[test]
    fn generation_size_scales_with_the_space() {
        assert_eq!(generation_size(1), 4);
        assert_eq!(generation_size(16), 4);
        assert_eq!(generation_size(100), 10);
        assert_eq!(generation_size(100_000), 32);
    }

    #[test]
    fn mutation_steps_one_axis_and_crossover_mixes() {
        let axes = space().axes().unwrap();
        let mut rng = XorShift::new(3);
        let parent = axes.indices_of(0);
        for _ in 0..32 {
            let child = mutate(&mut rng, &axes, parent);
            let moved: Vec<usize> =
                (0..AXIS_COUNT).filter(|&axis| child[axis] != parent[axis]).collect();
            assert_eq!(moved.len(), 1, "exactly one axis moves");
            let axis = moved[0];
            assert_eq!(child[axis].abs_diff(parent[axis]), 1, "the move is to an adjacent value");
        }
        let a = axes.indices_of(0);
        let b = axes.indices_of(axes.point_count() - 1);
        for _ in 0..32 {
            let child = crossover(&mut rng, a, b);
            for axis in 0..AXIS_COUNT {
                assert!(child[axis] == a[axis] || child[axis] == b[axis]);
            }
        }
    }

    #[test]
    fn shared_coarse_projections_do_not_drop_points() {
        // Two resolutions of one model project onto the *same* coarse
        // point (both floor to 32 px). Sampled in the same generation,
        // the projection must be scouted once and both siblings must
        // still be promotable — a frozen placeholder used to drop the
        // second sibling from the search forever.
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(1);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.coarse_evaluated, 1, "the shared projection is scouted once");
        assert_eq!(report.evaluated, 2, "both siblings reach full fidelity");
        assert_eq!(report.budget_used, 3);
    }

    #[test]
    fn in_space_coarse_projections_share_the_direct_evaluation() {
        // The 32 px point *is* the 64 px point's coarse projection and a
        // grid point of its own: one evaluation serves both roles, no
        // coarse job is submitted, and no budget is double-charged.
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(2)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(5);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert_eq!(report.coarse_evaluated, 0, "the direct evaluation doubles as the scout");
        assert_eq!(report.evaluated, 2, "both grid points reach full fidelity");
        assert_eq!(report.budget_used, 2);
        assert_eq!(service.cache().stats().misses, 2, "nothing evaluates twice");
    }

    #[test]
    fn explore_counts_fidelity_splits_and_burns_down_the_budget_gauge() {
        use cimflow_obs::{MetricValue, MetricsRegistry};

        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(4096);
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping]);
        let spec = ExploreSpec::new(space)
            .with_budget(3)
            .with_algorithm(ExploreAlgorithm::SuccessiveHalving)
            .with_seed(1);
        let service = EvalService::new(
            ServiceConfig::new()
                .with_workers(2)
                .with_metrics(registry.clone())
                .with_tracer(tracer.clone()),
        );
        let report = explore(&spec, &service).unwrap();

        let snapshot = registry.snapshot();
        let counter = |labels: &[(&str, &str)]| match snapshot.get("explore.evals", labels) {
            Some(MetricValue::Counter(n)) => *n,
            other => panic!("expected a counter at {labels:?}, got {other:?}"),
        };
        assert_eq!(counter(&[("fidelity", "coarse")]), report.coarse_evaluated as u64);
        assert_eq!(
            counter(&[("fidelity", "coarse")]) + counter(&[("fidelity", "full")]),
            report.budget_used
        );
        match snapshot.get("explore.budget_remaining", &[]) {
            Some(MetricValue::Gauge(left)) => {
                assert_eq!(*left as u64, spec.budget - report.budget_used)
            }
            other => panic!("expected the burn-down gauge, got {other:?}"),
        }
        // One generation span per recorded generation, attrs intact.
        let spans: Vec<_> =
            tracer.events().into_iter().filter(|e| e.category == "explore").collect();
        assert_eq!(spans.len(), report.generations.len());
        assert!(spans[0].attrs.iter().any(|(k, _)| k == "budget_remaining"));
    }

    #[test]
    fn explore_respects_the_budget_and_reports_a_frontier() {
        let spec = ExploreSpec::new(space()).with_budget(3).with_seed(11);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let report = explore(&spec, &service).unwrap();
        assert!(report.budget_used <= 3);
        assert_eq!(report.evaluated, report.outcomes.len());
        assert!(report.evaluated >= 1);
        assert_eq!(report.space_points, 4);
        assert!(!report.frontier["mobilenetv2"].is_empty());
        assert!(!report.generations.is_empty());
        let submitted: usize = report.generations.iter().map(|g| g.submitted).sum();
        assert_eq!(submitted as u64, report.budget_used);

        // The same seed explores the same points; a different seed is
        // free to differ.
        let again = explore(&spec, &service).unwrap();
        assert_eq!(
            report.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
            again.outcomes.iter().map(|o| o.point.label()).collect::<Vec<_>>(),
        );
        // And the warm service served every revisit from the cache.
        assert!(again.outcomes.iter().all(|o| o.cached));
    }
}
