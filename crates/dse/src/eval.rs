//! The single-point evaluation primitive: `model + architecture +
//! strategy → compile → simulate → Evaluation`.
//!
//! This is the unit of work the parallel executor fans out and the value
//! the evaluation cache stores. The [`Evaluation`] record used to live in
//! the `cimflow` facade crate; it moved here so that both the facade's
//! `CimFlow` workflow object and the batch engine share one definition
//! (the facade re-exports it).

use std::fmt;
use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_compiler::{
    compile_with_options, CompileOptions, CompileReport, CompiledProgram, SearchMode, Strategy,
};
use cimflow_nn::Model;
use cimflow_sim::{
    ReplayEngine, ServeModel, ServingReport, SimError, SimOptions, SimReport, Simulator,
};
use cimflow_traffic::WorkloadSpec;
use serde::{Deserialize, Serialize};

use crate::trace_store::{TraceEntry, TraceKey, TraceStore};
use crate::DseError;

/// How a design point's simulation report was produced: by the full
/// cycle-level interpreter, or by replaying a recorded trace of a
/// compile-identical point. Replay is **bit-exact** — the path is
/// provenance, not a fidelity level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum EvalPath {
    /// Full `compile → simulate` interpretation (includes the recording
    /// run that seeds a trace group).
    #[default]
    Interpreted,
    /// Timing-only replay of a previously recorded trace.
    Replayed,
}

impl EvalPath {
    /// Wire name of the path (`interpreted` / `replayed`).
    pub fn name(self) -> &'static str {
        match self {
            EvalPath::Interpreted => "interpreted",
            EvalPath::Replayed => "replayed",
        }
    }

    /// Parses a wire name.
    pub fn from_name(text: &str) -> Option<Self> {
        match text {
            "interpreted" => Some(EvalPath::Interpreted),
            "replayed" => Some(EvalPath::Replayed),
            _ => None,
        }
    }

    /// Whether the report came from the replay engine.
    pub fn is_replayed(self) -> bool {
        self == EvalPath::Replayed
    }
}

impl fmt::Display for EvalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for EvalPath {
    fn serialize(&self) -> serde::Content {
        serde::Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for EvalPath {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected eval-path name string"))?;
        EvalPath::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown eval path `{text}`")))
    }
}

/// The serving workload of one design point, resolved for evaluation:
/// the rate-free preset plus the co-located models (each compiled — or
/// trace-replayed — on the point's architecture). The offered rate
/// itself lives on the [`PointSpec`](crate::PointSpec) as the innermost
/// sweep axis.
#[derive(Debug)]
pub struct TrafficJob {
    /// The workload preset (arrival shape, seed, horizon, batching
    /// knobs, mix).
    pub workload: WorkloadSpec,
    /// The models time-sharing the system, in mix order. Contains just
    /// the point's own model unless the sweep co-locates.
    pub colocated: Vec<(String, Arc<Model>)>,
}

/// Wire name of a served model (matches the `model` label of `traffic.*`
/// metrics and the per-model entries of a serving report).
pub(crate) fn served_model_name(name: &str, resolution: u32) -> String {
    format!("{name}@{resolution}")
}

/// SLO metrics of one design point under open-loop load — the compact,
/// cacheable summary of a [`ServingReport`]. Latency quantiles are the
/// point's **own** model's (exact nearest-rank, in µs at the point's
/// clock); goodput, saturation, queue depth and energy aggregate over
/// every co-located model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingSummary {
    /// Offered request rate in requests/second.
    pub offered_qps: u64,
    /// Achieved goodput in requests/second (all models).
    pub goodput_qps: f64,
    /// Pipeline-bound saturation rate of the offered mix.
    pub saturation_qps: f64,
    /// Own-model median latency under load, µs.
    pub p50_latency_us: f64,
    /// Own-model 99th-percentile latency under load, µs.
    pub p99_latency_us: f64,
    /// Own-model worst-case latency under load, µs.
    pub max_latency_us: f64,
    /// Requests served (all models).
    pub requests: u64,
    /// Mean dispatched batch size (all models).
    pub mean_batch: f64,
    /// Deepest request backlog observed.
    pub peak_queue_depth: u64,
    /// Number of co-located models (1 = the point served alone).
    pub colocated: u64,
    /// Dynamic energy under load in millijoules (all models).
    pub energy_mj: f64,
}

impl ServingSummary {
    fn of(report: &ServingReport, own: &str) -> Self {
        // Fall back to the aggregate quantiles if the own model is
        // somehow absent (it never is when built through `serve_point`).
        let latency =
            report.per_model.iter().find(|m| m.model == own).map_or(report.latency, |m| m.latency);
        ServingSummary {
            offered_qps: report.offered_qps,
            goodput_qps: report.goodput_qps,
            saturation_qps: report.saturation_qps,
            p50_latency_us: report.cycles_to_us(latency.p50),
            p99_latency_us: report.cycles_to_us(latency.p99),
            max_latency_us: report.cycles_to_us(latency.max),
            requests: report.requests,
            mean_batch: report.mean_batch,
            peak_queue_depth: report.peak_queue_depth,
            colocated: report.per_model.len() as u64,
            energy_mj: report.energy_mj,
        }
    }

    /// Own-model p99 latency in nanoseconds (integer — the unit Pareto
    /// analysis compares serving objectives in without float keys).
    pub fn p99_latency_ns(&self) -> u64 {
        (self.p99_latency_us * 1000.0).round() as u64
    }
}

/// The result of evaluating one model on one architecture with one
/// compilation strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Name of the evaluated model.
    pub model: String,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The system-level search mode the compilation ran under.
    pub search: SearchMode,
    /// The architecture the evaluation ran on.
    pub arch: ArchConfig,
    /// Static compilation statistics.
    pub compilation: CompileReport,
    /// Number of execution stages chosen by the partitioner.
    pub stages: usize,
    /// Mean weight-duplication factor chosen by the mapper.
    pub mean_duplication: f64,
    /// The detailed simulation report.
    pub simulation: SimReport,
    /// How the simulation report was produced (bit-exact either way).
    pub eval_path: EvalPath,
    /// SLO metrics under open-loop load; `None` when the point ran no
    /// serving workload (sweeps without a `traffic` section).
    pub serving: Option<ServingSummary>,
}

impl Evaluation {
    /// Normalized-speed helper: the speedup of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's y-axis).
    pub fn speedup_over(&self, baseline: &Evaluation) -> f64 {
        if self.simulation.total_cycles == 0 {
            return 0.0;
        }
        baseline.simulation.total_cycles as f64 / self.simulation.total_cycles as f64
    }

    /// Normalized-energy helper: the energy of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's lower panel).
    pub fn energy_ratio_over(&self, baseline: &Evaluation) -> f64 {
        let base = baseline.simulation.energy.total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        self.simulation.energy.total_pj() / base
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] — {} stages, mean duplication {:.2}",
            self.model, self.strategy, self.stages, self.mean_duplication
        )?;
        write!(f, "{}", self.simulation)
    }
}

/// Runs the full `compile → simulate` pipeline for one design point
/// under the default [`SearchMode::Sequential`].
///
/// # Errors
///
/// Returns the architecture-validation, compilation or simulation failure
/// of the point. Callers sweeping a grid should capture this per point
/// (see [`Executor`](crate::Executor)) rather than aborting the sweep.
pub fn evaluate(
    arch: &ArchConfig,
    model: &Model,
    strategy: Strategy,
) -> Result<Evaluation, DseError> {
    evaluate_with_search(arch, model, strategy, SearchMode::Sequential)
}

/// [`evaluate`] with an explicit system-level [`SearchMode`].
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_with_search(
    arch: &ArchConfig,
    model: &Model,
    strategy: Strategy,
    search: SearchMode,
) -> Result<Evaluation, DseError> {
    arch.validate()?;
    let options = CompileOptions { strategy, search, ..CompileOptions::default() };
    let compiled = compile_with_options(model, arch, options)?;
    let simulation = Simulator::new(&compiled).run()?;
    Ok(Evaluation {
        model: model.name.clone(),
        strategy,
        search,
        arch: *arch,
        compilation: compiled.report.clone(),
        stages: compiled.plan.stages.len(),
        mean_duplication: compiled.plan.mean_duplication(),
        simulation,
        eval_path: EvalPath::Interpreted,
        serving: None,
    })
}

/// [`evaluate_with_search`] through a shared [`TraceStore`]: the first
/// point of a trace group compiles and *records* (its report comes from
/// the recording interpreter run — [`EvalPath::Interpreted`]); every
/// later point with the same [`TraceKey`] skips compilation entirely and
/// replays the recorded trace ([`EvalPath::Replayed`]), which is
/// bit-exact by construction.
///
/// If the replay engine refuses the point (it never approximates — see
/// [`cimflow_sim::SimError::TraceMismatch`]), the point transparently
/// falls back to the full `compile → simulate` pipeline.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_traced(
    arch: &ArchConfig,
    model: &Model,
    strategy: Strategy,
    search: SearchMode,
    traces: &TraceStore,
) -> Result<Evaluation, DseError> {
    arch.validate()?;
    let key = TraceKey::of(arch, model, strategy, search);
    let mut recorded_report = None;
    let (entry, recorded_here) = traces.get_or_record_with(key, || {
        let options = CompileOptions { strategy, search, ..CompileOptions::default() };
        let compiled = compile_with_options(model, arch, options)?;
        let (trace, report) = Simulator::record(&compiled)?;
        recorded_report = Some(report);
        Ok(TraceEntry {
            trace,
            compilation: compiled.report.clone(),
            stages: compiled.plan.stages.len(),
            mean_duplication: compiled.plan.mean_duplication(),
        })
    })?;
    let build = |simulation: SimReport, eval_path: EvalPath| Evaluation {
        model: model.name.clone(),
        strategy,
        search,
        arch: *arch,
        compilation: entry.compilation.clone(),
        stages: entry.stages,
        mean_duplication: entry.mean_duplication,
        simulation,
        eval_path,
        serving: None,
    };
    if recorded_here {
        let report = recorded_report.expect("recording produced a report");
        return Ok(build(report, EvalPath::Interpreted));
    }
    match ReplayEngine::new(&entry.trace).replay(arch, SimOptions::default()) {
        Ok(report) => Ok(build(report, EvalPath::Replayed)),
        // The replay engine never approximates: any refusal (or runtime
        // fault) sends the point through the full pipeline instead.
        Err(_) => evaluate_with_search(arch, model, strategy, search),
    }
}

/// Re-times one recorded trace for a whole group of timing-only points
/// with a single lockstep [`ReplayEngine::replay_batch_stats`] call —
/// the service's trace-group fast path. Every member must share the
/// entry's [`TraceKey`]; compile-side facts are cloned from the entry
/// exactly as [`evaluate_traced`] does. Each member gets its own result
/// (a refused or failed member errs individually so the caller can fall
/// back to the full pipeline for just that point), plus the batch's
/// lockstep counters.
pub(crate) fn evaluate_replay_group(
    entry: &TraceEntry,
    model: &Model,
    strategy: Strategy,
    search: SearchMode,
    arches: &[ArchConfig],
) -> (Vec<Result<Evaluation, SimError>>, cimflow_sim::LockstepStats) {
    let engine = ReplayEngine::new(&entry.trace);
    let points: Vec<(ArchConfig, SimOptions)> =
        arches.iter().map(|arch| (*arch, SimOptions::default())).collect();
    let (reports, stats) = engine.replay_batch_stats(&points);
    let evaluations = arches
        .iter()
        .zip(reports)
        .map(|(arch, report)| {
            report.map(|simulation| Evaluation {
                model: model.name.clone(),
                strategy,
                search,
                arch: *arch,
                compilation: entry.compilation.clone(),
                stages: entry.stages,
                mean_duplication: entry.mean_duplication,
                simulation,
                eval_path: EvalPath::Replayed,
                serving: None,
            })
        })
        .collect();
    (evaluations, stats)
}

/// Runs the serving-mode simulator for one design point: every
/// co-located model of `traffic` is sourced from the shared
/// [`TraceStore`] when one is available (the first point of a trace
/// group records, every later point — and every other offered rate of
/// the same design — replays the recorded trace), falling back to a
/// fresh compile per model otherwise.
///
/// `own` is the point's own model spec; its per-model latency quantiles
/// become the summary's SLO numbers.
///
/// # Errors
///
/// Compilation/simulation failures of any co-located model, or
/// [`SimError::Traffic`] (as [`DseError::Simulation`]) for unusable
/// workloads.
pub(crate) fn serve_point(
    arch: &ArchConfig,
    strategy: Strategy,
    search: SearchMode,
    traffic: &TrafficJob,
    offered_qps: u64,
    own: &crate::ModelSpec,
    traces: Option<&TraceStore>,
) -> Result<ServingSummary, DseError> {
    let held = hold_sources(arch, strategy, search, traffic, traces)?;
    let serve = |held: &[(String, Held)]| {
        Simulator::serve(
            &serve_models(held, arch),
            &traffic.workload,
            offered_qps,
            SimOptions::default(),
        )
    };
    let report = match serve(&held) {
        Ok(report) => report,
        // The replay engine never approximates: a refused trace sends
        // every model through a fresh compile instead.
        Err(SimError::TraceMismatch { .. }) => {
            serve(&recompile_sources(arch, strategy, search, traffic)?)?
        }
        Err(e) => return Err(e.into()),
    };
    Ok(ServingSummary::of(&report, &served_model_name(&own.name, own.resolution)))
}

/// [`serve_point`] for a whole co-located rate ladder: the program
/// sources are pinned **once** and every rung reuses the same
/// single-inference reports through [`Simulator::serve_ladder`] — the
/// service's ladder-group fast path. Rung-level failures (e.g. a
/// zero-QPS rung) err individually.
///
/// # Errors
///
/// Same conditions as [`serve_point`], for failures that sink the whole
/// ladder (unresolvable sources, refused traces even after recompiling).
pub(crate) fn serve_ladder_points(
    arch: &ArchConfig,
    strategy: Strategy,
    search: SearchMode,
    traffic: &TrafficJob,
    rates: &[u64],
    own: &crate::ModelSpec,
    traces: Option<&TraceStore>,
) -> Result<Vec<Result<ServingSummary, DseError>>, DseError> {
    let held = hold_sources(arch, strategy, search, traffic, traces)?;
    let ladder = |held: &[(String, Held)]| {
        Simulator::serve_ladder(
            &serve_models(held, arch),
            &traffic.workload,
            rates,
            SimOptions::default(),
        )
    };
    let reports = match ladder(&held) {
        Ok(reports) => reports,
        Err(SimError::TraceMismatch { .. }) => {
            ladder(&recompile_sources(arch, strategy, search, traffic)?)?
        }
        Err(e) => return Err(e.into()),
    };
    let own_name = served_model_name(&own.name, own.resolution);
    Ok(reports
        .into_iter()
        .map(|rung| {
            rung.map(|report| ServingSummary::of(&report, &own_name)).map_err(DseError::from)
        })
        .collect())
}

/// An owned program source pinned for serving, so the borrow phase can
/// take trace/program references with one lifetime.
enum Held {
    Trace(Arc<TraceEntry>),
    Compiled(Box<CompiledProgram>),
}

/// Pins every co-located model's program source: from the shared
/// [`TraceStore`] when one is available (recording on first touch),
/// freshly compiled otherwise.
fn hold_sources(
    arch: &ArchConfig,
    strategy: Strategy,
    search: SearchMode,
    traffic: &TrafficJob,
    traces: Option<&TraceStore>,
) -> Result<Vec<(String, Held)>, DseError> {
    let mut held: Vec<(String, Held)> = Vec::with_capacity(traffic.colocated.len());
    for (name, model) in &traffic.colocated {
        let source = match traces {
            Some(traces) => {
                let key = TraceKey::of(arch, model, strategy, search);
                let (entry, _) = traces.get_or_record_with(key, || {
                    let compiled = compile_for(arch, strategy, search, model)?;
                    let (trace, _) = Simulator::record(&compiled)?;
                    Ok(TraceEntry {
                        trace,
                        compilation: compiled.report.clone(),
                        stages: compiled.plan.stages.len(),
                        mean_duplication: compiled.plan.mean_duplication(),
                    })
                })?;
                Held::Trace(entry)
            }
            None => Held::Compiled(Box::new(compile_for(arch, strategy, search, model)?)),
        };
        held.push((name.clone(), source));
    }
    Ok(held)
}

/// Fresh compiles for every co-located model (the trace-refusal path).
fn recompile_sources(
    arch: &ArchConfig,
    strategy: Strategy,
    search: SearchMode,
    traffic: &TrafficJob,
) -> Result<Vec<(String, Held)>, DseError> {
    traffic
        .colocated
        .iter()
        .map(|(name, model)| {
            Ok((
                name.clone(),
                Held::Compiled(Box::new(compile_for(arch, strategy, search, model)?)),
            ))
        })
        .collect()
}

fn compile_for(
    arch: &ArchConfig,
    strategy: Strategy,
    search: SearchMode,
    model: &Model,
) -> Result<CompiledProgram, DseError> {
    let options = CompileOptions { strategy, search, ..CompileOptions::default() };
    Ok(compile_with_options(model, arch, options)?)
}

fn serve_models<'a>(held: &'a [(String, Held)], arch: &ArchConfig) -> Vec<ServeModel<'a>> {
    held.iter()
        .map(|(name, source)| match source {
            Held::Trace(entry) => ServeModel::traced(name.clone(), &entry.trace, *arch),
            Held::Compiled(program) => ServeModel::compiled(name.clone(), program),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let evaluation = evaluate(&arch, &model, Strategy::GenericMapping).unwrap();
        assert_eq!(evaluation.model, "mobilenetv2");
        assert!(evaluation.simulation.total_cycles > 0);
        assert!(evaluation.simulation.throughput_tops() > 0.0);
        assert!(evaluation.stages >= 1);
        let text = evaluation.to_string();
        assert!(text.contains("mobilenetv2") && text.contains("TOPS"));
    }

    #[test]
    fn invalid_architectures_fail_without_panicking() {
        let arch = ArchConfig::paper_default().with_macros_per_group(0);
        let model = models::mobilenet_v2(32);
        assert!(matches!(
            evaluate(&arch, &model, Strategy::GenericMapping),
            Err(DseError::Arch(_))
        ));
    }

    #[test]
    fn evaluation_serde_round_trip() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let evaluation = evaluate(&arch, &model, Strategy::DpOptimized).unwrap();
        let text = serde_json::to_string(&evaluation).unwrap();
        let back: Evaluation = serde_json::from_str(&text).unwrap();
        assert_eq!(back.model, evaluation.model);
        assert_eq!(back.strategy, evaluation.strategy);
        assert_eq!(back.arch, evaluation.arch);
        assert_eq!(back.compilation, evaluation.compilation);
        assert_eq!(back.simulation, evaluation.simulation);
        assert_eq!(back.stages, evaluation.stages);
        assert_eq!(back.eval_path, EvalPath::Interpreted);
    }

    #[test]
    fn traced_evaluation_replays_timing_only_points_bit_exactly() {
        let store = TraceStore::new();
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let first =
            evaluate_traced(&base, &model, Strategy::DpOptimized, SearchMode::Sequential, &store)
                .unwrap();
        assert_eq!(first.eval_path, EvalPath::Interpreted);
        // Also matches the plain pipeline at the recording point itself.
        let plain =
            evaluate_with_search(&base, &model, Strategy::DpOptimized, SearchMode::Sequential)
                .unwrap();
        assert_eq!(first.simulation, plain.simulation);

        let retimed = base.with_frequency_mhz(500).with_memory_port(27);
        let replayed = evaluate_traced(
            &retimed,
            &model,
            Strategy::DpOptimized,
            SearchMode::Sequential,
            &store,
        )
        .unwrap();
        assert_eq!(replayed.eval_path, EvalPath::Replayed);
        let reference =
            evaluate_with_search(&retimed, &model, Strategy::DpOptimized, SearchMode::Sequential)
                .unwrap();
        assert_eq!(replayed.simulation, reference.simulation, "replay must be bit-exact");
        assert_eq!(replayed.compilation, reference.compilation);
        assert_eq!(replayed.stages, reference.stages);
        assert_eq!(replayed.arch, retimed);

        // A compile-affecting change records a second trace.
        let widened = evaluate_traced(
            &base.with_flit_bytes(16),
            &model,
            Strategy::DpOptimized,
            SearchMode::Sequential,
            &store,
        )
        .unwrap();
        assert_eq!(widened.eval_path, EvalPath::Interpreted);
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().reused, 1);
    }

    #[test]
    fn traced_evaluation_rejects_invalid_points_before_touching_the_store() {
        let store = TraceStore::new();
        let model = models::mobilenet_v2(32);
        let invalid = ArchConfig::paper_default().with_macros_per_group(0);
        assert!(matches!(
            evaluate_traced(
                &invalid,
                &model,
                Strategy::GenericMapping,
                SearchMode::Sequential,
                &store
            ),
            Err(DseError::Arch(_))
        ));
        assert!(store.is_empty());
    }
}
