//! The single-point evaluation primitive: `model + architecture +
//! strategy → compile → simulate → Evaluation`.
//!
//! This is the unit of work the parallel executor fans out and the value
//! the evaluation cache stores. The [`Evaluation`] record used to live in
//! the `cimflow` facade crate; it moved here so that both the facade's
//! `CimFlow` workflow object and the batch engine share one definition
//! (the facade re-exports it).

use std::fmt;

use cimflow_arch::ArchConfig;
use cimflow_compiler::{compile_with_options, CompileOptions, CompileReport, SearchMode, Strategy};
use cimflow_nn::Model;
use cimflow_sim::{SimReport, Simulator};
use serde::{Deserialize, Serialize};

use crate::DseError;

/// The result of evaluating one model on one architecture with one
/// compilation strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Evaluation {
    /// Name of the evaluated model.
    pub model: String,
    /// The compilation strategy used.
    pub strategy: Strategy,
    /// The system-level search mode the compilation ran under.
    pub search: SearchMode,
    /// The architecture the evaluation ran on.
    pub arch: ArchConfig,
    /// Static compilation statistics.
    pub compilation: CompileReport,
    /// Number of execution stages chosen by the partitioner.
    pub stages: usize,
    /// Mean weight-duplication factor chosen by the mapper.
    pub mean_duplication: f64,
    /// The detailed simulation report.
    pub simulation: SimReport,
}

impl Evaluation {
    /// Normalized-speed helper: the speedup of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's y-axis).
    pub fn speedup_over(&self, baseline: &Evaluation) -> f64 {
        if self.simulation.total_cycles == 0 {
            return 0.0;
        }
        baseline.simulation.total_cycles as f64 / self.simulation.total_cycles as f64
    }

    /// Normalized-energy helper: the energy of this evaluation relative to
    /// a baseline evaluation of the same model (Fig. 5's lower panel).
    pub fn energy_ratio_over(&self, baseline: &Evaluation) -> f64 {
        let base = baseline.simulation.energy.total_pj();
        if base <= 0.0 {
            return 0.0;
        }
        self.simulation.energy.total_pj() / base
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}] — {} stages, mean duplication {:.2}",
            self.model, self.strategy, self.stages, self.mean_duplication
        )?;
        write!(f, "{}", self.simulation)
    }
}

/// Runs the full `compile → simulate` pipeline for one design point
/// under the default [`SearchMode::Sequential`].
///
/// # Errors
///
/// Returns the architecture-validation, compilation or simulation failure
/// of the point. Callers sweeping a grid should capture this per point
/// (see [`Executor`](crate::Executor)) rather than aborting the sweep.
pub fn evaluate(
    arch: &ArchConfig,
    model: &Model,
    strategy: Strategy,
) -> Result<Evaluation, DseError> {
    evaluate_with_search(arch, model, strategy, SearchMode::Sequential)
}

/// [`evaluate`] with an explicit system-level [`SearchMode`].
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_with_search(
    arch: &ArchConfig,
    model: &Model,
    strategy: Strategy,
    search: SearchMode,
) -> Result<Evaluation, DseError> {
    arch.validate()?;
    let options = CompileOptions { strategy, search, ..CompileOptions::default() };
    let compiled = compile_with_options(model, arch, options)?;
    let simulation = Simulator::new(&compiled).run()?;
    Ok(Evaluation {
        model: model.name.clone(),
        strategy,
        search,
        arch: *arch,
        compilation: compiled.report.clone(),
        stages: compiled.plan.stages.len(),
        mean_duplication: compiled.plan.mean_duplication(),
        simulation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cimflow_nn::models;

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let evaluation = evaluate(&arch, &model, Strategy::GenericMapping).unwrap();
        assert_eq!(evaluation.model, "mobilenetv2");
        assert!(evaluation.simulation.total_cycles > 0);
        assert!(evaluation.simulation.throughput_tops() > 0.0);
        assert!(evaluation.stages >= 1);
        let text = evaluation.to_string();
        assert!(text.contains("mobilenetv2") && text.contains("TOPS"));
    }

    #[test]
    fn invalid_architectures_fail_without_panicking() {
        let arch = ArchConfig::paper_default().with_macros_per_group(0);
        let model = models::mobilenet_v2(32);
        assert!(matches!(
            evaluate(&arch, &model, Strategy::GenericMapping),
            Err(DseError::Arch(_))
        ));
    }

    #[test]
    fn evaluation_serde_round_trip() {
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let evaluation = evaluate(&arch, &model, Strategy::DpOptimized).unwrap();
        let text = serde_json::to_string(&evaluation).unwrap();
        let back: Evaluation = serde_json::from_str(&text).unwrap();
        assert_eq!(back.model, evaluation.model);
        assert_eq!(back.strategy, evaluation.strategy);
        assert_eq!(back.arch, evaluation.arch);
        assert_eq!(back.compilation, evaluation.compilation);
        assert_eq!(back.simulation, evaluation.simulation);
        assert_eq!(back.stages, evaluation.stages);
    }
}
