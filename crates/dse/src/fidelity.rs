//! The calibrated multi-fidelity evaluation ladder.
//!
//! Every evaluation fidelity the DSE stack knows — the compiler's
//! analytical interval estimate, coarse-resolution simulation, trace
//! replay, full cycle-level simulation — is one [`Fidelity`] rung with a
//! uniform [`Fidelity::price`] surface. A [`FidelityLadder`] orders the
//! *proxy* rungs cheapest-first (full simulation is always the implicit
//! top), and the explorer schedules points up the ladder instead of
//! toggling a boolean coarse/full flag.
//!
//! Proxies are only useful when they *rank* like the real thing, so the
//! ladder is **calibrated online**: every time a scouted point graduates
//! to full fidelity, the `(proxy, full)` primary-objective pair is fed
//! to a [`RankFidelity`] tracker, which maintains a Kendall rank
//! correlation per `(model, rung)`. [`scout_share_for`] maps the
//! measured tau to the budget share the explorer may spend on scouting:
//! an uncalibrated rung gets the historical fixed half, a faithful rung
//! earns more scouting, a misleading rung is starved down to a floor.
//!
//! [`FeasibilityCaps`] carry the constraint side of the search: area and
//! power ceilings the explorer uses to cut infeasible candidates before
//! spending budget on them (with dominated-but-feasible fallbacks so a
//! fully infeasible model still reports its best effort).

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use cimflow_arch::ArchConfig;
use cimflow_compiler::cost::CostModel;
use cimflow_compiler::{estimate_sequential_interval, CondensedGraph, SearchMode};
use cimflow_energy::EnergyModel;
use cimflow_nn::models;
use serde::{Content, Deserialize, Serialize};

use crate::analysis;
use crate::eval::Evaluation;
use crate::spec::{PointSpec, SweepAxes};
use crate::{DseError, DseOutcome, EvalService, Job};

/// Pairs a `(model, rung)` must graduate before its Kendall tau is
/// trusted; below this the scheduler keeps the uncalibrated default.
pub const MIN_CALIBRATION_SAMPLES: usize = 3;

/// The scouting budget share before any calibration evidence exists:
/// half the budget, the historical fixed split of successive halving.
pub const DEFAULT_SCOUT_SHARE: f64 = 0.5;

/// One rung of the evaluation-fidelity ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// The compiler's sequential interval estimate
    /// ([`estimate_sequential_interval`]): no simulation at all, so the
    /// explorer treats it as *free* (it never charges budget).
    Analytical,
    /// Cycle-level simulation with the model resolution floored to the
    /// carried value (px) and the system search pinned to
    /// [`SearchMode::Sequential`] — the generalization of the
    /// historical fixed 32 px scouting rung.
    CoarseSim(u32),
    /// Full-fidelity re-timing through the trace store: identity
    /// projection, bit-exact result (tau ≡ 1 by construction), served
    /// by the lockstep replay fast path when the batch groups.
    Replay,
    /// Full cycle-level simulation — the implicit top of every ladder.
    FullSim,
}

impl Fidelity {
    /// Wire name of the rung (`analytical`, `coarse<px>`, `replay`,
    /// `full`).
    pub fn name(&self) -> String {
        match self {
            Fidelity::Analytical => "analytical".to_owned(),
            Fidelity::CoarseSim(resolution) => format!("coarse{resolution}"),
            Fidelity::Replay => "replay".to_owned(),
            Fidelity::FullSim => "full".to_owned(),
        }
    }

    /// Parses a wire name back into a rung.
    pub fn from_name(text: &str) -> Option<Self> {
        match text {
            "analytical" => Some(Fidelity::Analytical),
            "replay" => Some(Fidelity::Replay),
            "full" | "full_sim" => Some(Fidelity::FullSim),
            other => other
                .strip_prefix("coarse")
                .and_then(|digits| digits.parse().ok())
                .filter(|&resolution| resolution > 0)
                .map(Fidelity::CoarseSim),
        }
    }

    /// The projection a point is evaluated at on this rung. Only
    /// [`Fidelity::CoarseSim`] rewrites the point (resolution floored,
    /// search pinned sequential); every other rung evaluates the point
    /// as-is. A coarse rung at or above the point's own resolution
    /// projects to the point itself — evaluating it *is* full fidelity.
    pub fn project(&self, point: &PointSpec) -> PointSpec {
        match self {
            Fidelity::CoarseSim(resolution) => {
                let mut coarse = point.clone();
                coarse.model.resolution = coarse.model.resolution.min(*resolution);
                coarse.search = SearchMode::Sequential;
                coarse
            }
            _ => point.clone(),
        }
    }

    /// Whether pricing this rung runs a simulation (and therefore costs
    /// explorer budget).
    pub fn is_simulated(&self) -> bool {
        !matches!(self, Fidelity::Analytical)
    }

    /// Prices one point at this rung: the uniform surface over every
    /// fidelity. [`Fidelity::Analytical`] computes the compiler estimate
    /// in-process; the simulated rungs submit the projected point
    /// through `service` (riding its cache, coalescing and trace-replay
    /// fast paths) and wait for the single outcome.
    ///
    /// The score's objectives are `(primary, energy_mj)` — estimated
    /// interval cycles for the analytical rung, simulated total cycles
    /// otherwise — or `None` when the point fails at this rung.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::UnknownModel`] for an unresolvable model and
    /// [`DseError::Io`] when the service refuses the submission.
    pub fn price(
        &self,
        point: &PointSpec,
        base: &ArchConfig,
        service: &EvalService,
    ) -> Result<ProxyScore, DseError> {
        if let Fidelity::Analytical = self {
            let mut pricer = AnalyticalPricer::new(*base);
            return Ok(ProxyScore { rung: self.name(), objectives: pricer.objectives(point) });
        }
        let projected = self.project(point);
        let arch = projected.arch(base);
        let model = models::by_name(&projected.model.name, projected.model.resolution)
            .map(Arc::new)
            .ok_or_else(|| DseError::UnknownModel { name: projected.model.name.clone() })?;
        let batch = service
            .submit_jobs(vec![Job { spec: projected, arch, model: Ok(model), traffic: None }])
            .map_err(|rejected| DseError::io(format!("price submission rejected: {rejected}")))?;
        let outcome = batch.wait().pop().expect("one job in, one outcome out");
        let objectives = outcome
            .evaluation()
            .map(|e| (e.simulation.total_cycles, e.simulation.energy_mj()))
            .filter(|(_, energy)| energy.is_finite());
        Ok(ProxyScore { rung: self.name(), objectives })
    }
}

impl fmt::Display for Fidelity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

impl Serialize for Fidelity {
    fn serialize(&self) -> Content {
        Content::Str(self.name())
    }
}

impl Deserialize for Fidelity {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected fidelity rung name"))?;
        Fidelity::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown fidelity rung `{text}`")))
    }
}

/// The result of pricing one point at one rung.
#[derive(Debug, Clone, PartialEq)]
pub struct ProxyScore {
    /// Wire name of the rung that produced the score.
    pub rung: String,
    /// `(primary, energy_mj)` under the rung's fidelity, or `None` when
    /// the point fails at this rung.
    pub objectives: Option<(u64, f64)>,
}

/// An ordered ladder of *proxy* rungs, cheapest first. Full simulation
/// is always the implicit top rung and is never listed. The default
/// ladder is the single historical 32 px coarse rung, so existing specs
/// behave identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityLadder {
    rungs: Vec<Fidelity>,
}

impl FidelityLadder {
    /// The historical ladder: one 32 px coarse-simulation rung.
    pub fn standard() -> Self {
        FidelityLadder { rungs: vec![Fidelity::CoarseSim(crate::explore::COARSE_RESOLUTION)] }
    }

    /// Builds a ladder, validating its shape:
    ///
    /// * `full` is implicit and may not be listed;
    /// * `analytical` may only be the first rung;
    /// * `replay` may only be the last rung;
    /// * coarse resolutions must be strictly ascending (the ladder runs
    ///   cheap → faithful).
    ///
    /// An empty ladder is valid: the explorer then samples at full
    /// fidelity directly (pure budgeted random search + ranking).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] for a malformed ladder.
    pub fn new(rungs: Vec<Fidelity>) -> Result<Self, DseError> {
        let mut last_coarse: Option<u32> = None;
        for (at, rung) in rungs.iter().enumerate() {
            match rung {
                Fidelity::FullSim => {
                    return Err(DseError::spec(
                        "ladder rung `full` is implicit (every ladder tops out at full \
                         simulation) and may not be listed",
                    ));
                }
                Fidelity::Analytical if at != 0 => {
                    return Err(DseError::spec(
                        "ladder rung `analytical` must be the first (cheapest) rung",
                    ));
                }
                Fidelity::Analytical => {}
                Fidelity::Replay if at + 1 != rungs.len() => {
                    return Err(DseError::spec(
                        "ladder rung `replay` is full fidelity and must be the last rung",
                    ));
                }
                Fidelity::Replay => {}
                Fidelity::CoarseSim(resolution) => {
                    if last_coarse.is_some_and(|previous| previous >= *resolution) {
                        return Err(DseError::spec(format!(
                            "ladder coarse rungs must strictly ascend in resolution \
                             (coarse{resolution} follows coarse{})",
                            last_coarse.unwrap_or(0)
                        )));
                    }
                    last_coarse = Some(*resolution);
                }
            }
        }
        Ok(FidelityLadder { rungs })
    }

    /// The proxy rungs, cheapest first.
    pub fn rungs(&self) -> &[Fidelity] {
        &self.rungs
    }

    /// Whether the ladder starts with the free analytical rung.
    pub fn has_analytical(&self) -> bool {
        matches!(self.rungs.first(), Some(Fidelity::Analytical))
    }

    /// Wire names of the coarse-simulation rungs, ascending resolution.
    pub fn coarse_rung_names(&self) -> Vec<String> {
        self.rungs
            .iter()
            .filter(|rung| matches!(rung, Fidelity::CoarseSim(_)))
            .map(Fidelity::name)
            .collect()
    }

    /// Validates the ladder against a concrete space: a coarse rung
    /// whose resolution is strictly above *every* model's own
    /// resolution coarsens nothing and is rejected as a spec mistake.
    /// (A rung at or above *some* points' resolutions is fine — those
    /// points are their own projection and evaluate at full fidelity
    /// directly.)
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Spec`] for a rung no point can be coarsened
    /// by.
    pub fn validate_for(&self, axes: &SweepAxes) -> Result<(), DseError> {
        let finest = axes.models.iter().map(|model| model.resolution).max().unwrap_or(u32::MAX);
        for rung in &self.rungs {
            if let Fidelity::CoarseSim(resolution) = rung {
                if *resolution > finest {
                    return Err(DseError::spec(format!(
                        "ladder rung coarse{resolution} is above every model \
                         resolution in the space (finest is {finest} px): it coarsens \
                         nothing — drop the rung or lower it to at most {finest}",
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Default for FidelityLadder {
    fn default() -> Self {
        FidelityLadder::standard()
    }
}

impl Serialize for FidelityLadder {
    fn serialize(&self) -> Content {
        self.rungs.serialize()
    }
}

impl Deserialize for FidelityLadder {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let rungs = Vec::<Fidelity>::deserialize(content)?;
        FidelityLadder::new(rungs).map_err(|e| serde::Error::new(e.to_string()))
    }
}

/// Reusable analytical pricer: caches the condensed graph per
/// `(model, resolution)` so pricing a whole generation pays one
/// frontend pass per model, then one DP partition per point.
pub struct AnalyticalPricer {
    base: ArchConfig,
    condensed: HashMap<(String, u32), Option<Arc<CondensedGraph>>>,
}

impl AnalyticalPricer {
    /// Creates a pricer over a base architecture.
    pub fn new(base: ArchConfig) -> Self {
        AnalyticalPricer { base, condensed: HashMap::new() }
    }

    /// `(estimated interval cycles, static energy mJ)` of a point under
    /// the compiler's sequential estimate, or `None` when the model is
    /// unknown or the estimate fails. The energy axis is the leakage
    /// energy over the estimated interval — an area×time proxy that
    /// lets analytical scores participate in two-objective ranking.
    pub fn objectives(&mut self, point: &PointSpec) -> Option<(u64, f64)> {
        let key = (point.model.name.clone(), point.model.resolution);
        let condensed = self
            .condensed
            .entry(key)
            .or_insert_with(|| {
                models::by_name(&point.model.name, point.model.resolution)
                    .and_then(|model| CondensedGraph::from_graph(&model.graph).ok())
                    .map(Arc::new)
            })
            .clone()?;
        let arch = point.arch(&self.base);
        let cost = CostModel::new(&arch);
        let cycles = estimate_sequential_interval(&condensed, &cost, point.strategy).ok()?;
        let energy = EnergyModel::calibrated_28nm().static_energy(&arch, cycles).total_mj();
        energy.is_finite().then_some((cycles, energy))
    }
}

/// Kendall rank correlation of `(proxy, full)` primary-objective pairs:
/// `(concordant − discordant) / comparable`, ties skipped. `None` below
/// two pairs or when every pair ties.
pub fn kendall_tau(pairs: &[(f64, f64)]) -> Option<f64> {
    if pairs.len() < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..pairs.len() {
        for j in i + 1..pairs.len() {
            let proxy = pairs[i].0 - pairs[j].0;
            let full = pairs[i].1 - pairs[j].1;
            if proxy == 0.0 || full == 0.0 {
                continue;
            }
            if (proxy > 0.0) == (full > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let comparable = concordant + discordant;
    (comparable > 0).then(|| (concordant - discordant) as f64 / comparable as f64)
}

/// Maps a measured rank fidelity to the budget share scouting may
/// spend. Uncalibrated rungs get [`DEFAULT_SCOUT_SHARE`] (the historical
/// fixed half); a perfectly faithful rung (tau 1) earns 0.65, a useless
/// or inverted rung (tau ≤ 0) is starved to the 0.15 floor — the
/// scouting never drops to zero (evidence is how calibration recovers)
/// and never eats the promotion budget entirely.
pub fn scout_share_for(tau: Option<f64>) -> f64 {
    match tau {
        None => DEFAULT_SCOUT_SHARE,
        Some(tau) => (0.15 + 0.5 * tau.max(0.0)).clamp(0.15, 0.65),
    }
}

/// Online per-`(model, rung)` rank-fidelity tracker: graduated
/// `(proxy, full)` pairs in, Kendall tau out.
#[derive(Debug, Default)]
pub struct RankFidelity {
    samples: BTreeMap<(String, String), Vec<(f64, f64)>>,
}

impl RankFidelity {
    /// An empty tracker.
    pub fn new() -> Self {
        RankFidelity::default()
    }

    /// Records one graduation: the primary objective a rung predicted
    /// for a point against what full fidelity measured.
    pub fn record(&mut self, model: &str, rung: &str, proxy: f64, full: f64) {
        self.samples.entry((model.to_owned(), rung.to_owned())).or_default().push((proxy, full));
    }

    /// Graduated pairs recorded for `(model, rung)`.
    pub fn sample_count(&self, model: &str, rung: &str) -> usize {
        self.samples.get(&(model.to_owned(), rung.to_owned())).map(Vec::len).unwrap_or(0)
    }

    /// The measured Kendall tau for `(model, rung)`, or `None` below
    /// [`MIN_CALIBRATION_SAMPLES`] pairs (or when every pair ties).
    pub fn tau(&self, model: &str, rung: &str) -> Option<f64> {
        let pairs = self.samples.get(&(model.to_owned(), rung.to_owned()))?;
        if pairs.len() < MIN_CALIBRATION_SAMPLES {
            return None;
        }
        kendall_tau(pairs)
    }

    /// Every measured tau, keyed `model/rung` (unmeasured pairs are
    /// absent).
    pub fn snapshot(&self) -> BTreeMap<String, f64> {
        self.samples
            .keys()
            .filter_map(|(model, rung)| {
                self.tau(model, rung).map(|tau| (format!("{model}/{rung}"), tau))
            })
            .collect()
    }
}

/// Feasibility ceilings for constraint-aware exploration. Inactive caps
/// admit everything, so the default is behavior-neutral.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FeasibilityCaps {
    /// Maximum system silicon area in mm² (arch-derived, so it cuts
    /// candidates *before* any simulation is paid for).
    pub max_area_mm2: Option<f64>,
    /// Maximum mean power in W over the simulated inference (needs the
    /// measured energy, so it only cuts at full fidelity).
    pub max_power_w: Option<f64>,
}

impl FeasibilityCaps {
    /// Caps that admit everything.
    pub fn none() -> Self {
        FeasibilityCaps::default()
    }

    /// Whether any cap is set.
    pub fn is_active(&self) -> bool {
        self.max_area_mm2.is_some() || self.max_power_w.is_some()
    }

    /// The area-only cut: computable from the architecture alone, before
    /// any simulation.
    pub fn admits_arch(&self, arch: &ArchConfig) -> bool {
        self.max_area_mm2.is_none_or(|cap| analysis::area_mm2(arch) <= cap)
    }

    /// The full cut: area plus mean power over the simulated inference.
    pub fn admits(&self, evaluation: &Evaluation) -> bool {
        if !self.admits_arch(&evaluation.arch) {
            return false;
        }
        match self.max_power_w {
            None => true,
            Some(cap) => mean_power_w(evaluation).map(|power| power <= cap).unwrap_or(false),
        }
    }

    /// Whether an outcome's evaluation passes the full cut (failed
    /// points are infeasible).
    pub fn admits_outcome(&self, outcome: &DseOutcome) -> bool {
        outcome.evaluation().map(|evaluation| self.admits(evaluation)).unwrap_or(false)
    }
}

impl Deserialize for FeasibilityCaps {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let map = content.as_map().ok_or_else(|| serde::Error::new("expected map for caps"))?;
        let field = |name: &str| map.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        fn opt(value: Option<&Content>, name: &str) -> Result<Option<f64>, serde::Error> {
            match value {
                Some(Content::Null) | None => Ok(None),
                Some(value) => f64::deserialize(value)
                    .map(Some)
                    .map_err(|e| serde::Error::new(format!("caps.{name}: {e}"))),
            }
        }
        Ok(FeasibilityCaps {
            max_area_mm2: opt(field("max_area_mm2"), "max_area_mm2")?,
            max_power_w: opt(field("max_power_w"), "max_power_w")?,
        })
    }
}

/// Mean power in W of a simulated inference: measured energy over the
/// simulated wall time at the chip clock. `None` when the evaluation
/// simulated zero cycles.
pub fn mean_power_w(evaluation: &Evaluation) -> Option<f64> {
    let cycles = evaluation.simulation.total_cycles;
    if cycles == 0 {
        return None;
    }
    let hertz = f64::from(evaluation.arch.chip().frequency_mhz.max(1)) * 1.0e6;
    let seconds = cycles as f64 / hertz;
    let watts = evaluation.simulation.energy_mj() * 1.0e-3 / seconds;
    watts.is_finite().then_some(watts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServiceConfig, SweepSpec};
    use cimflow_compiler::Strategy;

    #[test]
    fn rung_names_round_trip() {
        for rung in [
            Fidelity::Analytical,
            Fidelity::CoarseSim(32),
            Fidelity::CoarseSim(48),
            Fidelity::Replay,
            Fidelity::FullSim,
        ] {
            assert_eq!(Fidelity::from_name(&rung.name()), Some(rung), "{rung}");
        }
        assert_eq!(Fidelity::from_name("coarse0"), None, "a 0 px rung is nonsense");
        assert_eq!(Fidelity::from_name("coarsely"), None);
        assert_eq!(Fidelity::from_name("exact"), None);
    }

    #[test]
    fn ladder_validates_its_shape() {
        assert_eq!(
            FidelityLadder::default().rungs(),
            &[Fidelity::CoarseSim(32)],
            "the default ladder is the historical 32 px rung"
        );
        assert!(FidelityLadder::new(vec![]).is_ok(), "an empty ladder is plain random search");
        assert!(FidelityLadder::new(vec![
            Fidelity::Analytical,
            Fidelity::CoarseSim(16),
            Fidelity::CoarseSim(32),
            Fidelity::Replay,
        ])
        .is_ok());
        assert!(FidelityLadder::new(vec![Fidelity::FullSim]).is_err(), "full is implicit");
        assert!(
            FidelityLadder::new(vec![Fidelity::CoarseSim(32), Fidelity::Analytical]).is_err(),
            "analytical must come first"
        );
        assert!(
            FidelityLadder::new(vec![Fidelity::Replay, Fidelity::CoarseSim(32)]).is_err(),
            "replay must come last"
        );
        assert!(
            FidelityLadder::new(vec![Fidelity::CoarseSim(32), Fidelity::CoarseSim(32)]).is_err(),
            "coarse rungs must strictly ascend"
        );
        assert!(
            FidelityLadder::new(vec![Fidelity::CoarseSim(48), Fidelity::CoarseSim(32)]).is_err()
        );
    }

    #[test]
    fn ladder_serde_round_trips() {
        let ladder = FidelityLadder::new(vec![
            Fidelity::Analytical,
            Fidelity::CoarseSim(48),
            Fidelity::Replay,
        ])
        .unwrap();
        let back = FidelityLadder::deserialize(&ladder.serialize()).unwrap();
        assert_eq!(back, ladder);
        assert!(
            FidelityLadder::deserialize(&Content::Seq(vec![Content::Str("full".into())])).is_err(),
            "validation runs on the wire too"
        );
    }

    #[test]
    fn ladder_rejects_rungs_no_point_can_be_coarsened_by() {
        let axes = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .axes()
            .unwrap();
        let useless = FidelityLadder::new(vec![Fidelity::CoarseSim(48)]).unwrap();
        assert!(useless.validate_for(&axes).is_err(), "48 px rung on a 32 px-only space");
        let fine = FidelityLadder::new(vec![Fidelity::CoarseSim(16)]).unwrap();
        assert!(fine.validate_for(&axes).is_ok());
        // A rung *equal* to the finest resolution is the historical
        // default on a 32 px space: every point is its own projection
        // and goes straight to full fidelity.
        let identity = FidelityLadder::new(vec![Fidelity::CoarseSim(32)]).unwrap();
        assert!(identity.validate_for(&axes).is_ok());
        // A rung above *some* resolutions is fine — the finer points
        // still get coarsened.
        let mixed = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("mobilenetv2", 64)
            .with_strategies(&[Strategy::GenericMapping])
            .axes()
            .unwrap();
        assert!(useless.validate_for(&mixed).is_ok());
    }

    #[test]
    fn coarse_projection_floors_resolution_and_pins_search() {
        let point = SweepSpec::new()
            .with_model("vgg19", 64)
            .with_strategies(&[Strategy::DpOptimized])
            .with_search_modes(&[SearchMode::Joint])
            .expand()
            .unwrap()[0]
            .clone();
        let coarse = Fidelity::CoarseSim(32).project(&point);
        assert_eq!(coarse.model.resolution, 32);
        assert_eq!(coarse.search, SearchMode::Sequential);
        assert_eq!(Fidelity::Analytical.project(&point), point, "analytical never rewrites");
        assert_eq!(Fidelity::Replay.project(&point), point, "replay is identity");
        // At or below the rung the projection is the point itself.
        let fine = Fidelity::CoarseSim(64).project(&point);
        assert_eq!(fine.model.resolution, 64);
    }

    #[test]
    fn kendall_tau_measures_rank_agreement() {
        assert_eq!(kendall_tau(&[]), None);
        assert_eq!(kendall_tau(&[(1.0, 1.0)]), None);
        assert_eq!(kendall_tau(&[(1.0, 1.0), (1.0, 2.0)]), None, "all-tied pairs measure nothing");
        let agree = [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)];
        assert_eq!(kendall_tau(&agree), Some(1.0));
        let invert = [(1.0, 30.0), (2.0, 20.0), (3.0, 10.0)];
        assert_eq!(kendall_tau(&invert), Some(-1.0));
        let mixed = [(1.0, 10.0), (2.0, 30.0), (3.0, 20.0)];
        let tau = kendall_tau(&mixed).unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "2 concordant, 1 discordant → 1/3, got {tau}");
    }

    #[test]
    fn scout_share_adapts_to_measured_fidelity() {
        assert_eq!(scout_share_for(None), DEFAULT_SCOUT_SHARE, "uncalibrated keeps the old half");
        assert_eq!(scout_share_for(Some(1.0)), 0.65, "a faithful rung earns more scouting");
        assert_eq!(scout_share_for(Some(0.0)), 0.15, "a useless rung is starved to the floor");
        assert_eq!(scout_share_for(Some(-1.0)), 0.15, "an inverted rung too");
        assert!(scout_share_for(Some(0.9)) > scout_share_for(Some(0.3)), "monotone in tau");
    }

    #[test]
    fn rank_fidelity_needs_enough_graduations() {
        let mut tracker = RankFidelity::new();
        tracker.record("resnet18", "coarse32", 100.0, 110.0);
        tracker.record("resnet18", "coarse32", 200.0, 190.0);
        assert_eq!(tracker.tau("resnet18", "coarse32"), None, "below the sample floor");
        // The third graduation flips the order the proxy promised: one
        // of three pairs is discordant.
        tracker.record("resnet18", "coarse32", 300.0, 150.0);
        let tau = tracker.tau("resnet18", "coarse32").unwrap();
        assert!((tau - 1.0 / 3.0).abs() < 1e-12, "2 concordant, 1 discordant → 1/3, got {tau}");
        assert_eq!(tracker.tau("resnet18", "coarse16"), None, "per-rung isolation");
        assert_eq!(tracker.sample_count("resnet18", "coarse32"), 3);
        let snapshot = tracker.snapshot();
        assert_eq!(snapshot.len(), 1);
        assert!(snapshot.contains_key("resnet18/coarse32"));
    }

    #[test]
    fn feasibility_caps_cut_area_and_power() {
        let arch = ArchConfig::paper_default();
        let area = analysis::area_mm2(&arch);
        let none = FeasibilityCaps::none();
        assert!(!none.is_active());
        assert!(none.admits_arch(&arch), "inactive caps admit everything");
        let tight = FeasibilityCaps { max_area_mm2: Some(area / 2.0), max_power_w: None };
        assert!(tight.is_active());
        assert!(!tight.admits_arch(&arch));
        let loose = FeasibilityCaps { max_area_mm2: Some(area * 2.0), max_power_w: None };
        assert!(loose.admits_arch(&arch));
    }

    #[test]
    fn caps_serde_round_trips_and_defaults_open() {
        let caps = FeasibilityCaps { max_area_mm2: Some(120.0), max_power_w: Some(35.5) };
        let back = FeasibilityCaps::deserialize(&caps.serialize()).unwrap();
        assert_eq!(back, caps);
        let empty = FeasibilityCaps::deserialize(&Content::Map(vec![])).unwrap();
        assert_eq!(empty, FeasibilityCaps::none());
    }

    #[test]
    fn analytical_pricer_estimates_and_caches() {
        let space = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_chip_counts(&[1, 2]);
        let points = space.expand().unwrap();
        let mut pricer = AnalyticalPricer::new(space.base_arch());
        let (cycles_one, energy_one) = pricer.objectives(&points[0]).unwrap();
        let (cycles_two, _) = pricer.objectives(&points[1]).unwrap();
        assert!(cycles_one > 0 && cycles_two > 0);
        assert!(energy_one > 0.0 && energy_one.is_finite());
        assert_eq!(pricer.condensed.len(), 1, "one frontend pass serves both points");
        let mut unknown = points[0].clone();
        unknown.model.name = "no-such-model".into();
        assert_eq!(pricer.objectives(&unknown), None);
    }

    #[test]
    fn price_is_uniform_across_rungs() {
        let point = SweepSpec::new()
            .with_model("mobilenetv2", 48)
            .with_strategies(&[Strategy::GenericMapping])
            .expand()
            .unwrap()[0]
            .clone();
        let base = ArchConfig::paper_default();
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let analytical = Fidelity::Analytical.price(&point, &base, &service).unwrap();
        assert_eq!(analytical.rung, "analytical");
        let (estimate, _) = analytical.objectives.unwrap();
        assert!(estimate > 0);
        let coarse = Fidelity::CoarseSim(32).price(&point, &base, &service).unwrap();
        assert_eq!(coarse.rung, "coarse32");
        let (coarse_cycles, coarse_energy) = coarse.objectives.unwrap();
        assert!(coarse_cycles > 0 && coarse_energy.is_finite());
        let full = Fidelity::FullSim.price(&point, &base, &service).unwrap();
        let (full_cycles, _) = full.objectives.unwrap();
        assert!(
            coarse_cycles < full_cycles,
            "the 32 px projection simulates less work than the 48 px point"
        );
    }
}
