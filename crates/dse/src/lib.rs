//! # cimflow-dse
//!
//! A batch design-space-exploration engine for the CIMFlow framework: the
//! subsystem behind the paper's architectural sweeps (Figs. 6–7) and any
//! larger exploration built on top of them.
//!
//! The engine is organized as a staged pipeline:
//!
//! 1. **Specify** — a [`SweepSpec`] declares the grid (models, strategies,
//!    system-level search modes, chip counts, macro-group sizes, flit
//!    sizes, core counts, local-memory capacities) as *data*; sweeps are
//!    JSON config files, not code.
//! 2. **Expand** — the spec expands deterministically into [`PointSpec`]
//!    grid points and concrete [`Job`]s.
//! 3. **Execute** — an [`Executor`] fans the jobs out across a worker
//!    pool; every point's failure is captured in its [`DseOutcome`]
//!    instead of aborting the sweep, and results keep grid order.
//! 4. **Memoize** — a content-hashed [`EvalCache`] (keyed by
//!    architecture, model and strategy content) makes repeated points —
//!    common across figures and warm re-runs — a map lookup.
//! 5. **Analyze/export** — Pareto-frontier extraction over
//!    (cycles, energy), best-per-model selection, CSV/JSON exporters.
//!
//! The `cimflow-dse` binary drives the whole pipeline from a sweep file:
//! `cargo run -p cimflow-dse -- sweep.json`.
//!
//! # Example
//!
//! ```
//! use cimflow_dse::{analysis, Executor, EvalCache, SweepSpec};
//! use cimflow_compiler::Strategy;
//!
//! # fn main() -> Result<(), cimflow_dse::DseError> {
//! let spec = SweepSpec::new()
//!     .with_model("mobilenetv2", 32)
//!     .with_strategies(&[Strategy::GenericMapping])
//!     .with_mg_sizes(&[4, 8]);
//! let cache = EvalCache::new();
//! let outcomes = Executor::with_workers(2).run_spec(&spec, &cache)?;
//! assert_eq!(outcomes.len(), 2);
//! assert!(!analysis::pareto_frontier(&outcomes).is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod cache;
mod error;
mod eval;
mod executor;
mod explore;
pub mod export;
mod fidelity;
mod journal;
pub mod serve;
mod service;
mod spec;
mod trace_store;

pub use cache::{
    arch_content_hash, model_content_hash, traffic_fingerprint, CacheKey, CacheStats, EvalCache,
    CACHE_ENGINE_VERSION, CACHE_FORMAT_VERSION,
};
pub use error::DseError;
pub use eval::{
    evaluate, evaluate_traced, evaluate_with_search, EvalPath, Evaluation, ServingSummary,
    TrafficJob,
};
pub use executor::{expand_jobs, run_sweep, DseOutcome, Executor, Job, Progress};
pub use explore::{
    explore, explore_journaled, ExploreAlgorithm, ExploreReport, ExploreSpec, GenerationStats,
    COARSE_RESOLUTION, DEFAULT_SEED,
};
pub use fidelity::{
    kendall_tau, mean_power_w, scout_share_for, AnalyticalPricer, FeasibilityCaps, Fidelity,
    FidelityLadder, ProxyScore, RankFidelity, DEFAULT_SCOUT_SHARE, MIN_CALIBRATION_SAMPLES,
};
pub use journal::{CompactionStats, SweepJournal, JOURNAL_FORMAT_VERSION};
pub use service::{
    BatchHandle, EvalRequest, EvalService, JobEvent, JobHandle, JobStatus, Priority, Rejected,
    ServiceConfig, ServiceStats, TrafficRequest, DEFAULT_TENANT,
};
pub use spec::{ModelSpec, PointSpec, SweepAxes, SweepSpec, TrafficSpec, AXIS_COUNT};
pub use trace_store::{TraceEntry, TraceKey, TraceStore, TraceStoreStats, DEFAULT_TRACE_CAPACITY};
