//! Content-hashed evaluation cache.
//!
//! Sweep grids behind different figures overlap heavily (Fig. 6's generic
//! points reappear inside Fig. 7, warm re-runs repeat everything), so the
//! engine memoizes finished [`Evaluation`]s keyed by the *content* of the
//! design point: FNV-1a hashes of the serialized architecture and model
//! plus the strategy name. A repeated point is a map lookup instead of a
//! full compile → simulate run, and any change to the architecture or the
//! model changes its hash and therefore invalidates the entry.
//!
//! The cache is thread-safe (shared by all executor workers) and can be
//! persisted to JSON so separate processes — e.g. the `fig6` and `fig7`
//! bench targets — share warm state.
//!
//! **Staleness:** the key captures the *inputs* of an evaluation, not the
//! simulator/compiler code that produced it. Persisted files therefore
//! carry the engine crate version (plus a format version), and
//! [`EvalCache::load`] starts cold when either differs. Within one
//! version, editing the cost/timing/energy models does **not** invalidate
//! an existing cache file — delete it (or point `CIMFLOW_DSE_CACHE`
//! elsewhere) after such changes, or bump [`CACHE_FORMAT_VERSION`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cimflow_arch::ArchConfig;
use cimflow_compiler::{SearchMode, Strategy};
use cimflow_nn::Model;
use serde::{Deserialize, Serialize};

use crate::{DseError, Evaluation};

/// On-disk cache format version; bump on any change to the evaluation
/// semantics (simulator timing, energy model, compiler cost model) or
/// the persisted schema that should invalidate previously persisted
/// results. Version 2: the system level (multi-chip) — `SimReport` and
/// `EnergyBreakdown` gained inter-chip fields. Version 3: the joint
/// partition search — `CacheKey`/`Evaluation` gained the search mode,
/// `SimReport` grew overlap/stall metrics, and the simulator's
/// inter-chip hand-off became tile-streaming. Version 4: the trace-replay
/// engine — `Evaluation` gained the `eval_path` provenance field and
/// sweep points gained the timing-only frequency/memory-port axes.
/// Version 5: serving mode — `CacheKey` gained the `traffic` workload
/// fingerprint and `Evaluation` the optional `serving` SLO summary.
pub const CACHE_FORMAT_VERSION: u32 = 5;

/// Engine identity stamped into persisted cache files (the `cimflow-dse`
/// crate version); a mismatch makes [`EvalCache::load`] start cold.
pub const CACHE_ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// 64-bit FNV-1a: deterministic across runs, platforms and compiler
/// versions (unlike `DefaultHasher`, which documents no such stability).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Content hash of an architecture configuration.
pub fn arch_content_hash(arch: &ArchConfig) -> u64 {
    fnv1a(arch.to_json().as_bytes())
}

/// Content hash of a model (graph structure + name).
pub fn model_content_hash(model: &Model) -> u64 {
    let mut text = model.name.clone();
    text.push('\0');
    text.push_str(&model.graph.to_json());
    fnv1a(text.as_bytes())
}

/// Cache key identifying one (architecture, model, strategy, search
/// mode, serving workload) point by content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct CacheKey {
    /// FNV-1a hash of the serialized architecture.
    pub arch: u64,
    /// FNV-1a hash of the serialized model.
    pub model: u64,
    /// The compilation strategy.
    pub strategy: Strategy,
    /// The system-level search mode (joint and sequential compilations
    /// of one point are distinct results).
    pub search: SearchMode,
    /// Fingerprint of the serving workload (offered rate + preset +
    /// co-located models); `0` when the point runs no serving workload.
    pub traffic: u64,
}

impl CacheKey {
    /// Computes the key of a design point without a serving workload.
    pub fn of(arch: &ArchConfig, model: &Model, strategy: Strategy, search: SearchMode) -> Self {
        CacheKey {
            arch: arch_content_hash(arch),
            model: model_content_hash(model),
            strategy,
            search,
            traffic: 0,
        }
    }

    /// The same key scoped to a serving workload (see
    /// [`traffic_fingerprint`]); `0` returns the no-serving key.
    #[must_use]
    pub fn with_traffic(mut self, fingerprint: u64) -> Self {
        self.traffic = fingerprint;
        self
    }
}

// Manual Deserialize so journal rows written before serving mode existed
// (no `traffic` key) keep resuming: the missing field reads as 0 = no
// serving workload, which is exactly what those rows evaluated.
impl Deserialize for CacheKey {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let map = content.as_map().ok_or_else(|| serde::Error::new("expected map for CacheKey"))?;
        fn field<T: Deserialize>(
            map: &[(String, serde::Content)],
            name: &str,
        ) -> Result<T, serde::Error> {
            let v = map
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| serde::Error::new(format!("CacheKey: missing field {name}")))?;
            T::deserialize(v).map_err(|e| serde::Error::new(format!("CacheKey.{name}: {e}")))
        }
        Ok(CacheKey {
            arch: field(map, "arch")?,
            model: field(map, "model")?,
            strategy: field(map, "strategy")?,
            search: field(map, "search")?,
            traffic: match map.iter().find(|(k, _)| k == "traffic") {
                Some((_, v)) => u64::deserialize(v)
                    .map_err(|e| serde::Error::new(format!("CacheKey.traffic: {e}")))?,
                None => 0,
            },
        })
    }
}

/// Content fingerprint of a serving workload: the offered rate, the
/// serialized [`WorkloadSpec`](cimflow_traffic::WorkloadSpec) preset and
/// every co-located model's content hash (order-sensitive — the mix
/// indexes models by position). Never returns 0, so "no serving" and
/// "some serving" can share the [`CacheKey::traffic`] field.
pub fn traffic_fingerprint(
    offered_qps: u64,
    workload: &cimflow_traffic::WorkloadSpec,
    colocated: &[(String, std::sync::Arc<Model>)],
) -> u64 {
    let mut text = format!(
        "qps={offered_qps}\0{}",
        serde_json::to_string(workload).expect("workload serialization cannot fail")
    );
    for (name, model) in colocated {
        text.push('\0');
        text.push_str(name);
        text.push_str(&format!(":{:016x}", model_content_hash(model)));
    }
    fnv1a(text.as_bytes()).max(1)
}

/// Hit/miss counters of a cache (monotonic over the cache's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
    /// Lookups that arrived while the same key was already being
    /// evaluated and waited for that in-flight result instead of
    /// duplicating it (each such lookup also counts as a hit once the
    /// result lands).
    pub coalesced: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (0 for an unused cache).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }
}

// Manual (de)serialization so the wire format stays compatible in both
// directions: `coalesced` defaults to 0 when absent, letting a new
// client parse a `stats` reply from an old server (the derive would
// reject the missing field).
impl Serialize for CacheStats {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("hits".to_owned(), serde::Content::U64(self.hits)),
            ("misses".to_owned(), serde::Content::U64(self.misses)),
            ("coalesced".to_owned(), serde::Content::U64(self.coalesced)),
        ])
    }
}

impl Deserialize for CacheStats {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let map = content.as_map().ok_or_else(|| {
            serde::Error::new(format!("CacheStats: expected map, got {}", content.kind_name()))
        })?;
        let field = |name: &str| -> Result<u64, serde::Error> {
            match map.iter().find(|(k, _)| k == name) {
                Some((_, v)) => u64::deserialize(v)
                    .map_err(|e| serde::Error::new(format!("CacheStats.{name}: {e}"))),
                None if name == "coalesced" => Ok(0),
                None => Err(serde::Error::new(format!("missing field `{name}` in CacheStats"))),
            }
        };
        Ok(CacheStats {
            hits: field("hits")?,
            misses: field("misses")?,
            coalesced: field("coalesced")?,
        })
    }
}

/// A thread-safe, content-addressed store of finished evaluations.
///
/// The store lives behind an [`Arc`](std::sync::Arc), so `Clone` is
/// shallow: every clone
/// shares the same entries and counters. That is what lets the long-lived
/// [`EvalService`](crate::EvalService) worker threads and a caller holding
/// `&EvalCache` (the blocking [`Executor`](crate::Executor) API) operate
/// on one cache.
#[derive(Debug, Clone, Default)]
pub struct EvalCache {
    inner: std::sync::Arc<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: Mutex<HashMap<CacheKey, Evaluation>>,
    /// Keys currently being evaluated by some worker; concurrent lookups
    /// of the same key wait on [`Self::in_flight_done`] instead of
    /// duplicating the compile → simulate pipeline.
    in_flight: Mutex<std::collections::HashSet<CacheKey>>,
    in_flight_done: std::sync::Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored evaluations.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().expect("cache poisoned").len()
    }

    /// Whether the cache holds no evaluations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            coalesced: self.inner.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Looks an evaluation up, counting a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Evaluation> {
        let found = self.lookup(key);
        if found.is_some() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Uncounted lookup.
    fn lookup(&self, key: &CacheKey) -> Option<Evaluation> {
        self.inner.entries.lock().expect("cache poisoned").get(key).cloned()
    }

    /// Stores an evaluation.
    pub fn insert(&self, key: CacheKey, evaluation: Evaluation) {
        self.inner.entries.lock().expect("cache poisoned").insert(key, evaluation);
    }

    /// Looks up, or evaluates-and-stores on a miss.
    ///
    /// Concurrent callers with the same key are deduplicated: the first
    /// one evaluates while the others block until the result lands and
    /// then take it as a hit, so an expensive point is never compiled
    /// twice in parallel. (If the owning evaluation fails, one waiter
    /// takes over — errors are not cached.)
    ///
    /// # Errors
    ///
    /// Propagates the evaluator's error (errors are not cached: a point
    /// that failed because of a transient condition may be retried).
    pub fn get_or_insert_with(
        &self,
        key: CacheKey,
        evaluate: impl FnOnce() -> Result<Evaluation, DseError>,
    ) -> Result<(Evaluation, bool), DseError> {
        let mut waited = false;
        loop {
            if let Some(hit) = self.lookup(&key) {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                if waited {
                    self.inner.coalesced.fetch_add(1, Ordering::Relaxed);
                }
                return Ok((hit, true));
            }
            let mut in_flight = self.inner.in_flight.lock().expect("cache poisoned");
            if in_flight.insert(key) {
                break; // this caller owns the evaluation
            }
            // Another worker is evaluating this key: wait for it to
            // finish (or fail), then re-check the entries. Counted as a
            // coalesced lookup (once, however many wakeups it takes) if
            // the in-flight result ends up serving it.
            waited = true;
            let guard = self.inner.in_flight_done.wait(in_flight).expect("cache poisoned");
            drop(guard);
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        // Release the marker even if `evaluate` panics, so waiters are
        // woken instead of deadlocking (one of them takes over).
        struct InFlightGuard<'a> {
            cache: &'a CacheInner,
            key: CacheKey,
        }
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                let mut in_flight =
                    self.cache.in_flight.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                in_flight.remove(&self.key);
                self.cache.in_flight_done.notify_all();
            }
        }
        let guard = InFlightGuard { cache: &self.inner, key };
        let result = evaluate();
        if let Ok(evaluation) = &result {
            // Publish before releasing the in-flight marker so waiters
            // always observe the entry when they wake.
            self.insert(key, evaluation.clone());
        }
        drop(guard);
        result.map(|evaluation| (evaluation, false))
    }

    /// Serializes all entries to JSON (counters are not persisted).
    pub fn to_json(&self) -> String {
        let entries = self.inner.entries.lock().expect("cache poisoned");
        let mut rows: Vec<(CacheKey, Evaluation)> =
            entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        // Deterministic file contents regardless of hash-map order.
        rows.sort_by_key(|(k, _)| (k.model, k.arch, k.strategy.name(), k.search.name(), k.traffic));
        let rows: Vec<CacheEntry> =
            rows.into_iter().map(|(key, evaluation)| CacheEntry { key, evaluation }).collect();
        serde_json::to_string_pretty(&CacheFile {
            version: CACHE_FORMAT_VERSION,
            engine: CACHE_ENGINE_VERSION.to_owned(),
            entries: rows,
        })
        .expect("cache serialization cannot fail")
    }

    /// Restores a cache from [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] for malformed contents or for a file
    /// written by a different engine/format version (stale results must
    /// not be served across engine changes; [`Self::load`] treats that
    /// case as a cold start instead).
    pub fn from_json(text: &str) -> Result<Self, DseError> {
        let file: CacheFile =
            serde_json::from_str(text).map_err(|e| DseError::io(format!("bad cache file: {e}")))?;
        if file.version != CACHE_FORMAT_VERSION || file.engine != CACHE_ENGINE_VERSION {
            return Err(DseError::io(format!(
                "cache written by engine {} format {} (this engine: {} format {})",
                file.engine, file.version, CACHE_ENGINE_VERSION, CACHE_FORMAT_VERSION
            )));
        }
        let cache = EvalCache::new();
        {
            let mut entries = cache.inner.entries.lock().expect("cache poisoned");
            for entry in file.entries {
                entries.insert(entry.key, entry.evaluation);
            }
        }
        Ok(cache)
    }

    /// Loads a cache from a JSON file. Returns an empty cache if the file
    /// does not exist **or** was written by a different engine/format
    /// version (an expected lifecycle event — the sweep simply runs
    /// cold and overwrites the file on save).
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] for unreadable or malformed files.
    pub fn load(path: &std::path::Path) -> Result<Self, DseError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Self::new()),
            Err(e) => return Err(DseError::io(format!("cannot read {}: {e}", path.display()))),
        };
        match serde_json::from_str::<CacheFile>(&text) {
            Ok(file)
                if file.version != CACHE_FORMAT_VERSION || file.engine != CACHE_ENGINE_VERSION =>
            {
                Ok(Self::new())
            }
            Ok(_) => Self::from_json(&text),
            // Well-formed JSON of an older/unknown schema is a stale
            // cache: start cold. Anything that is not JSON at all is
            // corruption and surfaces as an error.
            Err(_) if serde_json::from_str::<serde_json::Value>(&text).is_ok() => Ok(Self::new()),
            Err(e) => Err(DseError::io(format!("bad cache file {}: {e}", path.display()))),
        }
    }

    /// Persists the cache to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`DseError::Io`] when the file cannot be written.
    pub fn save(&self, path: &std::path::Path) -> Result<(), DseError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| {
                    DseError::io(format!("cannot create {}: {e}", parent.display()))
                })?;
            }
        }
        std::fs::write(path, self.to_json())
            .map_err(|e| DseError::io(format!("cannot write {}: {e}", path.display())))
    }
}

#[derive(Serialize, Deserialize)]
struct CacheEntry {
    key: CacheKey,
    evaluation: Evaluation,
}

#[derive(Serialize, Deserialize)]
struct CacheFile {
    version: u32,
    /// `cimflow-dse` crate version that wrote the file.
    engine: String,
    entries: Vec<CacheEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use cimflow_nn::models;

    #[test]
    fn hit_miss_accounting_and_reuse() {
        let cache = EvalCache::new();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);

        let mut evaluations = 0u32;
        let mut run = || {
            cache.get_or_insert_with(key, || {
                evaluations += 1;
                evaluate(&arch, &model, Strategy::GenericMapping)
            })
        };
        let (first, was_hit) = run().unwrap();
        assert!(!was_hit);
        let (second, was_hit) = run().unwrap();
        assert!(was_hit, "second lookup must be served from the cache");
        assert_eq!(evaluations, 1, "warm lookup must not recompile");
        assert_eq!(first.simulation.total_cycles, second.simulation.total_cycles);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, coalesced: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clones_share_one_store() {
        let cache = EvalCache::new();
        let clone = cache.clone();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        clone.insert(key, evaluate(&arch, &model, Strategy::GenericMapping).unwrap());
        assert_eq!(cache.len(), 1, "a clone writes into the same store");
        assert!(cache.get(&key).is_some());
        assert_eq!(clone.stats(), cache.stats(), "counters are shared too");
    }

    #[test]
    fn any_arch_change_invalidates_the_key() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&base, &model, Strategy::GenericMapping, SearchMode::Sequential);
        for changed in [
            base.with_macros_per_group(4),
            base.with_flit_bytes(16),
            base.with_core_count(16),
            base.with_local_memory_kib(256),
            base.with_frequency_mhz(500),
        ] {
            assert_ne!(
                CacheKey::of(&changed, &model, Strategy::GenericMapping, SearchMode::Sequential),
                key
            );
        }
        // Same content, separately constructed value → same key.
        assert_eq!(
            CacheKey::of(
                &ArchConfig::paper_default(),
                &model,
                Strategy::GenericMapping,
                SearchMode::Sequential
            ),
            key
        );
        // Strategy and model are part of the key too.
        assert_ne!(CacheKey::of(&base, &model, Strategy::DpOptimized, SearchMode::Sequential), key);
        assert_ne!(
            CacheKey::of(
                &base,
                &models::mobilenet_v2(64),
                Strategy::GenericMapping,
                SearchMode::Sequential
            ),
            key
        );
    }

    #[test]
    fn every_chip_count_gets_its_own_cache_key() {
        let base = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let mut keys: Vec<_> = [1u32, 2, 4, 8]
            .iter()
            .map(|chips| {
                CacheKey::of(
                    &base.with_chip_count(*chips),
                    &model,
                    Strategy::DpOptimized,
                    SearchMode::Sequential,
                )
            })
            .collect();
        // chip_count = 1 must key identically to the historical
        // single-chip serialization (warm caches stay warm) …
        assert_eq!(
            keys[0],
            CacheKey::of(&base, &model, Strategy::DpOptimized, SearchMode::Sequential)
        );
        // … while every scale-out point is distinct.
        keys.sort_by_key(|k| k.arch);
        keys.dedup_by_key(|k| k.arch);
        assert_eq!(keys.len(), 4);
        // The interconnect is part of the key as well.
        assert_ne!(
            CacheKey::of(
                &base.with_chip_count(2),
                &model,
                Strategy::DpOptimized,
                SearchMode::Sequential
            ),
            CacheKey::of(
                &base.with_chip_count(2).with_interchip_link_bytes(64),
                &model,
                Strategy::DpOptimized,
                SearchMode::Sequential
            )
        );
    }

    #[test]
    fn search_modes_key_distinct_cache_slots() {
        let arch = ArchConfig::paper_default().with_chip_count(2);
        let model = models::mobilenet_v2(32);
        let sequential = CacheKey::of(&arch, &model, Strategy::DpOptimized, SearchMode::Sequential);
        let joint = CacheKey::of(&arch, &model, Strategy::DpOptimized, SearchMode::Joint);
        assert_ne!(sequential, joint, "joint results must never serve sequential lookups");
        assert_eq!(sequential.arch, joint.arch, "only the mode differs");
    }

    #[test]
    fn concurrent_lookups_of_one_key_evaluate_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::Barrier;

        let cache = EvalCache::new();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let evaluations = AtomicU32::new(0);
        // All four threads line up at the call site, and the winning
        // evaluation holds long enough for the losers to reach the
        // in-flight marker — otherwise (notably on a single-CPU box) a
        // fast winner can finish before the others are scheduled at all,
        // turning the waiters into plain warm hits.
        let arrive = Barrier::new(4);

        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    arrive.wait();
                    let (_, _) = cache
                        .get_or_insert_with(key, || {
                            evaluations.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(std::time::Duration::from_millis(200));
                            evaluate(&arch, &model, Strategy::GenericMapping)
                        })
                        .unwrap();
                });
            }
        });

        assert_eq!(evaluations.load(Ordering::Relaxed), 1, "in-flight dedup must hold");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.coalesced, 3, "every waiter is a coalesced lookup");
    }

    #[test]
    fn cache_stats_wire_format_tolerates_old_servers() {
        use serde::{Deserialize as _, Serialize as _};

        let stats = CacheStats { hits: 7, misses: 2, coalesced: 3 };
        let round = CacheStats::deserialize(&stats.serialize()).unwrap();
        assert_eq!(round, stats);

        // A reply from a server predating the `coalesced` field still
        // parses, defaulting the counter to 0.
        let old = serde::Content::Map(vec![
            ("hits".to_owned(), serde::Content::U64(7)),
            ("misses".to_owned(), serde::Content::U64(2)),
        ]);
        assert_eq!(
            CacheStats::deserialize(&old).unwrap(),
            CacheStats { hits: 7, misses: 2, coalesced: 0 }
        );
        // Genuinely required fields still error when absent.
        let broken = serde::Content::Map(vec![("hits".to_owned(), serde::Content::U64(7))]);
        assert!(CacheStats::deserialize(&broken).is_err());
    }

    #[test]
    fn cache_round_trips_through_json() {
        let cache = EvalCache::new();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        let evaluation = evaluate(&arch, &model, Strategy::GenericMapping).unwrap();
        cache.insert(key, evaluation.clone());

        let restored = EvalCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(restored.len(), 1);
        let (back, was_hit) =
            restored.get_or_insert_with(key, || panic!("restored cache must hit")).unwrap();
        assert!(was_hit);
        assert_eq!(back.simulation.total_cycles, evaluation.simulation.total_cycles);
        assert_eq!(back.compilation, evaluation.compilation);

        assert!(EvalCache::from_json("{\"version\": 99, \"engine\": \"9.9.9\", \"entries\": []}")
            .is_err());
        assert!(EvalCache::from_json("not json").is_err());
    }

    #[test]
    fn stale_engine_version_starts_cold_on_load() {
        let dir = std::env::temp_dir().join("cimflow-dse-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stale.json");

        // A file written by a different engine version must not serve
        // results (simulator semantics may have changed); load() treats
        // it as a cold start rather than an error.
        std::fs::write(&path, "{\"version\": 1, \"engine\": \"0.0.0-other\", \"entries\": []}")
            .unwrap();
        let cache = EvalCache::load(&path).unwrap();
        assert!(cache.is_empty());

        // A current-version file round-trips through load/save.
        let cache = EvalCache::new();
        let arch = ArchConfig::paper_default();
        let model = models::mobilenet_v2(32);
        let key = CacheKey::of(&arch, &model, Strategy::GenericMapping, SearchMode::Sequential);
        cache.insert(key, evaluate(&arch, &model, Strategy::GenericMapping).unwrap());
        cache.save(&path).unwrap();
        assert_eq!(EvalCache::load(&path).unwrap().len(), 1);

        // A well-formed file of an older schema (no `engine` field) is
        // stale, not corrupt: cold start.
        std::fs::write(&path, "{\"version\": 1, \"entries\": []}").unwrap();
        assert!(EvalCache::load(&path).unwrap().is_empty());

        // Malformed files still surface as errors.
        std::fs::write(&path, "{broken").unwrap();
        assert!(EvalCache::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
