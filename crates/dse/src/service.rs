//! The service core of the evaluation API: a long-lived [`EvalService`]
//! that owns one worker pool and one shared [`EvalCache`], accepts
//! [`EvalRequest`]s and sweeps through non-blocking submission, and hands
//! back [`JobHandle`]s/[`BatchHandle`]s that support polling, blocking
//! waits, cancellation and streamed progress events.
//!
//! This is the **one pipeline** behind every evaluation surface:
//!
//! * the blocking [`Executor`](crate::Executor) is a thin wrapper that
//!   submits a batch to an ephemeral service and waits for it;
//! * the `cimflow-dse serve` subcommand (and the `cimflow-serve` client
//!   crate) speak a JSON protocol straight onto a long-lived service;
//! * the `cimflow` facade re-exports the service types.
//!
//! The module lives in `cimflow-dse` (rather than in the `cimflow-serve`
//! crate) so the executor can be rebased on it without a crate cycle;
//! `cimflow-serve` re-exports everything here and adds the network front
//! end.
//!
//! # Admission control
//!
//! [`submit`](EvalService::submit) and
//! [`submit_sweep_as`](EvalService::submit_sweep_as) are *admitted*
//! surfaces: a bounded queue ([`ServiceConfig::with_queue_capacity`])
//! rejects submissions with [`Rejected::QueueFull`] backpressure when the
//! backlog is full, and per-tenant quotas
//! ([`ServiceConfig::with_tenant_quota`]) cap how many points one tenant
//! may have in flight so a single heavy tenant cannot starve the others.
//! The executor-compatibility surfaces
//! ([`submit_jobs`](EvalService::submit_jobs),
//! [`submit_sweep`](EvalService::submit_sweep)) bypass admission — they
//! serve trusted in-process batch callers.
//!
//! # Coalescing
//!
//! All workers share one [`EvalCache`], whose in-flight deduplication
//! means two tenants asking for the same design point share a single
//! compile → simulate run: the second request blocks inside the cache
//! until the first finishes and then takes the result as a hit.
//!
//! # Example
//!
//! ```
//! use cimflow_dse::{EvalRequest, EvalService, Priority, ServiceConfig};
//! use cimflow_compiler::Strategy;
//!
//! let service = EvalService::new(ServiceConfig::new().with_workers(2));
//! let handle = service
//!     .submit(
//!         EvalRequest::new("mobilenetv2", 32, Strategy::GenericMapping)
//!             .with_tenant("docs")
//!             .with_priority(Priority::High),
//!     )
//!     .expect("an unconfigured service admits everything");
//! let outcome = handle.wait();
//! assert!(outcome.result.is_ok());
//! ```

use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cimflow_arch::ArchConfig;
use cimflow_compiler::{SearchMode, Strategy};
use cimflow_nn::models;
use cimflow_obs::{
    thread_track, Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Tracer,
};
use serde::{Deserialize, Serialize};

use crate::journal::SweepJournal;
use crate::trace_store::{TraceKey, TraceStore};
use crate::{
    traffic_fingerprint, CacheKey, DseError, DseOutcome, EvalCache, EvalPath, Job, ModelSpec,
    PointSpec, Progress, SweepSpec,
};

/// Tenant name used when a request does not set one.
pub const DEFAULT_TENANT: &str = "anonymous";

/// Scheduling priority of a submitted job. Workers always claim the
/// highest-priority queued job, FIFO within one priority class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Background work: claimed only when nothing else is queued.
    Low,
    /// The default class.
    #[default]
    Normal,
    /// Latency-sensitive work: claimed before everything else.
    High,
}

impl Priority {
    /// Wire name of the priority.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }

    /// Parses a wire name (accepts capitalized variants too).
    pub fn from_name(text: &str) -> Option<Self> {
        match text {
            "low" | "Low" => Some(Priority::Low),
            "normal" | "Normal" => Some(Priority::Normal),
            "high" | "High" => Some(Priority::High),
            _ => None,
        }
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::Serialize for Priority {
    fn serialize(&self) -> serde::Content {
        serde::Content::Str(self.name().to_owned())
    }
}

impl serde::Deserialize for Priority {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected priority name string"))?;
        Priority::from_name(text)
            .ok_or_else(|| serde::Error::new(format!("unknown priority `{text}`")))
    }
}

/// One evaluation request: which design point to evaluate, on behalf of
/// which tenant, at which priority.
///
/// Every architecture field left `None` pins the corresponding parameter
/// to the base architecture (the paper's Table I default unless
/// [`base`](Self::base) overrides it) — the same semantics as an empty
/// [`SweepSpec`] axis. Unknown model names are *accepted* and surface as
/// a per-job [`DseError::UnknownModel`] outcome, mirroring the executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRequest {
    /// The model to evaluate.
    pub model: ModelSpec,
    /// The compilation strategy.
    pub strategy: Strategy,
    /// System-level search-mode override; `None` means
    /// [`SearchMode::Sequential`].
    pub search: Option<SearchMode>,
    /// Base architecture override; `None` means the paper default.
    pub base: Option<ArchConfig>,
    /// Chip-count override (the scale-out axis).
    pub chip_count: Option<u32>,
    /// Per-chip core-count override.
    pub core_count: Option<u32>,
    /// Per-core local-memory override in KiB.
    pub local_memory_kib: Option<u64>,
    /// NoC flit-size override in bytes.
    pub flit_bytes: Option<u32>,
    /// Macro-group-size override.
    pub mg_size: Option<u32>,
    /// Submitting tenant; `None` means [`DEFAULT_TENANT`].
    pub tenant: Option<String>,
    /// Scheduling priority; `None` means [`Priority::Normal`].
    pub priority: Option<Priority>,
    /// Serving workload; `None` keeps the classic single-inference
    /// evaluation. (Absent on old wire clients, which parses as `None`.)
    pub traffic: Option<TrafficRequest>,
}

/// The serving-workload attachment of an [`EvalRequest`]: one offered
/// rate plus an optional workload preset (single-model — the wire
/// surface has no model axis to co-locate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficRequest {
    /// Offered request rate in requests/second (must be positive).
    pub offered_qps: u64,
    /// Workload preset; `None` means the default Poisson preset.
    pub workload: Option<cimflow_traffic::WorkloadSpec>,
}

impl EvalRequest {
    /// Creates a request for a model at the paper-default architecture.
    pub fn new(model: impl Into<String>, resolution: u32, strategy: Strategy) -> Self {
        EvalRequest {
            model: ModelSpec::new(model, resolution),
            strategy,
            search: None,
            base: None,
            chip_count: None,
            core_count: None,
            local_memory_kib: None,
            flit_bytes: None,
            mg_size: None,
            tenant: None,
            priority: None,
            traffic: None,
        }
    }

    /// Sets the base architecture.
    #[must_use]
    pub fn with_base(mut self, base: ArchConfig) -> Self {
        self.base = Some(base);
        self
    }

    /// Sets the system-level search mode.
    #[must_use]
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = Some(search);
        self
    }

    /// Sets the chip count.
    #[must_use]
    pub fn with_chip_count(mut self, chips: u32) -> Self {
        self.chip_count = Some(chips);
        self
    }

    /// Sets the per-chip core count.
    #[must_use]
    pub fn with_core_count(mut self, cores: u32) -> Self {
        self.core_count = Some(cores);
        self
    }

    /// Sets the per-core local memory in KiB.
    #[must_use]
    pub fn with_local_memory_kib(mut self, kib: u64) -> Self {
        self.local_memory_kib = Some(kib);
        self
    }

    /// Sets the NoC flit size in bytes.
    #[must_use]
    pub fn with_flit_bytes(mut self, bytes: u32) -> Self {
        self.flit_bytes = Some(bytes);
        self
    }

    /// Sets the macro-group size.
    #[must_use]
    pub fn with_mg_size(mut self, mg: u32) -> Self {
        self.mg_size = Some(mg);
        self
    }

    /// Sets the tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Attaches a serving workload at `offered_qps` requests/second
    /// (default Poisson preset; set `traffic.workload` for others).
    #[must_use]
    pub fn with_offered_qps(mut self, offered_qps: u64) -> Self {
        self.traffic = Some(TrafficRequest { offered_qps, workload: None });
        self
    }

    /// Sets the priority.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// The effective tenant name.
    pub fn tenant(&self) -> &str {
        self.tenant.as_deref().unwrap_or(DEFAULT_TENANT)
    }

    /// The effective priority.
    pub fn priority(&self) -> Priority {
        self.priority.unwrap_or_default()
    }

    /// The effective base architecture.
    pub fn base_arch(&self) -> ArchConfig {
        self.base.unwrap_or_else(ArchConfig::paper_default)
    }

    /// The fully resolved design point of this request.
    pub fn point(&self) -> PointSpec {
        let base = self.base_arch();
        PointSpec {
            model: self.model.clone(),
            strategy: self.strategy,
            search: self.search.unwrap_or_default(),
            chip_count: self.chip_count.map_or_else(|| u64::from(base.chip_count()), u64::from),
            core_count: self
                .core_count
                .map_or_else(|| u64::from(base.chip().core_count), u64::from),
            local_memory_kib: self
                .local_memory_kib
                .unwrap_or(base.core.local_memory.size_bytes / 1024),
            flit_bytes: self
                .flit_bytes
                .map_or_else(|| u64::from(base.chip().noc_flit_bytes), u64::from),
            mg_size: self
                .mg_size
                .map_or_else(|| u64::from(base.core.cim_unit.macros_per_group), u64::from),
            frequency_mhz: u64::from(base.chip().frequency_mhz),
            memory_port: u64::from(base.chip().memory_port),
            offered_qps: self.traffic.as_ref().map_or(0, |t| t.offered_qps),
        }
    }

    /// Resolves the request into a schedulable job (model resolution
    /// failures stay inside the job, like [`expand_jobs`](crate::expand_jobs)).
    pub(crate) fn to_job(&self) -> Job {
        let base = self.base_arch();
        let spec = self.point();
        let arch = spec.arch(&base);
        let model = models::by_name(&spec.model.name, spec.model.resolution)
            .map(Arc::new)
            .ok_or_else(|| DseError::UnknownModel { name: spec.model.name.clone() });
        let traffic = match (&self.traffic, &model) {
            (Some(traffic), Ok(resolved)) => Some(Arc::new(crate::eval::TrafficJob {
                workload: traffic.workload.clone().unwrap_or_default(),
                colocated: vec![(
                    crate::eval::served_model_name(&spec.model.name, spec.model.resolution),
                    Arc::clone(resolved),
                )],
            })),
            _ => None,
        };
        Job { spec, arch, model, traffic }
    }
}

/// Static configuration of an [`EvalService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads of the pool.
    pub workers: usize,
    /// Maximum queued (not yet running) points; `None` is unbounded.
    pub queue_capacity: Option<usize>,
    /// Maximum in-flight (queued + running) points per tenant; `None`
    /// disables quotas.
    pub tenant_quota: Option<usize>,
    /// Metrics registry the service records into; `None` makes the
    /// service create a private one (always readable back through
    /// [`EvalService::metrics`]). Pass a shared registry to aggregate
    /// several services — or a service and its driving CLI — into one
    /// exposition.
    pub metrics: Option<MetricsRegistry>,
    /// Span tracer for queue/eval timelines; `None` disables tracing
    /// entirely (no ring buffer, no per-job span overhead).
    pub tracer: Option<Tracer>,
}

impl ServiceConfig {
    /// A config sized to the machine: one worker per available core, no
    /// queue bound, no quotas.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        ServiceConfig {
            workers,
            queue_capacity: None,
            tenant_quota: None,
            metrics: None,
            tracer: None,
        }
    }

    /// Sets the worker count (`1` = sequential).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Bounds the queue: admitted submissions beyond `capacity` queued
    /// points are rejected with [`Rejected::QueueFull`].
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity);
        self
    }

    /// Caps every tenant at `quota` in-flight points; excess submissions
    /// are rejected with [`Rejected::QuotaExceeded`].
    #[must_use]
    pub fn with_tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }

    /// Records service metrics into `metrics` instead of a private
    /// registry.
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Records queue/eval spans into `tracer` (off by default).
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The bounded queue is full: back off and retry later.
    QueueFull {
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The tenant has too many points in flight.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: String,
        /// The configured per-tenant quota.
        quota: usize,
    },
    /// The service is shutting down and admits nothing.
    ShuttingDown,
    /// The sweep specification could not be expanded.
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
}

impl Rejected {
    /// Machine-readable kind tag (used on the wire).
    pub fn kind(&self) -> &'static str {
        match self {
            Rejected::QueueFull { .. } => "queue_full",
            Rejected::QuotaExceeded { .. } => "quota_exceeded",
            Rejected::ShuttingDown => "shutting_down",
            Rejected::InvalidSpec { .. } => "invalid_spec",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} queued points); retry later")
            }
            Rejected::QuotaExceeded { tenant, quota } => {
                write!(f, "tenant `{tenant}` exceeds its quota of {quota} in-flight point(s)")
            }
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
            Rejected::InvalidSpec { reason } => write!(f, "invalid sweep specification: {reason}"),
        }
    }
}

impl std::error::Error for Rejected {}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is evaluating it.
    Running,
    /// Finished (successfully or with a per-point error).
    Done,
    /// Cancelled before a worker claimed it.
    Cancelled,
}

impl JobStatus {
    /// Whether the job has reached a terminal state.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Cancelled)
    }

    /// Wire name of the status.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Cancelled => "cancelled",
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A streamed lifecycle event of one job (delivered over the handle's
/// mpsc channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent {
    /// A worker claimed the job.
    Started,
    /// The job reached [`JobStatus::Done`].
    Finished {
        /// Whether the evaluation succeeded.
        ok: bool,
        /// Whether the result came from the cache.
        cached: bool,
    },
    /// The job was cancelled while queued.
    Cancelled,
}

/// Monotonic service counters plus a queue snapshot.
///
/// # Consistency
///
/// Every value is read under the one service state lock — the same
/// critical section the workers mutate them in — so a snapshot is never
/// torn: `submitted == completed + cancelled + queued + running` holds
/// for **every** snapshot, however loaded the service is (rejected
/// submissions are counted separately and never become `submitted`).
/// The `service_stats_snapshots_never_tear` test hammers this from four
/// reader threads against a live worker pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Jobs admitted over the service lifetime.
    pub submitted: u64,
    /// Jobs finished (successfully or with a per-point error).
    pub completed: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Currently queued jobs.
    pub queued: usize,
    /// Currently running jobs.
    pub running: usize,
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// Per-batch bookkeeping shared by the handle and the entries.
#[derive(Debug)]
struct BatchState {
    total: usize,
    completed: AtomicUsize,
    progress: mpsc::Sender<Progress>,
}

/// Identity of a multi-point fast-path group within the queue: members
/// that one worker claims together and answers with a single batched
/// engine call instead of per-point jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
enum GroupKey {
    /// Timing-only points sharing one recorded trace — answered by one
    /// lockstep [`replay_batch`](cimflow_sim::ReplayEngine::replay_batch)
    /// call.
    Trace(TraceKey),
    /// Rate rungs of one design point under one serving workload —
    /// answered by one [`serve_ladder`](cimflow_sim::Simulator::serve_ladder)
    /// call that resolves the co-located singles once. The fields are the
    /// rate-free cache key plus the rate-free traffic fingerprint.
    Ladder(CacheKey, u64),
}

/// Most queued entries one claim drains into a single group run. Bounds
/// worst-case latency skew (a drained member waits on the whole group)
/// and keeps huge sweeps spread across the worker pool.
const GROUP_CLAIM_MAX: usize = 32;

#[derive(Debug)]
struct Entry {
    job: Job,
    tenant: Option<String>,
    priority: Priority,
    /// Evaluate through the shared [`TraceStore`] (set for batch points
    /// whose trace group has at least two members, so singletons never
    /// pay the recording overhead).
    traced: bool,
    /// The fast-path group this entry belongs to (set only for batch
    /// points whose group has at least two live members).
    group: Option<GroupKey>,
    /// Admission time, the basis of the queue-wait histogram.
    submitted_at: Instant,
    status: JobStatus,
    outcome: Option<DseOutcome>,
    batch: Option<(Arc<BatchState>, usize)>,
    events: Option<mpsc::Sender<JobEvent>>,
    journal: Option<Arc<SweepJournal>>,
    /// The handle was dropped: remove the entry once terminal.
    detached: bool,
}

/// Heap reference used for priority-aware claiming: highest priority
/// first, FIFO (lowest sequence number) within a priority class.
#[derive(Debug, PartialEq, Eq)]
struct ClaimRef {
    priority: Priority,
    seq: u64,
    id: u64,
}

impl Ord for ClaimRef {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for ClaimRef {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Default)]
struct State {
    entries: HashMap<u64, Entry>,
    queue: BinaryHeap<ClaimRef>,
    queued: usize,
    running: usize,
    /// Queued + running points per tenant (quota accounting).
    in_flight: HashMap<String, usize>,
    next_id: u64,
    shutting_down: bool,
    submitted: u64,
    completed: u64,
    cancelled: u64,
    rejected: u64,
}

impl State {
    fn allocate_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }
}

/// Pre-resolved observability instruments of one service (resolving an
/// instrument takes the registry lock, so the fixed-name ones are looked
/// up once at service start; per-tenant/per-priority histograms are
/// resolved per job, which is once per compile → simulate run).
#[derive(Debug)]
struct ServiceObs {
    metrics: MetricsRegistry,
    tracer: Option<Tracer>,
    evals_completed: Counter,
    evals_failed: Counter,
    jobs_cancelled: Counter,
    workers_busy: Gauge,
    queue_depth: Gauge,
    /// Points answered by replaying a recorded trace (timing-only reuse).
    replay_points: Counter,
    /// Trace-store reuses (replays plus recorder-sharing waits).
    trace_reuse: Counter,
    /// Replay throughput in points per second, one sample per replayed
    /// point.
    replay_rate: Histogram,
    /// Lockstep replay walks executed by grouped claims (one walk
    /// re-times every cycle-distinct lane of a chunk in a single pass).
    lockstep_batches: Counter,
    /// Cycle-distinct lanes those walks carried.
    lockstep_lanes: Counter,
    /// Lanes peeled off to scalar continuation on a schedule divergence
    /// (the bit-exact fallback, never an approximation).
    lockstep_fallbacks: Counter,
}

impl ServiceObs {
    fn new(metrics: MetricsRegistry, tracer: Option<Tracer>) -> Self {
        ServiceObs {
            evals_completed: metrics.counter("service.evals_completed"),
            evals_failed: metrics.counter("service.evals_failed"),
            jobs_cancelled: metrics.counter("service.jobs_cancelled"),
            workers_busy: metrics.gauge("service.workers_busy"),
            queue_depth: metrics.gauge("service.queue_depth"),
            replay_points: metrics.counter("sim.replay_points"),
            trace_reuse: metrics.counter("sim.trace_reuse"),
            replay_rate: metrics.histogram("sim.replay_points_per_s"),
            lockstep_batches: metrics.counter("sim.lockstep_batches"),
            lockstep_lanes: metrics.counter("sim.lockstep_lanes"),
            lockstep_fallbacks: metrics.counter("sim.lockstep_fallbacks"),
            metrics,
            tracer,
        }
    }

    fn reject(&self, rejection: &Rejected, count: u64) {
        self.metrics
            .counter_with("service.admission_rejected", &[("cause", rejection.kind())])
            .add(count);
    }
}

#[derive(Debug)]
struct Shared {
    state: Mutex<State>,
    /// Signaled when a job is enqueued or shutdown begins.
    work: Condvar,
    /// Signaled when any job reaches a terminal state.
    done: Condvar,
    cache: EvalCache,
    traces: TraceStore,
    obs: ServiceObs,
}

const STATE_POISONED: &str = "service state poisoned";

/// Runs one job through the shared pipeline (cache lookup or full
/// compile → simulate). When `traces` is set the evaluation goes through
/// [`evaluate_traced`](crate::evaluate_traced) — the first point of a
/// trace group records, the rest replay bit-exactly. Panics inside the
/// evaluator are converted into per-point errors so a bad point cannot
/// kill a long-lived worker.
pub(crate) fn run_point(job: &Job, cache: &EvalCache, traces: Option<&TraceStore>) -> DseOutcome {
    let (result, cached) = match &job.model {
        Err(e) => (Err(e.clone()), false),
        Ok(model) => {
            let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let key = job.cache_key().expect("a resolved model always has a cache key");
                cache.get_or_insert_with(key, || {
                    let mut evaluation = match traces {
                        Some(traces) => crate::evaluate_traced(
                            &job.arch,
                            model,
                            job.spec.strategy,
                            job.spec.search,
                            traces,
                        ),
                        None => crate::evaluate_with_search(
                            &job.arch,
                            model,
                            job.spec.strategy,
                            job.spec.search,
                        ),
                    }?;
                    if let Some(traffic) = job.active_traffic() {
                        evaluation.serving = Some(crate::eval::serve_point(
                            &job.arch,
                            job.spec.strategy,
                            job.spec.search,
                            traffic,
                            job.spec.offered_qps,
                            &job.spec.model,
                            traces,
                        )?);
                    }
                    Ok(evaluation)
                })
            }));
            match evaluated {
                Ok(Ok((evaluation, was_hit))) => (Ok(evaluation), was_hit),
                Ok(Err(e)) => (Err(e), false),
                Err(panic) => {
                    let text = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    (Err(DseError::io(format!("evaluation panicked: {text}"))), false)
                }
            }
        }
    };
    DseOutcome { point: job.spec.clone(), result, cached }
}

/// Marks `id` terminal, updates quota/stat accounting, streams events and
/// batch progress, and wakes waiters. Caller holds the state lock and has
/// already adjusted the `queued`/`running` counters.
fn finish_entry(st: &mut State, shared: &Shared, id: u64, outcome: DseOutcome, status: JobStatus) {
    let entry = st.entries.get_mut(&id).expect("finished job has an entry");
    entry.status = status;
    if let Some(tenant) = &entry.tenant {
        if let Some(count) = st.in_flight.get_mut(tenant) {
            *count -= 1;
            if *count == 0 {
                st.in_flight.remove(tenant);
            }
        }
    }
    match status {
        JobStatus::Done => {
            st.completed += 1;
            shared.obs.evals_completed.inc();
            if outcome.result.is_err() {
                shared.obs.evals_failed.inc();
            }
        }
        JobStatus::Cancelled => {
            st.cancelled += 1;
            shared.obs.jobs_cancelled.inc();
        }
        JobStatus::Queued | JobStatus::Running => unreachable!("finish with non-terminal status"),
    }
    if let Some(tx) = &entry.events {
        let event = match status {
            JobStatus::Cancelled => JobEvent::Cancelled,
            _ => JobEvent::Finished { ok: outcome.result.is_ok(), cached: outcome.cached },
        };
        let _ = tx.send(event);
    }
    if let Some((batch, index)) = &entry.batch {
        let done = batch.completed.fetch_add(1, Ordering::SeqCst) + 1;
        let _ = batch.progress.send(Progress {
            completed: done,
            total: batch.total,
            index: *index,
            label: entry.job.spec.label(),
            ok: outcome.result.is_ok(),
            cached: outcome.cached,
        });
    }
    entry.outcome = Some(outcome);
    if entry.detached {
        st.entries.remove(&id);
    }
    shared.done.notify_all();
}

/// Cancels a queued entry; running/terminal entries are left alone.
fn cancel_locked(st: &mut State, shared: &Shared, id: u64) -> bool {
    match st.entries.get(&id) {
        Some(entry) if entry.status == JobStatus::Queued => {
            st.queued -= 1;
            shared.obs.queue_depth.set(st.queued as i64);
            let outcome = DseOutcome {
                point: entry.job.spec.clone(),
                result: Err(DseError::Cancelled),
                cached: false,
            };
            finish_entry(st, shared, id, outcome, JobStatus::Cancelled);
            true
        }
        _ => false,
    }
}

/// Drops a handle's claim on its entries: terminal entries are removed
/// immediately, live ones are marked for removal on completion.
fn release(shared: &Shared, ids: &[u64]) {
    let Ok(mut st) = shared.state.lock() else { return };
    for id in ids {
        match st.entries.get_mut(id) {
            Some(entry) if entry.status.is_terminal() => {
                st.entries.remove(id);
            }
            Some(entry) => entry.detached = true,
            None => {}
        }
    }
}

/// One queued entry claimed by a worker, with everything the processing
/// path needs outside the state lock.
struct ClaimedMember {
    id: u64,
    job: Job,
    journal: Option<Arc<SweepJournal>>,
    queue_wait: Duration,
}

/// One worker's claim: the leader entry plus any drained members of its
/// fast-path group (see [`GroupKey`]); solo claims carry one member.
struct Claim {
    members: Vec<ClaimedMember>,
    tenant: String,
    priority: Priority,
    traced: bool,
    group: Option<GroupKey>,
}

/// Marks a queued entry Running, streams its Started event and extracts
/// the processing payload. Caller holds the state lock and adjusts the
/// queued/running counters.
fn claim_entry(st: &mut State, id: u64) -> ClaimedMember {
    let entry = st.entries.get_mut(&id).expect("claimed entry exists");
    entry.status = JobStatus::Running;
    if let Some(tx) = &entry.events {
        let _ = tx.send(JobEvent::Started);
    }
    ClaimedMember {
        id,
        job: entry.job.clone(),
        journal: entry.journal.clone(),
        queue_wait: entry.submitted_at.elapsed(),
    }
}

/// Answers a drained trace group: the leader runs the standard traced
/// pipeline (recording the trace on a store miss), then every remaining
/// member is re-timed through **one** lockstep
/// [`replay_batch`](cimflow_sim::ReplayEngine::replay_batch) call instead
/// of per-point replays. Members the batch call refuses, and groups whose
/// trace is unavailable, fall back to the solo path — the fast path never
/// changes results, only how many passes over the trace they cost.
fn run_trace_group(shared: &Shared, members: &[ClaimedMember], key: TraceKey) -> Vec<DseOutcome> {
    let mut outcomes: Vec<Option<DseOutcome>> = members.iter().map(|_| None).collect();
    // The leader seeds the trace store (or replays an existing trace).
    outcomes[0] = Some(run_point(&members[0].job, &shared.cache, Some(&shared.traces)));
    // Cache pre-check: members answered by earlier submissions are hits.
    let mut pending: Vec<usize> = Vec::new();
    for (i, member) in members.iter().enumerate().skip(1) {
        let cache_key = member.job.cache_key().expect("grouped jobs have resolved models");
        match shared.cache.get(&cache_key) {
            Some(evaluation) => {
                outcomes[i] = Some(DseOutcome {
                    point: member.job.spec.clone(),
                    result: Ok(evaluation),
                    cached: true,
                });
            }
            None => pending.push(i),
        }
    }
    if !pending.is_empty() {
        let replayed = shared.traces.get(&key).and_then(|entry| {
            let job = &members[pending[0]].job;
            let model = job.model.as_ref().ok()?;
            let arches: Vec<ArchConfig> = pending.iter().map(|&i| members[i].job.arch).collect();
            // One batched walk for every pending member. A panic inside
            // the engine downgrades the group to solo runs (which carry
            // their own panic containment).
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::eval::evaluate_replay_group(
                    &entry,
                    model,
                    job.spec.strategy,
                    job.spec.search,
                    &arches,
                )
            }))
            .ok()
        });
        match replayed {
            Some((evaluations, stats)) => {
                shared.obs.lockstep_batches.add(stats.batches);
                shared.obs.lockstep_lanes.add(stats.lanes);
                shared.obs.lockstep_fallbacks.add(stats.fallback_lanes);
                let served = evaluations.iter().filter(|e| e.is_ok()).count() as u64;
                shared.traces.note_reuse(served);
                for (&i, evaluation) in pending.iter().zip(evaluations) {
                    let member = &members[i];
                    outcomes[i] = match evaluation {
                        Ok(evaluation) => {
                            let cache_key = member.job.cache_key().expect("grouped jobs have keys");
                            match shared.cache.get_or_insert_with(cache_key, || Ok(evaluation)) {
                                Ok((evaluation, was_hit)) => Some(DseOutcome {
                                    point: member.job.spec.clone(),
                                    result: Ok(evaluation),
                                    cached: was_hit,
                                }),
                                Err(e) => Some(DseOutcome {
                                    point: member.job.spec.clone(),
                                    result: Err(e),
                                    cached: false,
                                }),
                            }
                        }
                        // The engine refused this lane (it never
                        // approximates): the standard per-point path
                        // decides what to do with the point.
                        Err(_) => Some(run_point(&member.job, &shared.cache, Some(&shared.traces))),
                    };
                }
            }
            // No stored trace (evicted, or the leader failed before
            // recording): every member runs the standard path.
            None => {
                for &i in &pending {
                    outcomes[i] =
                        Some(run_point(&members[i].job, &shared.cache, Some(&shared.traces)));
                }
            }
        }
    }
    outcomes.into_iter().map(|outcome| outcome.expect("every member answered")).collect()
}

/// Answers a drained rate-ladder group: one shared design evaluation plus
/// one [`serve_ladder`](cimflow_sim::Simulator::serve_ladder) call that
/// pins the co-located program sources and resolves their
/// single-inference reports **once** for every rung of the ladder.
/// Rung-level failures (and a failed ladder) fall back to the solo path.
fn run_ladder_group(shared: &Shared, members: &[ClaimedMember]) -> Vec<DseOutcome> {
    let mut outcomes: Vec<Option<DseOutcome>> = members.iter().map(|_| None).collect();
    // Cache pre-check: rungs answered by earlier submissions are hits.
    let mut pending: Vec<usize> = Vec::new();
    for (i, member) in members.iter().enumerate() {
        let cache_key = member.job.cache_key().expect("grouped jobs have resolved models");
        match shared.cache.get(&cache_key) {
            Some(evaluation) => {
                outcomes[i] = Some(DseOutcome {
                    point: member.job.spec.clone(),
                    result: Ok(evaluation),
                    cached: true,
                });
            }
            None => pending.push(i),
        }
    }
    let solo = |i: usize| run_point(&members[i].job, &shared.cache, Some(&shared.traces));
    if !pending.is_empty() {
        let lead = &members[pending[0]].job;
        let rates: Vec<u64> = pending.iter().map(|&i| members[i].job.spec.offered_qps).collect();
        let group = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let model = lead.model.as_ref().ok()?;
            let traffic = lead.active_traffic()?;
            let evaluation = crate::evaluate_traced(
                &lead.arch,
                model,
                lead.spec.strategy,
                lead.spec.search,
                &shared.traces,
            )
            .ok()?;
            let summaries = crate::eval::serve_ladder_points(
                &lead.arch,
                lead.spec.strategy,
                lead.spec.search,
                traffic,
                &rates,
                &lead.spec.model,
                Some(&shared.traces),
            )
            .ok()?;
            Some((evaluation, summaries))
        }))
        .ok()
        .flatten();
        match group {
            Some((base, summaries)) => {
                for (slot, (&i, summary)) in pending.iter().zip(summaries).enumerate() {
                    let member = &members[i];
                    outcomes[i] = match summary {
                        Ok(summary) => {
                            let mut evaluation = base.clone();
                            // The first fresh rung carries the shared
                            // evaluation's provenance (it may have
                            // recorded); later rungs replay that work.
                            if slot > 0 {
                                evaluation.eval_path = EvalPath::Replayed;
                            }
                            evaluation.serving = Some(summary);
                            let cache_key = member.job.cache_key().expect("grouped jobs have keys");
                            match shared.cache.get_or_insert_with(cache_key, || Ok(evaluation)) {
                                Ok((evaluation, was_hit)) => Some(DseOutcome {
                                    point: member.job.spec.clone(),
                                    result: Ok(evaluation),
                                    cached: was_hit,
                                }),
                                Err(e) => Some(DseOutcome {
                                    point: member.job.spec.clone(),
                                    result: Err(e),
                                    cached: false,
                                }),
                            }
                        }
                        // A failed rung (e.g. a zero rate) reproduces its
                        // error through the standard per-point path.
                        Err(_) => Some(solo(i)),
                    };
                }
            }
            None => {
                for &i in &pending {
                    outcomes[i] = Some(solo(i));
                }
            }
        }
    }
    outcomes.into_iter().map(|outcome| outcome.expect("every member answered")).collect()
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    // Workers publish their tracer as the thread's ambient tracer, so
    // layers below the service boundary — notably the compiler's joint
    // search, whose options cannot carry a tracer — record onto the same
    // per-worker track as the enclosing eval span.
    if let Some(tracer) = &shared.obs.tracer {
        tracer.set_track_name(thread_track(), &format!("worker-{index}"));
        Tracer::set_ambient(Some(tracer.clone()));
    }
    loop {
        let claimed = {
            let mut st = shared.state.lock().expect(STATE_POISONED);
            loop {
                // Pop past stale refs (cancelled, released, or drained
                // into an earlier group claim).
                let next = loop {
                    match st.queue.pop() {
                        Some(claim) => match st.entries.get(&claim.id) {
                            Some(e) if e.status == JobStatus::Queued => break Some(claim.id),
                            _ => {}
                        },
                        None => break None,
                    }
                };
                match next {
                    Some(id) => {
                        let entry = st.entries.get(&id).expect("claimed entry exists");
                        let tenant =
                            entry.tenant.clone().unwrap_or_else(|| DEFAULT_TENANT.to_owned());
                        let priority = entry.priority;
                        let traced = entry.traced;
                        let group = entry.group.clone();
                        let mut members = vec![claim_entry(&mut st, id)];
                        // Drain the rest of a fast-path group: every
                        // still-queued member with the same key is
                        // answered together by one batched engine call.
                        // (Their stale heap refs are skipped lazily by
                        // the claim scan above.)
                        if let Some(key) = &group {
                            let mut more: Vec<u64> = st
                                .entries
                                .iter()
                                .filter(|(other, e)| {
                                    **other != id
                                        && e.status == JobStatus::Queued
                                        && e.group.as_ref() == Some(key)
                                        && e.priority == priority
                                        && e.tenant.as_deref().unwrap_or(DEFAULT_TENANT) == tenant
                                })
                                .map(|(other, _)| *other)
                                .collect();
                            // Submission order, bounded: the map iterates
                            // in arbitrary order.
                            more.sort_unstable();
                            more.truncate(GROUP_CLAIM_MAX - 1);
                            for other in more {
                                members.push(claim_entry(&mut st, other));
                            }
                        }
                        st.queued -= members.len();
                        st.running += members.len();
                        shared.obs.queue_depth.set(st.queued as i64);
                        break Some(Claim { members, tenant, priority, traced, group });
                    }
                    None if st.shutting_down => break None,
                    None => st = shared.work.wait(st).expect(STATE_POISONED),
                }
            }
        };
        let Some(claim) = claimed else {
            return;
        };
        shared.obs.workers_busy.add(1);
        let queue_wait_hist = shared.obs.metrics.histogram_with(
            "service.queue_wait_us",
            &[("tenant", &claim.tenant), ("priority", claim.priority.name())],
        );
        for member in &claim.members {
            queue_wait_hist.record_duration(member.queue_wait);
        }
        let eval_started = Instant::now();
        let outcomes: Vec<DseOutcome> = if claim.members.len() >= 2 {
            // Grouped claim: one batched engine call for the members,
            // under a replay-phase span.
            let key = claim.group.as_ref().expect("multi-member claims carry a group key");
            let kind = match key {
                GroupKey::Trace(_) => "trace",
                GroupKey::Ladder(..) => "ladder",
            };
            let mut span = shared.obs.tracer.as_ref().map(|tracer| {
                let mut span = tracer.thread_span("replay", "service");
                span.attr("kind", kind)
                    .attr("points", claim.members.len() as u64)
                    .attr("label", claim.members[0].job.spec.label())
                    .attr("tenant", claim.tenant.as_str())
                    .attr("priority", claim.priority.name());
                span
            });
            let outcomes = match key {
                GroupKey::Trace(trace_key) => run_trace_group(&shared, &claim.members, *trace_key),
                GroupKey::Ladder(..) => run_ladder_group(&shared, &claim.members),
            };
            if let Some(span) = span.as_mut() {
                span.attr("ok", outcomes.iter().all(|o| o.result.is_ok()));
            }
            outcomes
        } else {
            let member = &claim.members[0];
            let mut span = shared.obs.tracer.as_ref().map(|tracer| {
                let mut span = tracer.thread_span("eval", "service");
                span.attr("label", member.job.spec.label())
                    .attr("tenant", claim.tenant.as_str())
                    .attr("priority", claim.priority.name())
                    .attr(
                        "queue_wait_us",
                        u64::try_from(member.queue_wait.as_micros()).unwrap_or(u64::MAX),
                    );
                span
            });
            let traces = claim.traced.then_some(&shared.traces);
            let outcome = run_point(&member.job, &shared.cache, traces);
            if let Some(span) = span.as_mut() {
                span.attr("ok", outcome.result.is_ok()).attr("cached", outcome.cached);
            }
            vec![outcome]
        };
        let eval_elapsed = eval_started.elapsed();
        // Per-member accounting (a solo claim is the one-member case):
        // latency amortizes the claim across its members; the replay rate
        // is the claim's points-per-second throughput, sampled once per
        // freshly replayed point.
        let latency_hist = shared
            .obs
            .metrics
            .histogram_with("service.eval_latency_us", &[("tenant", &claim.tenant)]);
        let per_member = eval_elapsed.div_f64(claim.members.len().max(1) as f64);
        let fresh_replays = outcomes
            .iter()
            .filter(|o| !o.cached && matches!(&o.result, Ok(e) if e.eval_path.is_replayed()))
            .count();
        let secs = eval_elapsed.as_secs_f64();
        for outcome in &outcomes {
            latency_hist.record_duration(per_member);
            if let Ok(evaluation) = &outcome.result {
                if evaluation.eval_path.is_replayed() && !outcome.cached {
                    shared.obs.replay_points.inc();
                    shared.obs.trace_reuse.inc();
                    if secs > 0.0 {
                        shared.obs.replay_rate.record((fresh_replays as f64 / secs) as u64);
                    }
                }
            }
        }
        shared.obs.workers_busy.sub(1);
        for (member, outcome) in claim.members.iter().zip(&outcomes) {
            if let Some(journal) = &member.journal {
                // Best effort: journaling must never fail the sweep.
                let _ = journal.record(member.job.cache_key(), outcome);
            }
        }
        let mut st = shared.state.lock().expect(STATE_POISONED);
        for (member, outcome) in claim.members.iter().zip(outcomes) {
            st.running -= 1;
            finish_entry(&mut st, &shared, member.id, outcome, JobStatus::Done);
        }
    }
}

// ---------------------------------------------------------------------------
// Handles
// ---------------------------------------------------------------------------

/// A handle to one submitted job.
///
/// The handle is the only reference to the job's result slot: dropping it
/// releases the slot (the job itself still runs to completion).
///
/// # Example
///
/// ```
/// use cimflow_dse::{EvalRequest, EvalService, JobStatus, ServiceConfig};
/// use cimflow_compiler::Strategy;
///
/// let service = EvalService::new(ServiceConfig::new().with_workers(1));
/// let handle = service
///     .submit(EvalRequest::new("resnet18", 32, Strategy::DpOptimized))
///     .expect("admitted");
/// // Non-blocking: `status`/`poll` observe the job...
/// assert!(handle.poll().is_none() || handle.status().is_terminal());
/// // ...and `wait` blocks until the outcome lands.
/// assert!(handle.wait().result.is_ok());
/// ```
#[derive(Debug)]
pub struct JobHandle {
    shared: Arc<Shared>,
    id: u64,
    events: mpsc::Receiver<JobEvent>,
}

impl JobHandle {
    /// Service-wide id of the job (stable over the service lifetime; used
    /// as the wire id by the serve front end).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Current lifecycle state (non-blocking).
    pub fn status(&self) -> JobStatus {
        let st = self.shared.state.lock().expect(STATE_POISONED);
        st.entries.get(&self.id).map_or(JobStatus::Done, |e| e.status)
    }

    /// The outcome if the job is already terminal (non-blocking).
    pub fn poll(&self) -> Option<DseOutcome> {
        let st = self.shared.state.lock().expect(STATE_POISONED);
        st.entries.get(&self.id).and_then(|e| e.outcome.clone())
    }

    /// Blocks until the job is terminal and returns its outcome. A
    /// cancelled job yields [`DseError::Cancelled`] in the outcome.
    pub fn wait(&self) -> DseOutcome {
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        loop {
            let entry = st.entries.get(&self.id).expect("job entry lives while its handle does");
            if entry.status.is_terminal() {
                return entry.outcome.clone().expect("terminal job has an outcome");
            }
            st = self.shared.done.wait(st).expect(STATE_POISONED);
        }
    }

    /// [`Self::wait`] bounded by a deadline: returns the outcome if the
    /// job turns terminal within `timeout`, `None` on expiry (the job
    /// keeps running and the handle stays usable — poll, wait again, or
    /// cancel). The wire protocol's `wait` + `timeout_ms` runs on this,
    /// so one slow job cannot wedge a whole serve connection forever.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<DseOutcome> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        loop {
            let entry = st.entries.get(&self.id).expect("job entry lives while its handle does");
            if entry.status.is_terminal() {
                return Some(entry.outcome.clone().expect("terminal job has an outcome"));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            st = self.shared.done.wait_timeout(st, deadline - now).expect(STATE_POISONED).0;
        }
    }

    /// Cancels the job if it is still queued. Returns whether it was
    /// cancelled; a running job finishes normally (`false`).
    pub fn cancel(&self) -> bool {
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        cancel_locked(&mut st, &self.shared, self.id)
    }

    /// The streamed lifecycle events ([`JobEvent::Started`], then
    /// [`JobEvent::Finished`] or [`JobEvent::Cancelled`]).
    pub fn events(&self) -> &mpsc::Receiver<JobEvent> {
        &self.events
    }
}

impl Drop for JobHandle {
    fn drop(&mut self) {
        release(&self.shared, &[self.id]);
    }
}

/// A handle to a submitted batch (sweep): per-point slots in grid order
/// plus a streamed [`Progress`] channel.
#[derive(Debug)]
pub struct BatchHandle {
    shared: Arc<Shared>,
    ids: Vec<u64>,
    batch: Arc<BatchState>,
    progress: mpsc::Receiver<Progress>,
    resumed: usize,
}

impl BatchHandle {
    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Points that were born terminal at submission because a journal
    /// already recorded them. Unlike [`Self::completed`], this is a
    /// property of the submission, not of scheduling progress — a point
    /// a fast worker finished immediately after admission does not
    /// count.
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Whether the batch has no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Service-wide job ids of the points, in grid order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Points finished so far (non-blocking).
    pub fn completed(&self) -> usize {
        self.batch.completed.load(Ordering::SeqCst)
    }

    /// Whether every point is terminal (non-blocking).
    pub fn is_done(&self) -> bool {
        self.completed() >= self.ids.len()
    }

    /// Blocks until every point is terminal; outcomes are in grid order.
    pub fn wait(&self) -> Vec<DseOutcome> {
        self.wait_with(|_| {})
    }

    /// [`Self::wait`], invoking `progress` (on the calling thread) for
    /// each point as it finishes.
    pub fn wait_with(&self, mut progress: impl FnMut(&Progress)) -> Vec<DseOutcome> {
        let mut delivered = 0;
        while delivered < self.ids.len() {
            match self.progress.recv_timeout(Duration::from_millis(25)) {
                Ok(event) => {
                    delivered += 1;
                    progress(&event);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    if self.is_done() {
                        // The counter can lead the event by a hair: a
                        // finishing worker bumps it and queues the event
                        // under one state-lock critical section, and this
                        // unlocked read may land in between. Taking the
                        // lock synchronizes with that worker, after which
                        // the channel holds every outstanding event —
                        // drain it so the callback still fires exactly
                        // once per point.
                        drop(self.shared.state.lock().expect(STATE_POISONED));
                        while let Ok(event) = self.progress.try_recv() {
                            progress(&event);
                        }
                        break;
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        loop {
            let pending = self
                .ids
                .iter()
                .any(|id| st.entries.get(id).is_some_and(|e| !e.status.is_terminal()));
            if !pending {
                break;
            }
            st = self.shared.done.wait(st).expect(STATE_POISONED);
        }
        self.ids
            .iter()
            .map(|id| {
                st.entries
                    .get(id)
                    .expect("batch entry lives while its handle does")
                    .outcome
                    .clone()
                    .expect("terminal job has an outcome")
            })
            .collect()
    }

    /// [`Self::wait`] bounded by a deadline: returns the grid-ordered
    /// outcomes if every point turns terminal within `timeout`, `None`
    /// on expiry (the batch keeps running; the handle stays usable and
    /// the streamed [`Progress`] events are left undrained for a later
    /// [`Self::wait_with`]).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Vec<DseOutcome>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        loop {
            let pending = self
                .ids
                .iter()
                .any(|id| st.entries.get(id).is_some_and(|e| !e.status.is_terminal()));
            if !pending {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            st = self.shared.done.wait_timeout(st, deadline - now).expect(STATE_POISONED).0;
        }
        Some(
            self.ids
                .iter()
                .map(|id| {
                    st.entries
                        .get(id)
                        .expect("batch entry lives while its handle does")
                        .outcome
                        .clone()
                        .expect("terminal job has an outcome")
                })
                .collect(),
        )
    }

    /// Cancels every still-queued point; running points finish normally.
    /// Returns how many points were cancelled.
    pub fn cancel(&self) -> usize {
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        self.ids.iter().filter(|id| cancel_locked(&mut st, &self.shared, **id)).count()
    }

    /// The streamed per-point [`Progress`] events (completion order).
    pub fn progress_events(&self) -> &mpsc::Receiver<Progress> {
        &self.progress
    }
}

impl Drop for BatchHandle {
    fn drop(&mut self) {
        release(&self.shared, &self.ids);
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// A long-lived evaluation service: one worker pool, one shared cache,
/// non-blocking request/batch submission with admission control.
///
/// Dropping the service shuts it down: queued jobs are cancelled, running
/// jobs finish, workers are joined.
#[derive(Debug)]
pub struct EvalService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    config: ServiceConfig,
}

impl EvalService {
    /// Starts a service with a fresh cache.
    pub fn new(config: ServiceConfig) -> Self {
        Self::with_cache(config, EvalCache::new())
    }

    /// Starts a service over an existing (possibly shared or persisted)
    /// cache.
    pub fn with_cache(config: ServiceConfig, cache: EvalCache) -> Self {
        let metrics = config.metrics.clone().unwrap_or_default();
        let shared = Arc::new(Shared {
            state: Mutex::default(),
            work: Condvar::new(),
            done: Condvar::new(),
            cache,
            traces: TraceStore::new(),
            obs: ServiceObs::new(metrics, config.tracer.clone()),
        });
        let workers = (0..config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("cimflow-serve-{index}"))
                    .spawn(move || worker_loop(shared, index))
                    .expect("spawn service worker")
            })
            .collect();
        EvalService { shared, workers, config }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared evaluation cache.
    pub fn cache(&self) -> &EvalCache {
        &self.shared.cache
    }

    /// The shared store of recorded simulation traces (batch points in a
    /// timing-only trace group compile + record once and replay the
    /// rest).
    pub fn trace_store(&self) -> &TraceStore {
        &self.shared.traces
    }

    /// The worker-pool size.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits one request through admission control. Returns immediately
    /// with a [`JobHandle`], or a [`Rejected`] backpressure signal.
    ///
    /// # Errors
    ///
    /// [`Rejected::QueueFull`], [`Rejected::QuotaExceeded`] or
    /// [`Rejected::ShuttingDown`]; never a model/architecture error —
    /// those surface in the job's outcome.
    pub fn submit(&self, request: EvalRequest) -> Result<JobHandle, Rejected> {
        self.submit_with_journal(request, None)
    }

    /// [`Self::submit`] against a [`SweepJournal`]: a point the journal
    /// already records comes back as a born-terminal handle (its result
    /// seeded into the cache, no admission consumed), and a fresh point
    /// is admitted normally with its outcome appended to the journal —
    /// the single-request counterpart of
    /// [`Self::submit_sweep_journaled`].
    ///
    /// # Errors
    ///
    /// The same [`Rejected`] variants as [`Self::submit`].
    pub fn submit_journaled(
        &self,
        request: EvalRequest,
        journal: &Arc<SweepJournal>,
    ) -> Result<JobHandle, Rejected> {
        self.submit_with_journal(request, Some(Arc::clone(journal)))
    }

    fn submit_with_journal(
        &self,
        request: EvalRequest,
        journal: Option<Arc<SweepJournal>>,
    ) -> Result<JobHandle, Rejected> {
        let tenant = request.tenant().to_owned();
        let priority = request.priority();
        let job = request.to_job();
        // Journal resumption is resolved before taking the state lock
        // (cache seeding must not nest the cache mutex inside it).
        let resumed: Option<DseOutcome> = journal.as_ref().and_then(|journal| {
            let key = job.cache_key()?;
            let evaluation = journal.lookup(&key)?;
            self.shared.cache.insert(key, evaluation.clone());
            Some(DseOutcome { point: job.spec.clone(), result: Ok(evaluation), cached: true })
        });
        if let Some(outcome) = resumed {
            let (tx, rx) = mpsc::channel();
            let mut st = self.shared.state.lock().expect(STATE_POISONED);
            if st.shutting_down {
                st.rejected += 1;
                self.shared.obs.reject(&Rejected::ShuttingDown, 1);
                return Err(Rejected::ShuttingDown);
            }
            let id = st.allocate_id();
            st.submitted += 1;
            st.completed += 1;
            self.shared.obs.evals_completed.inc();
            let _ = tx.send(JobEvent::Finished { ok: true, cached: true });
            st.entries.insert(
                id,
                Entry {
                    job,
                    tenant: Some(tenant),
                    priority,
                    traced: false,
                    group: None,
                    submitted_at: Instant::now(),
                    status: JobStatus::Done,
                    outcome: Some(outcome),
                    batch: None,
                    events: None,
                    journal: None,
                    detached: false,
                },
            );
            drop(st);
            self.shared.done.notify_all();
            return Ok(JobHandle { shared: Arc::clone(&self.shared), id, events: rx });
        }
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        if st.shutting_down {
            st.rejected += 1;
            self.shared.obs.reject(&Rejected::ShuttingDown, 1);
            return Err(Rejected::ShuttingDown);
        }
        if let Some(capacity) = self.config.queue_capacity {
            if st.queued + 1 > capacity {
                st.rejected += 1;
                let rejection = Rejected::QueueFull { capacity };
                self.shared.obs.reject(&rejection, 1);
                return Err(rejection);
            }
        }
        if let Some(quota) = self.config.tenant_quota {
            let used = st.in_flight.get(&tenant).copied().unwrap_or(0);
            if used + 1 > quota {
                st.rejected += 1;
                let rejection = Rejected::QuotaExceeded { tenant, quota };
                self.shared.obs.reject(&rejection, 1);
                return Err(rejection);
            }
        }
        let id = st.allocate_id();
        *st.in_flight.entry(tenant.clone()).or_insert(0) += 1;
        st.entries.insert(
            id,
            Entry {
                job,
                tenant: Some(tenant),
                priority,
                traced: false,
                group: None,
                submitted_at: Instant::now(),
                status: JobStatus::Queued,
                outcome: None,
                batch: None,
                events: Some(tx),
                journal,
                detached: false,
            },
        );
        st.queue.push(ClaimRef { priority, seq: id, id });
        st.queued += 1;
        st.submitted += 1;
        self.shared.obs.queue_depth.set(st.queued as i64);
        drop(st);
        self.shared.work.notify_one();
        Ok(JobHandle { shared: Arc::clone(&self.shared), id, events: rx })
    }

    /// Submits an explicit job list as one batch, bypassing admission
    /// (the trusted in-process surface the [`Executor`](crate::Executor)
    /// runs on).
    ///
    /// # Errors
    ///
    /// Only [`Rejected::ShuttingDown`].
    pub fn submit_jobs(&self, jobs: Vec<Job>) -> Result<BatchHandle, Rejected> {
        self.submit_batch(jobs, None, Priority::Normal, false, None)
    }

    /// [`Self::submit_jobs`] against a [`SweepJournal`]: journaled points
    /// come back born-terminal (cache seeded, nothing re-run) and fresh
    /// outcomes are appended — the explicit-job-list counterpart of
    /// [`Self::submit_sweep_journaled`], used by the adaptive
    /// exploration engine whose batches are not grid expansions.
    ///
    /// # Errors
    ///
    /// Only [`Rejected::ShuttingDown`].
    pub fn submit_jobs_journaled(
        &self,
        jobs: Vec<Job>,
        journal: &Arc<SweepJournal>,
    ) -> Result<BatchHandle, Rejected> {
        self.submit_batch(jobs, None, Priority::Normal, false, Some(Arc::clone(journal)))
    }

    /// Expands and submits a sweep, bypassing admission.
    ///
    /// # Errors
    ///
    /// [`Rejected::InvalidSpec`] for an empty grid, or
    /// [`Rejected::ShuttingDown`].
    pub fn submit_sweep(&self, spec: &SweepSpec) -> Result<BatchHandle, Rejected> {
        let jobs = expand(spec)?;
        self.submit_batch(jobs, None, Priority::Normal, false, None)
    }

    /// Expands and submits a sweep on behalf of `tenant` at `priority`,
    /// through admission control (the whole batch is admitted or rejected
    /// atomically).
    ///
    /// # Errors
    ///
    /// Any [`Rejected`] variant.
    pub fn submit_sweep_as(
        &self,
        tenant: &str,
        priority: Priority,
        spec: &SweepSpec,
    ) -> Result<BatchHandle, Rejected> {
        let jobs = expand(spec)?;
        self.submit_batch(jobs, Some(tenant.to_owned()), priority, true, None)
    }

    /// Expands and submits a sweep against a [`SweepJournal`]: points
    /// already journaled are served from the journal without re-running
    /// (and seeded into the cache), and every newly finished point is
    /// appended to the journal — an interrupted sweep resumes where it
    /// stopped.
    ///
    /// # Errors
    ///
    /// [`Rejected::InvalidSpec`] for an empty grid, or
    /// [`Rejected::ShuttingDown`].
    pub fn submit_sweep_journaled(
        &self,
        spec: &SweepSpec,
        journal: &Arc<SweepJournal>,
    ) -> Result<BatchHandle, Rejected> {
        let jobs = expand(spec)?;
        self.submit_batch(jobs, None, Priority::Normal, false, Some(Arc::clone(journal)))
    }

    /// Plans the queue-insertion order, per-point tracing and the
    /// fast-path groups of a batch. Live points without a serving
    /// workload are grouped by [`TraceKey`] (compile fingerprint +
    /// model + strategy + search); points *with* one are grouped by
    /// ladder identity (design point + rate-free workload — the
    /// rungs of one `--objective p99` ladder). Groups of at least two
    /// points become traced — they share one compile → record run and
    /// replay the rest — and carry a [`GroupKey`] so the worker claiming
    /// one member drains the whole group into a single lockstep replay
    /// (or single rate-ladder serve) instead of per-point jobs. The
    /// insertion order interleaves the groups round-robin so every
    /// group's recording starts early instead of the recordings
    /// serializing group after group. Singleton groups stay untraced and
    /// pay zero recording overhead. Outcome slots keep grid order
    /// regardless (the handle's ids are indexed by grid position).
    #[allow(clippy::type_complexity)]
    fn trace_plan(
        jobs: &[Job],
        resumed: &[Option<DseOutcome>],
    ) -> (Vec<usize>, Vec<bool>, Vec<Option<GroupKey>>) {
        let mut groups: Vec<(Option<GroupKey>, Vec<usize>)> = Vec::new();
        let mut by_key: HashMap<TraceKey, usize> = HashMap::new();
        let mut by_ladder: HashMap<(CacheKey, u64), usize> = HashMap::new();
        for (index, job) in jobs.iter().enumerate() {
            match &job.model {
                Ok(model) if resumed[index].is_none() => match job.active_traffic() {
                    Some(traffic) => {
                        let key =
                            CacheKey::of(&job.arch, model, job.spec.strategy, job.spec.search);
                        // Rate-free fingerprint: rungs differ only in QPS.
                        let workload =
                            traffic_fingerprint(0, &traffic.workload, &traffic.colocated);
                        let slot = *by_ladder.entry((key, workload)).or_insert_with(|| {
                            groups.push((Some(GroupKey::Ladder(key, workload)), Vec::new()));
                            groups.len() - 1
                        });
                        groups[slot].1.push(index);
                    }
                    None => {
                        let key =
                            TraceKey::of(&job.arch, model, job.spec.strategy, job.spec.search);
                        let slot = *by_key.entry(key).or_insert_with(|| {
                            groups.push((Some(GroupKey::Trace(key)), Vec::new()));
                            groups.len() - 1
                        });
                        groups[slot].1.push(index);
                    }
                },
                // Unknown-model and journal-resumed points are untraced
                // singletons.
                _ => groups.push((None, vec![index])),
            }
        }
        let mut traced = vec![false; jobs.len()];
        let mut group_keys: Vec<Option<GroupKey>> = vec![None; jobs.len()];
        for (key, members) in groups.iter().filter(|(_, members)| members.len() >= 2) {
            for &index in members {
                traced[index] = true;
                group_keys[index] = key.clone();
            }
        }
        let mut order = Vec::with_capacity(jobs.len());
        let mut round = 0;
        while order.len() < jobs.len() {
            for (_, members) in &groups {
                if let Some(&index) = members.get(round) {
                    order.push(index);
                }
            }
            round += 1;
        }
        (order, traced, group_keys)
    }

    fn submit_batch(
        &self,
        jobs: Vec<Job>,
        tenant: Option<String>,
        priority: Priority,
        admission: bool,
        journal: Option<Arc<SweepJournal>>,
    ) -> Result<BatchHandle, Rejected> {
        // Journal resumption is resolved before taking the state lock:
        // cache seeding must not nest the cache mutex inside it.
        let resumed: Vec<Option<DseOutcome>> = jobs
            .iter()
            .map(|job| {
                let journal = journal.as_ref()?;
                let key = job.cache_key()?;
                let evaluation = journal.lookup(&key)?;
                self.shared.cache.insert(key, evaluation.clone());
                Some(DseOutcome { point: job.spec.clone(), result: Ok(evaluation), cached: true })
            })
            .collect();
        let born_terminal = resumed.iter().filter(|r| r.is_some()).count();
        let live = resumed.len() - born_terminal;
        let (order, traced, groups) = Self::trace_plan(&jobs, &resumed);

        let (tx, rx) = mpsc::channel();
        let batch = Arc::new(BatchState {
            total: jobs.len(),
            completed: AtomicUsize::new(0),
            progress: tx,
        });
        let mut st = self.shared.state.lock().expect(STATE_POISONED);
        if st.shutting_down {
            st.rejected += jobs.len() as u64;
            self.shared.obs.reject(&Rejected::ShuttingDown, jobs.len() as u64);
            return Err(Rejected::ShuttingDown);
        }
        if admission {
            if let Some(capacity) = self.config.queue_capacity {
                if st.queued + live > capacity {
                    st.rejected += jobs.len() as u64;
                    let rejection = Rejected::QueueFull { capacity };
                    self.shared.obs.reject(&rejection, jobs.len() as u64);
                    return Err(rejection);
                }
            }
            if let (Some(quota), Some(tenant)) = (self.config.tenant_quota, tenant.as_ref()) {
                let used = st.in_flight.get(tenant).copied().unwrap_or(0);
                if used + live > quota {
                    st.rejected += jobs.len() as u64;
                    let rejection = Rejected::QuotaExceeded { tenant: tenant.clone(), quota };
                    self.shared.obs.reject(&rejection, jobs.len() as u64);
                    return Err(rejection);
                }
            }
        }
        // Queue in the interleaved order, but keep `ids` in grid order so
        // the handle's per-point slots line up with the submitted grid.
        let total = jobs.len();
        let mut slots: Vec<Option<(Job, Option<DseOutcome>)>> =
            jobs.into_iter().zip(resumed).map(Some).collect();
        let mut ids = vec![0u64; total];
        for index in order {
            let (job, resumed) = slots[index].take().expect("each slot is queued exactly once");
            let id = st.allocate_id();
            ids[index] = id;
            st.submitted += 1;
            match resumed {
                Some(outcome) => {
                    // Journal-resumed point: born terminal.
                    let done = batch.completed.fetch_add(1, Ordering::SeqCst) + 1;
                    let _ = batch.progress.send(Progress {
                        completed: done,
                        total: batch.total,
                        index,
                        label: job.spec.label(),
                        ok: true,
                        cached: true,
                    });
                    st.completed += 1;
                    self.shared.obs.evals_completed.inc();
                    st.entries.insert(
                        id,
                        Entry {
                            job,
                            tenant: tenant.clone(),
                            priority,
                            traced: false,
                            group: None,
                            submitted_at: Instant::now(),
                            status: JobStatus::Done,
                            outcome: Some(outcome),
                            batch: Some((Arc::clone(&batch), index)),
                            events: None,
                            journal: None,
                            detached: false,
                        },
                    );
                }
                None => {
                    if let Some(tenant) = &tenant {
                        *st.in_flight.entry(tenant.clone()).or_insert(0) += 1;
                    }
                    st.entries.insert(
                        id,
                        Entry {
                            job,
                            tenant: tenant.clone(),
                            priority,
                            traced: traced[index],
                            group: groups[index].clone(),
                            submitted_at: Instant::now(),
                            status: JobStatus::Queued,
                            outcome: None,
                            batch: Some((Arc::clone(&batch), index)),
                            events: None,
                            journal: journal.clone(),
                            detached: false,
                        },
                    );
                    st.queue.push(ClaimRef { priority, seq: id, id });
                    st.queued += 1;
                }
            }
        }
        self.shared.obs.queue_depth.set(st.queued as i64);
        drop(st);
        self.shared.work.notify_all();
        Ok(BatchHandle {
            shared: Arc::clone(&self.shared),
            ids,
            batch,
            progress: rx,
            resumed: born_terminal,
        })
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.state.lock().expect(STATE_POISONED);
        ServiceStats {
            submitted: st.submitted,
            completed: st.completed,
            cancelled: st.cancelled,
            rejected: st.rejected,
            queued: st.queued,
            running: st.running,
        }
    }

    /// In-flight (queued + running) point counts per tenant, sorted by
    /// tenant name. Tenants with nothing in flight are absent.
    pub fn tenants_in_flight(&self) -> Vec<(String, usize)> {
        let st = self.shared.state.lock().expect(STATE_POISONED);
        let mut tenants: Vec<(String, usize)> =
            st.in_flight.iter().map(|(tenant, count)| (tenant.clone(), *count)).collect();
        tenants.sort();
        tenants
    }

    /// The registry this service records into (a shallow clone; see
    /// [`ServiceConfig::with_metrics`]).
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.obs.metrics.clone()
    }

    /// The tracer this service records spans into, if tracing is on.
    pub fn tracer(&self) -> Option<Tracer> {
        self.shared.obs.tracer.clone()
    }

    /// A metrics snapshot with the shared cache's hit/miss/coalesced
    /// counters folded in (as `cache.*` gauges — the cache keeps its own
    /// atomics, so they are mirrored at read time rather than
    /// double-counted on every lookup).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.sync_cache_metrics();
        self.shared.obs.metrics.snapshot()
    }

    /// Prometheus text exposition of [`Self::metrics_snapshot`].
    pub fn render_metrics(&self) -> String {
        self.sync_cache_metrics();
        self.shared.obs.metrics.render_prometheus()
    }

    fn sync_cache_metrics(&self) {
        let stats = self.shared.cache.stats();
        let metrics = &self.shared.obs.metrics;
        metrics.gauge("cache.hits").set(stats.hits as i64);
        metrics.gauge("cache.misses").set(stats.misses as i64);
        metrics.gauge("cache.coalesced").set(stats.coalesced as i64);
        metrics.gauge("cache.entries").set(self.shared.cache.len() as i64);
        let traces = self.shared.traces.stats();
        metrics.gauge("trace.recorded").set(traces.recorded as i64);
        metrics.gauge("trace.reused").set(traces.reused as i64);
        metrics.gauge("trace.evicted").set(traces.evicted as i64);
        metrics.gauge("trace.entries").set(self.shared.traces.len() as i64);
    }

    /// Begins shutdown: queued jobs are cancelled (their waiters observe
    /// [`DseError::Cancelled`]), running jobs finish, and every further
    /// submission is rejected. Idempotent; [`Drop`] calls it and then
    /// joins the workers.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect(STATE_POISONED);
            st.shutting_down = true;
            let queued: Vec<u64> = st
                .entries
                .iter()
                .filter(|(_, e)| e.status == JobStatus::Queued)
                .map(|(id, _)| *id)
                .collect();
            for id in queued {
                cancel_locked(&mut st, &self.shared, id);
            }
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        self.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Expands a spec, mapping grid errors into [`Rejected::InvalidSpec`]
/// (carrying the bare reason, so callers can reconstruct the original
/// [`DseError::Spec`] without stacking display prefixes).
fn expand(spec: &SweepSpec) -> Result<Vec<Job>, Rejected> {
    crate::expand_jobs(spec).map_err(|e| Rejected::InvalidSpec {
        reason: match e {
            DseError::Spec { reason } => reason,
            other => other.to_string(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, CacheKey};
    use cimflow_nn::Model;

    fn request(model: &str, strategy: Strategy) -> EvalRequest {
        EvalRequest::new(model, 32, strategy)
    }

    /// Holds the cache's in-flight marker for `(paper_default, model,
    /// strategy)` until `release` fires, so a service worker claiming the
    /// same point blocks deterministically inside the cache. The marker
    /// is guaranteed held before this returns (the closure signals from
    /// inside the cache): submitting the point afterwards cannot race
    /// the blocker, so a loaded test machine cannot see the worker win
    /// the key and finish the job instantly.
    fn block_point(
        cache: &EvalCache,
        model: Model,
        strategy: Strategy,
        release: mpsc::Receiver<()>,
    ) -> std::thread::JoinHandle<()> {
        let cache = cache.clone();
        let (entered_tx, entered_rx) = mpsc::channel();
        let handle = std::thread::spawn(move || {
            let arch = ArchConfig::paper_default();
            let key = CacheKey::of(&arch, &model, strategy, SearchMode::Sequential);
            cache
                .get_or_insert_with(key, || {
                    entered_tx.send(()).expect("entered signal");
                    release.recv().expect("release signal");
                    evaluate(&arch, &model, strategy)
                })
                .expect("blocked evaluation succeeds");
        });
        entered_rx.recv().expect("blocker holds the in-flight marker");
        handle
    }

    fn wait_until(what: &str, predicate: impl Fn() -> bool) {
        for _ in 0..1000 {
            if predicate() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("timed out waiting until {what}");
    }

    #[test]
    fn submit_wait_round_trip_with_events() {
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let handle = service
            .submit(request("mobilenetv2", Strategy::GenericMapping).with_tenant("t0"))
            .expect("admitted");
        let outcome = handle.wait();
        assert!(outcome.result.is_ok());
        assert!(!outcome.cached);
        assert_eq!(handle.status(), JobStatus::Done);
        assert_eq!(handle.poll().expect("terminal").point, outcome.point);
        let events: Vec<JobEvent> = handle.events().try_iter().collect();
        assert_eq!(events, vec![JobEvent::Started, JobEvent::Finished { ok: true, cached: false }]);
        let stats = service.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
        assert_eq!((stats.queued, stats.running), (0, 0));
    }

    #[test]
    fn timing_only_sweeps_record_once_and_replay_bit_exactly() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_frequencies_mhz(&[500, 1000])
            .with_memory_ports(&[0, 27]);
        let service = EvalService::new(ServiceConfig::new().with_workers(2));
        let outcomes = service.submit_sweep(&spec).expect("admitted").wait();
        assert_eq!(outcomes.len(), 4);
        // One trace group of four points: one recording, three replays.
        let replayed = outcomes
            .iter()
            .filter(|o| o.result.as_ref().is_ok_and(|e| e.eval_path.is_replayed()))
            .count();
        assert_eq!(replayed, 3);
        assert_eq!(service.trace_store().len(), 1);
        assert_eq!(service.trace_store().stats().recorded, 1);
        // Every replayed point is bit-exact against a fresh interpreter
        // run of the same retimed architecture.
        let base = spec.base_arch();
        for outcome in &outcomes {
            let evaluation = outcome.result.as_ref().expect("sweep point succeeds");
            let fresh = crate::evaluate_with_search(
                &outcome.point.arch(&base),
                &models::mobilenet_v2(32),
                Strategy::GenericMapping,
                SearchMode::Sequential,
            )
            .expect("fresh evaluation succeeds");
            assert_eq!(evaluation.simulation, fresh.simulation);
            assert_eq!(evaluation.compilation, fresh.compilation);
        }
        // The replay counters landed on the wire surface.
        let prom = service.render_metrics();
        assert!(prom.contains("sim_replay_points 3"), "missing replay counter in:\n{prom}");
        assert!(prom.contains("trace_entries 1"), "missing trace gauge in:\n{prom}");
        // A sweep without timing-only groups (every point its own trace
        // key) stays on the plain path: no recording overhead.
        let plain = SweepSpec::new()
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::GenericMapping, Strategy::DpOptimized]);
        let outcomes = service.submit_sweep(&plain).expect("admitted").wait();
        assert!(outcomes
            .iter()
            .all(|o| o.result.as_ref().is_ok_and(|e| e.eval_path == crate::EvalPath::Interpreted)));
        assert_eq!(service.trace_store().len(), 1, "singleton groups never record");
    }

    #[test]
    fn grouped_claims_replay_through_one_lockstep_batch() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_frequencies_mhz(&[250, 500, 1000])
            .with_memory_ports(&[0, 27]);
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let outcomes = service.submit_sweep(&spec).expect("admitted").wait();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| o.result.is_ok()));
        // The single worker drains the whole trace group in one claim:
        // the leader records, the five drained members re-time through
        // one lockstep batch whose frequency-sharing lanes collapse onto
        // the two distinct memory-port configurations.
        let replayed = outcomes
            .iter()
            .filter(|o| o.result.as_ref().is_ok_and(|e| e.eval_path.is_replayed()))
            .count();
        assert_eq!(replayed, 5);
        let prom = service.render_metrics();
        assert!(prom.contains("sim_lockstep_batches 1"), "missing batch counter in:\n{prom}");
        assert!(prom.contains("sim_lockstep_lanes 2"), "missing lane counter in:\n{prom}");
        assert!(prom.contains("sim_lockstep_fallbacks 0"), "missing fallback counter in:\n{prom}");
        assert!(prom.contains("sim_replay_points 5"), "missing replay counter in:\n{prom}");
    }

    #[test]
    fn rate_ladder_claims_share_one_serving_resolution() {
        let rates = [200, 400, 800];
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_traffic(crate::TrafficSpec::new(&rates));
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let outcomes = service.submit_sweep(&spec).expect("admitted").wait();
        assert_eq!(outcomes.len(), rates.len());
        // Every rung of the drained ladder carries a serving summary for
        // its own rate, resolved from one shared `serve_ladder` call.
        for outcome in &outcomes {
            let evaluation = outcome.result.as_ref().expect("rung succeeds");
            let serving = evaluation.serving.as_ref().expect("rung has serving summary");
            assert_eq!(serving.offered_qps, outcome.point.offered_qps);
        }
        // The shared resolution matches per-point solo serving exactly.
        let solo = EvalService::new(ServiceConfig::new().with_workers(1));
        for outcome in &outcomes {
            let rung = solo
                .submit(
                    request("mobilenetv2", Strategy::GenericMapping)
                        .with_offered_qps(outcome.point.offered_qps),
                )
                .expect("admitted")
                .wait();
            let lhs = outcome.result.as_ref().expect("ladder rung");
            let rhs = rung.result.as_ref().expect("solo rung");
            assert_eq!(lhs.serving, rhs.serving);
            assert_eq!(lhs.simulation, rhs.simulation);
        }
    }

    #[test]
    fn unknown_models_fail_per_job_not_at_admission() {
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let handle =
            service.submit(request("not-a-model", Strategy::DpOptimized)).expect("admitted");
        assert!(matches!(handle.wait().result, Err(DseError::UnknownModel { .. })));
    }

    #[test]
    fn workers_claim_by_priority_then_fifo() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone());
        // Occupy the single worker on a point whose evaluation is held
        // open through the cache's in-flight marker.
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);
        // Also hold the low-priority point's key hostage, so a wrong
        // claim order would park the worker instead of racing the test.
        let (go_low, release_low) = mpsc::channel();
        let blocker_low =
            block_point(&cache, models::resnet18(32), Strategy::GenericMapping, release_low);
        let low = service
            .submit(request("resnet18", Strategy::GenericMapping).with_priority(Priority::Low))
            .unwrap();
        let high = service
            .submit(
                request("efficientnetb0", Strategy::GenericMapping).with_priority(Priority::High),
            )
            .unwrap();
        go.send(()).unwrap();
        // The high-priority job must finish even though the low one was
        // submitted first.
        let mut high_events = Vec::new();
        while !matches!(high_events.last(), Some(JobEvent::Finished { .. })) {
            high_events.push(
                high.events()
                    .recv_timeout(Duration::from_secs(30))
                    .expect("high-priority job finishes while the low one is blocked"),
            );
        }
        assert!(!low.status().is_terminal(), "low priority must not overtake high");
        go_low.send(()).unwrap();
        assert!(low.wait().result.is_ok());
        assert!(running.wait().result.is_ok());
        blocker.join().unwrap();
        blocker_low.join().unwrap();
    }

    #[test]
    fn bounded_queue_rejects_with_backpressure() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(
            ServiceConfig::new().with_workers(1).with_queue_capacity(1),
            cache.clone(),
        );
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);
        let queued = service.submit(request("resnet18", Strategy::GenericMapping)).unwrap();
        assert_eq!(
            service.submit(request("resnet18", Strategy::DpOptimized)).unwrap_err(),
            Rejected::QueueFull { capacity: 1 }
        );
        assert_eq!(service.stats().rejected, 1);
        go.send(()).unwrap();
        assert!(running.wait().result.is_ok());
        assert!(queued.wait().result.is_ok());
        // Capacity freed: the same submission is admitted now.
        assert!(service.submit(request("resnet18", Strategy::DpOptimized)).is_ok());
        blocker.join().unwrap();
    }

    #[test]
    fn quota_limits_one_tenant_while_others_flow() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(
            ServiceConfig::new().with_workers(1).with_tenant_quota(2),
            cache.clone(),
        );
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let a1 = service
            .submit(request("mobilenetv2", Strategy::GenericMapping).with_tenant("a"))
            .unwrap();
        wait_until("the worker claims tenant a's job", || a1.status() == JobStatus::Running);
        let a2 =
            service.submit(request("resnet18", Strategy::GenericMapping).with_tenant("a")).unwrap();
        // Tenant `a` is at its quota (1 running + 1 queued): backpressure.
        assert_eq!(
            service
                .submit(request("resnet18", Strategy::DpOptimized).with_tenant("a"))
                .unwrap_err(),
            Rejected::QuotaExceeded { tenant: "a".to_owned(), quota: 2 }
        );
        // ...while tenant `b` keeps flowing.
        let b1 = service
            .submit(request("efficientnetb0", Strategy::GenericMapping).with_tenant("b"))
            .unwrap();
        go.send(()).unwrap();
        assert!(a1.wait().result.is_ok());
        assert!(a2.wait().result.is_ok());
        assert!(b1.wait().result.is_ok());
        // Quota released on completion: tenant `a` is admitted again.
        assert!(service
            .submit(request("resnet18", Strategy::DpOptimized).with_tenant("a"))
            .is_ok());
        blocker.join().unwrap();
    }

    #[test]
    fn wait_timeout_expires_on_live_jobs_and_resolves_on_terminal_ones() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone());
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        // A batch over the same (blocked) design point wedges with it.
        let batch = service
            .submit_sweep(
                &SweepSpec::new()
                    .with_model("mobilenetv2", 32)
                    .with_strategies(&[Strategy::GenericMapping]),
            )
            .unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);

        let started = std::time::Instant::now();
        assert!(running.wait_timeout(Duration::from_millis(60)).is_none());
        assert!(batch.wait_timeout(Duration::from_millis(60)).is_none());
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(120), "both deadlines elapsed: {waited:?}");
        assert_eq!(running.status(), JobStatus::Running, "expiry does not consume the job");

        go.send(()).unwrap();
        let outcome = running.wait_timeout(Duration::from_secs(60)).expect("released job lands");
        assert!(outcome.result.is_ok());
        // The batch resolves too, and its progress stream is intact for
        // the regular wait path.
        assert!(batch.wait_timeout(Duration::from_secs(60)).is_some());
        let mut events = 0;
        let outcomes = batch.wait_with(|_| events += 1);
        assert_eq!(outcomes.len(), 1);
        assert_eq!(events, 1, "expired waits leave progress events undrained");
        blocker.join().unwrap();
    }

    #[test]
    fn cancellation_does_not_poison_result_slots() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone());
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);
        let doomed = service.submit(request("resnet18", Strategy::GenericMapping)).unwrap();
        assert!(doomed.cancel(), "a queued job is cancellable");
        assert!(!doomed.cancel(), "cancellation is idempotent");
        assert_eq!(doomed.status(), JobStatus::Cancelled);
        assert!(matches!(doomed.wait().result, Err(DseError::Cancelled)));
        assert_eq!(doomed.events().try_iter().collect::<Vec<_>>(), vec![JobEvent::Cancelled]);
        assert!(!running.cancel(), "a running job is not cancellable");
        go.send(()).unwrap();
        assert!(running.wait().result.is_ok());
        // The service keeps serving after a cancellation.
        let next = service.submit(request("resnet18", Strategy::GenericMapping)).unwrap();
        assert!(next.wait().result.is_ok());
        assert_eq!(service.stats().cancelled, 1);
        blocker.join().unwrap();
    }

    #[test]
    fn batches_keep_grid_order_and_share_the_cache() {
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8]);
        let service = EvalService::new(ServiceConfig::new().with_workers(4));
        let first = service.submit_sweep(&spec).expect("valid spec");
        let second = service.submit_sweep(&spec).expect("valid spec");
        let (a, b) = (first.wait(), second.wait());
        assert_eq!(a.len(), 2);
        assert_eq!(a.iter().map(|o| o.point.mg_size).collect::<Vec<_>>(), vec![4, 8]);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.point, y.point);
        }
        // Duplicate in-flight/warm points coalesce onto one evaluation.
        let stats = service.cache().stats();
        assert_eq!(stats.misses, 2, "two unique points evaluate once each");
        assert_eq!(stats.hits, 2, "the duplicate sweep is served by the cache");
        assert_eq!(service.submit_sweep(&SweepSpec::new()).unwrap_err().kind(), "invalid_spec");
    }

    #[test]
    fn shutdown_cancels_queued_work_and_rejects_new_submissions() {
        let cache = EvalCache::new();
        let service = EvalService::with_cache(ServiceConfig::new().with_workers(1), cache.clone());
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);
        let queued = service.submit(request("resnet18", Strategy::GenericMapping)).unwrap();
        service.shutdown();
        assert!(matches!(queued.wait().result, Err(DseError::Cancelled)));
        assert_eq!(
            service.submit(request("resnet18", Strategy::GenericMapping)).unwrap_err(),
            Rejected::ShuttingDown
        );
        go.send(()).unwrap();
        assert!(running.wait().result.is_ok(), "running jobs finish through shutdown");
        blocker.join().unwrap();
        drop(service);
    }

    #[test]
    fn single_submits_resume_from_and_append_to_the_journal() {
        let dir = std::env::temp_dir().join("cimflow-dse-service-journal-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("submit.jsonl");
        std::fs::remove_file(&path).ok();

        let journal = Arc::new(SweepJournal::open(&path).unwrap());
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let cold = service
            .submit_journaled(request("mobilenetv2", Strategy::GenericMapping), &journal)
            .expect("admitted");
        let outcome = cold.wait();
        assert!(outcome.result.is_ok());
        assert!(!outcome.cached, "first run evaluates");
        assert_eq!(journal.len(), 1, "the worker journaled the point");
        drop(service);

        // A fresh service with a cold cache resumes the point from the
        // journal: born terminal, zero evaluations, cache seeded.
        let journal = Arc::new(SweepJournal::open(&path).unwrap());
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        let warm = service
            .submit_journaled(request("mobilenetv2", Strategy::GenericMapping), &journal)
            .expect("admitted");
        assert_eq!(warm.status(), JobStatus::Done, "journaled submits are born terminal");
        let outcome = warm.wait();
        assert!(outcome.cached);
        assert_eq!(
            warm.events().try_iter().collect::<Vec<_>>(),
            vec![JobEvent::Finished { ok: true, cached: true }]
        );
        assert_eq!(service.cache().len(), 1, "resumption seeds the shared cache");
        assert_eq!(service.cache().stats().misses, 0);
        // A different point still runs (and is journaled in turn).
        let fresh = service
            .submit_journaled(request("mobilenetv2", Strategy::DpOptimized), &journal)
            .expect("admitted");
        assert!(fresh.wait().result.is_ok());
        assert_eq!(journal.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eval_request_resolves_like_a_sweep_point() {
        let request = request("mobilenetv2", Strategy::DpOptimized)
            .with_chip_count(2)
            .with_mg_size(4)
            .with_flit_bytes(16);
        let point = request.point();
        assert_eq!((point.chip_count, point.mg_size, point.flit_bytes), (2, 4, 16));
        assert_eq!(point.core_count, 64, "unset axes pin to the base architecture");
        let arch = point.arch(&request.base_arch());
        assert_eq!(arch.chip_count(), 2);
        assert_eq!(arch.core.cim_unit.macros_per_group, 4);
        // Round-trips through the wire format, including the defaults.
        let back: EvalRequest =
            serde_json::from_str(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(back, request);
        let partial: EvalRequest = serde_json::from_str(
            "{\"model\": {\"name\": \"resnet18\", \"resolution\": 32}, \"strategy\": \"dp\", \
             \"priority\": \"high\", \"tenant\": \"t\"}",
        )
        .unwrap();
        assert_eq!(partial.priority(), Priority::High);
        assert_eq!(partial.tenant(), "t");
        assert_eq!(partial.point().mg_size, 8);
        assert_eq!(partial.point().search, SearchMode::Sequential, "the wire default");
        let joint: EvalRequest = serde_json::from_str(
            "{\"model\": {\"name\": \"resnet18\", \"resolution\": 32}, \"strategy\": \"dp\", \
             \"search\": \"joint\"}",
        )
        .unwrap();
        assert_eq!(joint.point().search, SearchMode::Joint);
    }

    #[test]
    fn service_stats_snapshots_never_tear() {
        use std::sync::atomic::AtomicBool;

        // Four reader threads hammer `stats()` while a worker pool churns
        // through submissions and cancellations; every snapshot must
        // satisfy the documented conservation invariant.
        let service = Arc::new(EvalService::new(ServiceConfig::new().with_workers(2)));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut snapshots = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let s = service.stats();
                        assert_eq!(
                            s.submitted,
                            s.completed + s.cancelled + s.queued as u64 + s.running as u64,
                            "torn snapshot: {s:?}"
                        );
                        snapshots += 1;
                    }
                    snapshots
                })
            })
            .collect();
        let mut handles = Vec::new();
        for round in 0..20 {
            let model = if round % 2 == 0 { "mobilenetv2" } else { "resnet18" };
            let handle = service.submit(request(model, Strategy::GenericMapping)).unwrap();
            if round % 3 == 0 {
                handle.cancel();
            }
            handles.push(handle);
        }
        for handle in &handles {
            let _ = handle.wait();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            assert!(reader.join().unwrap() > 0, "readers actually observed snapshots");
        }
        let s = service.stats();
        assert_eq!(s.submitted, 20);
        assert_eq!(s.completed + s.cancelled, 20);
        assert_eq!((s.queued, s.running), (0, 0));
    }

    #[test]
    fn service_metrics_cover_the_job_lifecycle() {
        use cimflow_obs::MetricValue;

        let registry = MetricsRegistry::new();
        let tracer = Tracer::new(1024);
        let cache = EvalCache::new();
        let service = EvalService::with_cache(
            ServiceConfig::new()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_metrics(registry.clone())
                .with_tracer(tracer.clone()),
            cache.clone(),
        );

        // One evaluated job, one cache-served repeat, one admission
        // rejection while the queue is full.
        let (go, release) = mpsc::channel();
        let blocker =
            block_point(&cache, models::mobilenet_v2(32), Strategy::GenericMapping, release);
        let running = service
            .submit(request("mobilenetv2", Strategy::GenericMapping).with_tenant("t0"))
            .unwrap();
        wait_until("the worker claims the blocked job", || running.status() == JobStatus::Running);
        let queued = service
            .submit(request("mobilenetv2", Strategy::GenericMapping).with_tenant("t0"))
            .unwrap();
        assert_eq!(service.tenants_in_flight(), vec![("t0".to_owned(), 2)]);
        assert_eq!(
            service
                .submit(request("resnet18", Strategy::GenericMapping).with_tenant("t1"))
                .unwrap_err()
                .kind(),
            "queue_full"
        );
        go.send(()).unwrap();
        assert!(running.wait().result.is_ok());
        assert!(queued.wait().result.is_ok());
        blocker.join().unwrap();

        let snapshot = service.metrics_snapshot();
        assert_eq!(snapshot.get("service.evals_completed", &[]), Some(&MetricValue::Counter(2)));
        assert_eq!(
            snapshot.get("service.admission_rejected", &[("cause", "queue_full")]),
            Some(&MetricValue::Counter(1))
        );
        match snapshot.get("service.eval_latency_us", &[("tenant", "t0")]) {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 2),
            other => panic!("eval latency histogram missing: {other:?}"),
        }
        match snapshot.get("service.queue_wait_us", &[("tenant", "t0"), ("priority", "normal")]) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 2);
                assert!(h.p99() >= h.p50());
            }
            other => panic!("queue wait histogram missing: {other:?}"),
        }
        // The cache counters are mirrored into the same snapshot: the
        // blocker's own lookup is the one miss, the blocked first job
        // coalesces onto it (a hit) and the repeat is a plain hit.
        assert_eq!(snapshot.get("cache.hits", &[]), Some(&MetricValue::Gauge(2)));
        assert_eq!(snapshot.get("cache.misses", &[]), Some(&MetricValue::Gauge(1)));
        assert_eq!(snapshot.get("cache.coalesced", &[]), Some(&MetricValue::Gauge(1)));
        // The exposition carries per-tenant quantiles for the wire smoke.
        let text = service.render_metrics();
        assert!(text.contains("service_evals_completed 2"));
        assert!(text.contains(
            "service_queue_wait_us{tenant=\"t0\",priority=\"normal\",quantile=\"0.99\"}"
        ));

        // The tracer holds one eval span per worker-run job, on the
        // worker's named track.
        let spans: Vec<_> = tracer.events().into_iter().filter(|e| e.name == "eval").collect();
        assert_eq!(spans.len(), 2);
        for span in &spans {
            assert_eq!(span.category, "service");
            assert!(span.attrs.iter().any(|(k, _)| k == "tenant"));
        }
        assert!(tracer.to_chrome_json().contains("worker-0"));
        drop(service);
    }

    #[test]
    fn unconfigured_services_still_count_into_a_private_registry() {
        let service = EvalService::new(ServiceConfig::new().with_workers(1));
        assert!(service.tracer().is_none(), "tracing is strictly opt-in");
        let handle = service.submit(request("mobilenetv2", Strategy::GenericMapping)).unwrap();
        assert!(handle.wait().result.is_ok());
        let text = service.render_metrics();
        assert!(text.contains("service_evals_completed 1"));
    }
}
