//! Sweep analysis: Pareto-frontier extraction over (cycles, energy) and
//! best-configuration selection per model.

use std::collections::BTreeMap;

use crate::DseOutcome;

/// Whether point `a` dominates point `b` under minimization of both
/// objectives: no worse in both, strictly better in at least one.
pub fn dominates(a: (u64, f64), b: (u64, f64)) -> bool {
    (a.0 <= b.0 && a.1 <= b.1) && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the non-dominated points of a `(cycles, energy)` set,
/// sorted by ascending cycles (ties broken by ascending energy, then by
/// index, so the result is deterministic).
///
/// Duplicated objective vectors are all kept — they dominate each other
/// in neither direction.
pub fn pareto_indices(points: &[(u64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a].0.cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1)).then(a.cmp(&b))
    });
    let mut frontier = Vec::new();
    let mut best_energy = f64::INFINITY;
    for index in order {
        let (_, energy) = points[index];
        // Scanning by ascending cycles: a point is non-dominated iff its
        // energy beats every faster-or-equal point seen so far. Equal
        // objective vectors are kept (mutually non-dominating).
        let duplicate_of_kept =
            frontier.last().map(|&last: &usize| points[last] == points[index]).unwrap_or(false);
        if energy < best_energy || duplicate_of_kept {
            frontier.push(index);
            best_energy = best_energy.min(energy);
        }
    }
    frontier
}

/// Indices (into `outcomes`) of the successful points on the
/// (cycles, energy) Pareto frontier, sorted by ascending cycles.
pub fn pareto_frontier(outcomes: &[DseOutcome]) -> Vec<usize> {
    let successful: Vec<usize> =
        (0..outcomes.len()).filter(|&i| outcomes[i].result.is_ok()).collect();
    let objectives: Vec<(u64, f64)> = successful
        .iter()
        .map(|&i| {
            let evaluation = outcomes[i].evaluation().expect("filtered to successes");
            (evaluation.simulation.total_cycles, evaluation.simulation.energy_mj())
        })
        .collect();
    pareto_indices(&objectives).into_iter().map(|local| successful[local]).collect()
}

/// Per-model Pareto frontiers: maps each model name to the indices (into
/// `outcomes`) of its non-dominated successful points, sorted by
/// ascending cycles.
///
/// Comparing cycles/energy *across* workloads is meaningless (a compact
/// model dominates a large one on both axes by construction), so
/// reporting surfaces should use this per-model grouping;
/// [`pareto_frontier`] remains for single-model outcome sets and global
/// "is anything optimal at all" checks.
pub fn pareto_frontier_by_model(outcomes: &[DseOutcome]) -> BTreeMap<String, Vec<usize>> {
    let mut by_model: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        if outcome.result.is_ok() {
            by_model.entry(outcome.point.model.name.clone()).or_default().push(index);
        }
    }
    by_model
        .into_iter()
        .map(|(model, indices)| {
            let objectives: Vec<(u64, f64)> = indices
                .iter()
                .map(|&i| {
                    let evaluation = outcomes[i].evaluation().expect("filtered to successes");
                    (evaluation.simulation.total_cycles, evaluation.simulation.energy_mj())
                })
                .collect();
            let frontier =
                pareto_indices(&objectives).into_iter().map(|local| indices[local]).collect();
            (model, frontier)
        })
        .collect()
}

/// The fastest (minimum-cycles) successful point per model name; maps the
/// model name to an index into `outcomes`.
pub fn best_per_model(outcomes: &[DseOutcome]) -> BTreeMap<String, usize> {
    let mut best: BTreeMap<String, usize> = BTreeMap::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        let Some(evaluation) = outcome.evaluation() else { continue };
        let cycles = evaluation.simulation.total_cycles;
        match best.get(&outcome.point.model.name) {
            Some(&current)
                if outcomes[current]
                    .evaluation()
                    .map(|e| e.simulation.total_cycles <= cycles)
                    .unwrap_or(false) => {}
            _ => {
                best.insert(outcome.point.model.name.clone(), index);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict_somewhere() {
        assert!(dominates((10, 1.0), (20, 2.0)));
        assert!(dominates((10, 1.0), (10, 2.0)));
        assert!(dominates((10, 1.0), (20, 1.0)));
        assert!(!dominates((10, 1.0), (10, 1.0)), "equal points do not dominate");
        assert!(!dominates((10, 2.0), (20, 1.0)), "trade-off points do not dominate");
        assert!(!dominates((20, 2.0), (10, 1.0)));
    }

    #[test]
    fn frontier_of_hand_built_set_is_exact() {
        // Hand-built set. The frontier is (10,9), (20,4), (40,1):
        //   (30,5) is dominated by (20,4); (40,2) by (40,1);
        //   (50,8) by everything cheap; (10,9) survives as the fastest.
        let points = vec![(30u64, 5.0), (10, 9.0), (40, 1.0), (20, 4.0), (50, 8.0), (40, 2.0)];
        let frontier = pareto_indices(&points);
        let values: Vec<(u64, f64)> = frontier.iter().map(|&i| points[i]).collect();
        assert_eq!(values, vec![(10, 9.0), (20, 4.0), (40, 1.0)]);
        // Every excluded point is dominated by some frontier point.
        for (i, &p) in points.iter().enumerate() {
            if !frontier.contains(&i) {
                assert!(
                    frontier.iter().any(|&f| dominates(points[f], p)),
                    "point {p:?} excluded but not dominated"
                );
            }
        }
    }

    #[test]
    fn frontier_keeps_duplicates_and_single_points() {
        assert_eq!(pareto_indices(&[]), Vec::<usize>::new());
        assert_eq!(pareto_indices(&[(5, 5.0)]), vec![0]);
        // Duplicated optimal point: both copies are non-dominated.
        let frontier = pareto_indices(&[(5, 5.0), (5, 5.0), (9, 9.0)]);
        assert_eq!(frontier, vec![0, 1]);
    }

    #[test]
    fn frontier_of_a_monotone_chain_is_everything() {
        let chain = vec![(10u64, 9.0), (20, 7.0), (30, 5.0), (40, 3.0)];
        assert_eq!(pareto_indices(&chain), vec![0, 1, 2, 3]);
    }

    #[test]
    fn frontier_of_a_dominated_chain_is_one_point() {
        let chain = vec![(40u64, 9.0), (30, 7.0), (20, 5.0), (10, 3.0)];
        assert_eq!(pareto_indices(&chain), vec![3]);
    }

    #[test]
    fn per_model_frontiers_do_not_compare_across_workloads() {
        use crate::{EvalCache, Executor, SweepSpec};
        use cimflow_compiler::Strategy;

        // Two workloads of very different size: globally, every resnet18
        // point is "dominated" by the compact model, which is meaningless.
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8]);
        let outcomes = Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap();
        let by_model = pareto_frontier_by_model(&outcomes);
        assert_eq!(by_model.len(), 2);
        for (model, frontier) in &by_model {
            assert!(!frontier.is_empty(), "{model} has a non-empty frontier");
            for &index in frontier {
                assert_eq!(&outcomes[index].point.model.name, model);
            }
        }
    }
}
