//! Sweep analysis: Pareto-frontier extraction over (cycles, energy),
//! best-configuration selection per model, and the frontier-quality
//! helpers (non-dominated ranks, crowding distances, hypervolume) the
//! adaptive exploration engine selects by.
//!
//! # The non-finite-objective contract
//!
//! Every function in this module minimizes the pair `(cycles, energy)`
//! and treats a **non-finite energy (NaN or ±∞) as "not a valid
//! objective"**: such points are never on a frontier, never dominate
//! anything, receive the worst possible rank and a zero crowding
//! distance, and contribute nothing to a hypervolume. A NaN energy would
//! otherwise poison every `<` comparison silently (it compares false
//! both ways, so a NaN point could shadow a real duplicate or slip
//! through a domination test); filtering explicitly keeps the frontier
//! semantics total.

use std::collections::BTreeMap;

use serde::Content;

use crate::{DseOutcome, Evaluation};

/// Which scalar pair a Pareto comparison minimizes.
///
/// Every frontier in this module is 2-D: an integer "speed" axis and a
/// floating-point energy axis. The objective selects what those axes
/// *mean* for a given sweep:
///
/// - [`Objective::Cycles`] — classic offline sweeps: single-inference
///   latency in cycles against single-inference energy.
/// - [`Objective::P99Latency`] — serving sweeps: the p99 request latency
///   (in integer nanoseconds) under the point's offered load, against
///   the energy of the whole serving run. Points evaluated without a
///   traffic workload have no serving metrics and are excluded from
///   p99 frontiers entirely (mirroring the non-finite-energy contract).
/// - [`Objective::Area`] — hardware-cost sweeps: single-inference
///   latency in cycles against the system's silicon area in mm² (the
///   arch-derived [`AreaModel`](cimflow_energy::AreaModel)), trading
///   speed against die cost instead of against energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Minimize single-inference latency in cycles (the default).
    #[default]
    Cycles,
    /// Minimize serving p99 request latency in nanoseconds.
    P99Latency,
    /// Minimize single-inference latency against silicon area in mm².
    Area,
}

impl serde::Serialize for Objective {
    fn serialize(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl serde::Deserialize for Objective {
    fn deserialize(content: &Content) -> Result<Self, serde::Error> {
        let text =
            content.as_str().ok_or_else(|| serde::Error::new("expected objective name string"))?;
        text.parse().map_err(serde::Error::new)
    }
}

impl Objective {
    /// The `(integer latency, energy_mj)` objective pair of one
    /// evaluation, or `None` when the evaluation lacks the required
    /// data (p99 requested on a point evaluated without traffic).
    pub fn of(self, evaluation: &Evaluation) -> Option<(u64, f64)> {
        match self {
            Objective::Cycles => {
                Some((evaluation.simulation.total_cycles, evaluation.simulation.energy_mj()))
            }
            Objective::P99Latency => {
                evaluation.serving.as_ref().map(|s| (s.p99_latency_ns(), s.energy_mj))
            }
            Objective::Area => {
                Some((evaluation.simulation.total_cycles, area_mm2(&evaluation.arch)))
            }
        }
    }
}

/// Total silicon area of an architecture in mm² under the default
/// 28 nm-calibrated [`AreaModel`](cimflow_energy::AreaModel): the float
/// axis of [`Objective::Area`] frontiers and the quantity the explorer's
/// `--max-area` feasibility cap bounds.
pub fn area_mm2(arch: &cimflow_arch::ArchConfig) -> f64 {
    cimflow_energy::AreaModel::default().system_mm2(arch)
}

impl std::str::FromStr for Objective {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        match text {
            "cycles" => Ok(Objective::Cycles),
            "p99" | "p99-latency" | "p99_latency" => Ok(Objective::P99Latency),
            "area" => Ok(Objective::Area),
            other => {
                Err(format!("unknown objective `{other}` (expected `cycles`, `p99` or `area`)"))
            }
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Cycles => write!(f, "cycles"),
            Objective::P99Latency => write!(f, "p99"),
            Objective::Area => write!(f, "area"),
        }
    }
}

/// Whether point `a` dominates point `b` under minimization of both
/// objectives: no worse in both, strictly better in at least one.
///
/// A point with a non-finite energy neither dominates nor is dominated
/// in a useful sense: if either energy is NaN or infinite this returns
/// `false` (see the module-level contract).
pub fn dominates(a: (u64, f64), b: (u64, f64)) -> bool {
    if !a.1.is_finite() || !b.1.is_finite() {
        return false;
    }
    (a.0 <= b.0 && a.1 <= b.1) && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the non-dominated points of a `(cycles, energy)` set,
/// sorted by ascending cycles (ties broken by ascending energy, then by
/// index, so the result is deterministic).
///
/// Duplicated objective vectors are all kept — they dominate each other
/// in neither direction. Points with a non-finite energy are rejected
/// up front and can never appear in the result (nor shadow a duplicate
/// of a kept finite point); a set of only non-finite points has an
/// empty frontier.
pub fn pareto_indices(points: &[(u64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).filter(|&i| points[i].1.is_finite()).collect();
    order.sort_by(|&a, &b| {
        points[a].0.cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1)).then(a.cmp(&b))
    });
    let mut frontier = Vec::new();
    let mut best_energy = f64::INFINITY;
    for index in order {
        let (_, energy) = points[index];
        // Scanning by ascending cycles: a point is non-dominated iff its
        // energy beats every faster-or-equal point seen so far. Equal
        // objective vectors are kept (mutually non-dominating).
        let duplicate_of_kept =
            frontier.last().map(|&last: &usize| points[last] == points[index]).unwrap_or(false);
        if energy < best_energy || duplicate_of_kept {
            frontier.push(index);
            best_energy = best_energy.min(energy);
        }
    }
    frontier
}

/// Non-dominated sorting: the Pareto rank of every point (0 = on the
/// frontier, 1 = on the frontier once rank-0 points are removed, and so
/// on). Points with a non-finite energy get `usize::MAX` — they sort
/// behind every ranked point (module-level contract).
pub fn pareto_ranks(points: &[(u64, f64)]) -> Vec<usize> {
    let mut ranks = vec![usize::MAX; points.len()];
    let mut remaining: Vec<usize> =
        (0..points.len()).filter(|&i| points[i].1.is_finite()).collect();
    let mut rank = 0;
    while !remaining.is_empty() {
        let objectives: Vec<(u64, f64)> = remaining.iter().map(|&i| points[i]).collect();
        let front = pareto_indices(&objectives);
        for &local in &front {
            ranks[remaining[local]] = rank;
        }
        let on_front: std::collections::HashSet<usize> = front.into_iter().collect();
        remaining = remaining
            .into_iter()
            .enumerate()
            .filter(|(local, _)| !on_front.contains(local))
            .map(|(_, index)| index)
            .collect();
        rank += 1;
    }
    ranks
}

/// NSGA-II crowding distances computed within each rank class of
/// `ranks` (as produced by [`pareto_ranks`] over the same points):
/// boundary points of a front get `f64::INFINITY`, interior points the
/// normalized neighbor gap summed over both objectives. Non-finite
/// points (rank `usize::MAX`) get `0.0`.
pub fn crowding_distances(points: &[(u64, f64)], ranks: &[usize]) -> Vec<f64> {
    assert_eq!(points.len(), ranks.len(), "one rank per point");
    let mut distance = vec![0.0_f64; points.len()];
    let mut fronts: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (index, &rank) in ranks.iter().enumerate() {
        if rank != usize::MAX {
            fronts.entry(rank).or_default().push(index);
        }
    }
    for front in fronts.values() {
        if front.len() <= 2 {
            for &index in front {
                distance[index] = f64::INFINITY;
            }
            continue;
        }
        let mut by_cycles = front.clone();
        by_cycles.sort_by(|&a, &b| {
            points[a].0.cmp(&points[b].0).then(points[a].1.total_cmp(&points[b].1)).then(a.cmp(&b))
        });
        let first = points[*by_cycles.first().expect("non-empty front")];
        let last = points[*by_cycles.last().expect("non-empty front")];
        let cycle_range = (last.0.saturating_sub(first.0)).max(1) as f64;
        let energy_range = {
            let (mut low, mut high) = (f64::INFINITY, f64::NEG_INFINITY);
            for &index in front {
                low = low.min(points[index].1);
                high = high.max(points[index].1);
            }
            (high - low).max(f64::MIN_POSITIVE)
        };
        distance[by_cycles[0]] = f64::INFINITY;
        distance[*by_cycles.last().expect("non-empty front")] = f64::INFINITY;
        for window in by_cycles.windows(3) {
            let (previous, middle, next) = (points[window[0]], window[1], points[window[2]]);
            if distance[middle].is_infinite() {
                continue;
            }
            distance[middle] += (next.0 - previous.0) as f64 / cycle_range
                + (next.1 - previous.1).abs() / energy_range;
        }
    }
    distance
}

/// The 2-D hypervolume (dominated area) of the Pareto frontier of
/// `points` against a reference point `(ref_cycles, ref_energy)`: the
/// area of the region dominated by at least one frontier point and
/// bounded by the reference. A larger value is a better frontier;
/// the reference must be weakly worse than every point of interest
/// (points at or beyond it contribute nothing). Non-finite energies are
/// excluded per the module contract.
pub fn hypervolume(points: &[(u64, f64)], reference: (u64, f64)) -> f64 {
    let frontier = pareto_indices(points);
    let mut volume = 0.0;
    for (position, &index) in frontier.iter().enumerate() {
        let (cycles, energy) = points[index];
        if cycles >= reference.0 {
            break;
        }
        let next_cycles =
            frontier.get(position + 1).map_or(reference.0, |&n| points[n].0.min(reference.0));
        let height = (reference.1 - energy).max(0.0);
        volume += (next_cycles - cycles) as f64 * height;
    }
    volume
}

/// Indices (into `outcomes`) of the successful points on the
/// (cycles, energy) Pareto frontier, sorted by ascending cycles.
pub fn pareto_frontier(outcomes: &[DseOutcome]) -> Vec<usize> {
    pareto_frontier_with(outcomes, Objective::Cycles)
}

/// Indices (into `outcomes`) of the successful points on the Pareto
/// frontier of the chosen [`Objective`], sorted by ascending latency.
///
/// Points whose evaluation cannot express the objective (no serving
/// metrics under [`Objective::P99Latency`]) are excluded — a mixed
/// sweep where only some points ran traffic yields a frontier over the
/// served points only.
pub fn pareto_frontier_with(outcomes: &[DseOutcome], objective: Objective) -> Vec<usize> {
    let mut eligible = Vec::new();
    let mut objectives = Vec::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        if let Some(pair) = outcome.evaluation().and_then(|e| objective.of(e)) {
            eligible.push(index);
            objectives.push(pair);
        }
    }
    pareto_indices(&objectives).into_iter().map(|local| eligible[local]).collect()
}

/// Per-model Pareto frontiers: maps each model name to the indices (into
/// `outcomes`) of its non-dominated successful points, sorted by
/// ascending cycles.
///
/// Comparing cycles/energy *across* workloads is meaningless (a compact
/// model dominates a large one on both axes by construction), so
/// reporting surfaces should use this per-model grouping;
/// [`pareto_frontier`] remains for single-model outcome sets and global
/// "is anything optimal at all" checks.
pub fn pareto_frontier_by_model(outcomes: &[DseOutcome]) -> BTreeMap<String, Vec<usize>> {
    pareto_frontier_by_model_with(outcomes, Objective::Cycles)
}

/// Per-model Pareto frontiers under the chosen [`Objective`] (see
/// [`pareto_frontier_by_model`] for why frontiers are always grouped by
/// model). Points that cannot express the objective are excluded per
/// [`pareto_frontier_with`]; a model whose points all lack serving
/// metrics simply does not appear in a p99 map.
pub fn pareto_frontier_by_model_with(
    outcomes: &[DseOutcome],
    objective: Objective,
) -> BTreeMap<String, Vec<usize>> {
    type Grouped = BTreeMap<String, Vec<(usize, (u64, f64))>>;
    let mut by_model: Grouped = BTreeMap::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        if let Some(pair) = outcome.evaluation().and_then(|e| objective.of(e)) {
            by_model.entry(outcome.point.model.name.clone()).or_default().push((index, pair));
        }
    }
    by_model
        .into_iter()
        .map(|(model, entries)| {
            let objectives: Vec<(u64, f64)> = entries.iter().map(|&(_, pair)| pair).collect();
            let frontier =
                pareto_indices(&objectives).into_iter().map(|local| entries[local].0).collect();
            (model, frontier)
        })
        .collect()
}

/// The `(cycles, energy_mj)` objectives of every successful outcome,
/// grouped by model name (the extraction behind every per-model
/// comparison — frontier membership, hypervolume ratios, selection).
/// Non-finite energies are excluded per the module contract.
pub fn objectives_by_model(outcomes: &[DseOutcome]) -> BTreeMap<String, Vec<(u64, f64)>> {
    let mut by_model: BTreeMap<String, Vec<(u64, f64)>> = BTreeMap::new();
    for outcome in outcomes {
        if let Some(evaluation) = outcome.evaluation() {
            let objectives =
                (evaluation.simulation.total_cycles, evaluation.simulation.energy_mj());
            if objectives.1.is_finite() {
                by_model.entry(outcome.point.model.name.clone()).or_default().push(objectives);
            }
        }
    }
    by_model
}

/// Per-model reference points for hypervolume comparisons, weakly worse
/// than every successful outcome: `(max cycles + 1, max energy ×
/// energy_margin)`. Pass the same reference map to
/// [`hypervolume_by_model`] for every outcome set being compared — the
/// ratio between two frontiers is only meaningful against a shared
/// reference.
pub fn reference_points(
    outcomes: &[DseOutcome],
    energy_margin: f64,
) -> BTreeMap<String, (u64, f64)> {
    objectives_by_model(outcomes)
        .into_iter()
        .map(|(model, points)| {
            let cycles = points.iter().map(|p| p.0).max().unwrap_or(0) + 1;
            let energy = points.iter().map(|p| p.1).fold(0.0, f64::max) * energy_margin;
            (model, (cycles, energy))
        })
        .collect()
}

/// The per-model frontier [`hypervolume`] of `outcomes` against shared
/// per-model reference points (see [`reference_points`]); models absent
/// from `outcomes` score `0.0`.
pub fn hypervolume_by_model(
    outcomes: &[DseOutcome],
    references: &BTreeMap<String, (u64, f64)>,
) -> BTreeMap<String, f64> {
    let by_model = objectives_by_model(outcomes);
    references
        .iter()
        .map(|(model, &reference)| {
            let points = by_model.get(model).cloned().unwrap_or_default();
            (model.clone(), hypervolume(&points, reference))
        })
        .collect()
}

/// The fastest (minimum-cycles) successful point per model name; maps the
/// model name to an index into `outcomes`.
///
/// Cycle ties are broken by lower energy, then by lower index, so the
/// reported best point is never Pareto-dominated by another point with
/// equal cycles (keeping the first-seen point regardless of energy was
/// a long-standing bug). Points with a non-finite energy are skipped
/// entirely (module-level contract), even when they would win on
/// cycles.
pub fn best_per_model(outcomes: &[DseOutcome]) -> BTreeMap<String, usize> {
    let mut best: BTreeMap<String, usize> = BTreeMap::new();
    for (index, outcome) in outcomes.iter().enumerate() {
        let Some(evaluation) = outcome.evaluation() else { continue };
        if !evaluation.simulation.energy_mj().is_finite() {
            continue;
        }
        let objectives =
            (evaluation.simulation.total_cycles, evaluation.simulation.energy_mj(), index);
        let better = match best.get(&outcome.point.model.name) {
            Some(&current) => {
                let held = outcomes[current].evaluation().expect("best points are successes");
                let held = (held.simulation.total_cycles, held.simulation.energy_mj(), current);
                objectives.0 < held.0
                    || (objectives.0 == held.0 && objectives.1.total_cmp(&held.1).is_lt())
            }
            None => true,
        };
        if better {
            best.insert(outcome.point.model.name.clone(), index);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination_is_strict_somewhere() {
        assert!(dominates((10, 1.0), (20, 2.0)));
        assert!(dominates((10, 1.0), (10, 2.0)));
        assert!(dominates((10, 1.0), (20, 1.0)));
        assert!(!dominates((10, 1.0), (10, 1.0)), "equal points do not dominate");
        assert!(!dominates((10, 2.0), (20, 1.0)), "trade-off points do not dominate");
        assert!(!dominates((20, 2.0), (10, 1.0)));
    }

    #[test]
    fn frontier_of_hand_built_set_is_exact() {
        // Hand-built set. The frontier is (10,9), (20,4), (40,1):
        //   (30,5) is dominated by (20,4); (40,2) by (40,1);
        //   (50,8) by everything cheap; (10,9) survives as the fastest.
        let points = vec![(30u64, 5.0), (10, 9.0), (40, 1.0), (20, 4.0), (50, 8.0), (40, 2.0)];
        let frontier = pareto_indices(&points);
        let values: Vec<(u64, f64)> = frontier.iter().map(|&i| points[i]).collect();
        assert_eq!(values, vec![(10, 9.0), (20, 4.0), (40, 1.0)]);
        // Every excluded point is dominated by some frontier point.
        for (i, &p) in points.iter().enumerate() {
            if !frontier.contains(&i) {
                assert!(
                    frontier.iter().any(|&f| dominates(points[f], p)),
                    "point {p:?} excluded but not dominated"
                );
            }
        }
    }

    #[test]
    fn frontier_keeps_duplicates_and_single_points() {
        assert_eq!(pareto_indices(&[]), Vec::<usize>::new());
        assert_eq!(pareto_indices(&[(5, 5.0)]), vec![0]);
        // Duplicated optimal point: both copies are non-dominated.
        let frontier = pareto_indices(&[(5, 5.0), (5, 5.0), (9, 9.0)]);
        assert_eq!(frontier, vec![0, 1]);
    }

    #[test]
    fn non_finite_energies_are_rejected_everywhere() {
        // NaN never dominates and is never dominated.
        assert!(!dominates((10, f64::NAN), (20, 2.0)));
        assert!(!dominates((10, 1.0), (20, f64::NAN)));
        assert!(!dominates((10, f64::INFINITY), (20, f64::INFINITY)));

        // A NaN point can never reach the frontier, even as the fastest
        // point of the set, and it must not shadow a finite duplicate:
        // (5, 5.0) at index 3 duplicates the kept index 0 and stays.
        let poisoned = [(5u64, 5.0), (4, f64::NAN), (9, 2.0), (5, 5.0), (7, f64::NEG_INFINITY)];
        assert_eq!(pareto_indices(&poisoned), vec![0, 3, 2]);

        // An all-non-finite set has an empty frontier instead of a
        // silently arbitrary one.
        assert_eq!(pareto_indices(&[(1, f64::NAN), (2, f64::INFINITY)]), Vec::<usize>::new());

        // An infinite-energy point is excluded even when it is the only
        // point (the historical scan would also have dropped it, but by
        // accident of the `< INFINITY` comparison).
        assert_eq!(pareto_indices(&[(10, f64::INFINITY)]), Vec::<usize>::new());

        // Ranks and crowding follow the same contract.
        let ranks = pareto_ranks(&poisoned);
        assert_eq!(ranks, vec![0, usize::MAX, 0, 0, usize::MAX]);
        let crowding = crowding_distances(&poisoned, &ranks);
        assert_eq!(crowding[1], 0.0);
        assert_eq!(crowding[4], 0.0);

        // And the hypervolume counts only the finite frontier.
        let volume = hypervolume(&poisoned, (20, 10.0));
        let finite_only = hypervolume(&[(5, 5.0), (9, 2.0)], (20, 10.0));
        assert!((volume - finite_only).abs() < 1e-12);
    }

    #[test]
    fn ranks_peel_fronts_in_order() {
        // Front 0: (10, 1.0), (5, 2.0); front 1: (10, 2.0); front 2: (11, 3.0).
        let points = [(10u64, 1.0), (5, 2.0), (10, 2.0), (11, 3.0)];
        assert_eq!(pareto_ranks(&points), vec![0, 0, 1, 2]);
        assert_eq!(pareto_ranks(&[]), Vec::<usize>::new());
    }

    #[test]
    fn crowding_rewards_isolated_points() {
        // One front: boundary points are infinitely crowded-distant; the
        // interior point near its neighbor scores below the isolated one.
        let points = [(10u64, 9.0), (20, 7.0), (22, 6.5), (40, 1.0)];
        let ranks = pareto_ranks(&points);
        assert!(ranks.iter().all(|&r| r == 0));
        let crowding = crowding_distances(&points, &ranks);
        assert!(crowding[0].is_infinite() && crowding[3].is_infinite());
        assert!(crowding[1].is_finite() && crowding[2].is_finite());
        // Index 2's neighbors span a wider box than index 1's (its far
        // side is the isolated (40, 1.0) point), so it is less crowded.
        assert!(crowding[2] > crowding[1], "{crowding:?}");
    }

    #[test]
    fn hypervolume_is_monotone_in_frontier_quality() {
        let reference = (100u64, 10.0);
        let single = hypervolume(&[(50, 5.0)], reference);
        assert!((single - (50.0 * 5.0)).abs() < 1e-9);
        // Adding a trade-off point grows the dominated area; adding a
        // dominated point changes nothing.
        let pair = hypervolume(&[(50, 5.0), (20, 8.0)], reference);
        assert!((pair - (30.0 * 2.0 + 50.0 * 5.0)).abs() < 1e-9);
        let with_dominated = hypervolume(&[(50, 5.0), (20, 8.0), (60, 9.0)], reference);
        assert!((with_dominated - pair).abs() < 1e-12);
        // Points at or beyond the reference contribute nothing.
        assert_eq!(hypervolume(&[(100, 5.0), (40, 12.0)], reference), 0.0);
        assert_eq!(hypervolume(&[], reference), 0.0);
    }

    #[test]
    fn frontier_of_a_monotone_chain_is_everything() {
        let chain = vec![(10u64, 9.0), (20, 7.0), (30, 5.0), (40, 3.0)];
        assert_eq!(pareto_indices(&chain), vec![0, 1, 2, 3]);
    }

    #[test]
    fn frontier_of_a_dominated_chain_is_one_point() {
        let chain = vec![(40u64, 9.0), (30, 7.0), (20, 5.0), (10, 3.0)];
        assert_eq!(pareto_indices(&chain), vec![3]);
    }

    /// Synthetic outcomes with pinned objectives: one real evaluation is
    /// cloned and its simulation report rewritten, so the selection logic
    /// is exercised on exact, controlled (cycles, energy) values.
    fn synthetic_outcomes(objectives: &[(u64, f64)]) -> Vec<DseOutcome> {
        use crate::{evaluate, SweepSpec};
        use cimflow_arch::ArchConfig;
        use cimflow_compiler::Strategy;
        use cimflow_nn::models;

        let template = evaluate(
            &ArchConfig::paper_default(),
            &models::mobilenet_v2(32),
            Strategy::GenericMapping,
        )
        .expect("template evaluation succeeds");
        let point = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .expand()
            .unwrap()[0]
            .clone();
        objectives
            .iter()
            .map(|&(cycles, energy_mj)| {
                let mut evaluation = template.clone();
                evaluation.simulation.total_cycles = cycles;
                evaluation.simulation.energy = Default::default();
                // total_mj = total_pj * 1e-9.
                evaluation.simulation.energy.compute_pj = energy_mj * 1.0e9;
                DseOutcome { point: point.clone(), result: Ok(evaluation), cached: false }
            })
            .collect()
    }

    #[test]
    fn objectives_by_model_groups_and_filters_non_finite() {
        let outcomes = synthetic_outcomes(&[(10, 1.0), (20, f64::NAN), (30, f64::INFINITY)]);
        let grouped = objectives_by_model(&outcomes);
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped["mobilenetv2"], vec![(10, 1.0)]);
    }

    #[test]
    fn reference_points_bound_outcomes_and_hypervolume_by_model_scores_them() {
        let outcomes = synthetic_outcomes(&[(10, 3.0), (30, 1.0)]);
        let references = reference_points(&outcomes, 2.0);
        let (cycles, energy) = references["mobilenetv2"];
        assert_eq!(cycles, 31);
        assert!((energy - 6.0).abs() < 1e-9);
        let volumes = hypervolume_by_model(&outcomes, &references);
        // Frontier (10,3), (30,1): (30-10)*(6-3) + (31-30)*(6-1) = 65.
        assert!((volumes["mobilenetv2"] - 65.0).abs() < 1e-6, "{volumes:?}");
        // A model missing from the compared set scores zero.
        let empty = hypervolume_by_model(&[], &references);
        assert_eq!(empty["mobilenetv2"], 0.0);
    }

    #[test]
    fn best_per_model_breaks_cycle_ties_by_energy_then_index() {
        // Three points tie on cycles; the middle one has the lowest
        // energy and must win (the first-seen point is Pareto-dominated
        // by it). A fourth, slower point never competes.
        let outcomes = synthetic_outcomes(&[(100, 5.0), (100, 2.0), (100, 2.0), (90, 9.0)]);
        let best = best_per_model(&outcomes);
        assert_eq!(best.len(), 1);
        // (90, 9.0) is strictly faster: minimum cycles still dominates
        // the tie-break.
        assert_eq!(best["mobilenetv2"], 3);

        // Without the faster point, the tie resolves to the lowest
        // energy, and among equal (cycles, energy) pairs to the lowest
        // index.
        let tied = synthetic_outcomes(&[(100, 5.0), (100, 2.0), (100, 2.0)]);
        assert_eq!(best_per_model(&tied)["mobilenetv2"], 1);

        // A poisoned (non-finite energy) point never wins, even with
        // strictly minimum cycles — the module contract holds here too.
        let poisoned = synthetic_outcomes(&[(50, f64::NAN), (100, 2.0), (80, f64::INFINITY)]);
        assert_eq!(best_per_model(&poisoned)["mobilenetv2"], 1);
        let all_poisoned = synthetic_outcomes(&[(50, f64::NAN)]);
        assert!(best_per_model(&all_poisoned).is_empty());

        // The selected point is never Pareto-dominated by an equal-cycles
        // sibling.
        let objectives: Vec<(u64, f64)> = tied
            .iter()
            .map(|o| {
                let e = o.evaluation().unwrap();
                (e.simulation.total_cycles, e.simulation.energy_mj())
            })
            .collect();
        let chosen = objectives[best_per_model(&tied)["mobilenetv2"]];
        assert!(objectives.iter().all(|&other| !dominates(other, chosen)));
    }

    #[test]
    fn p99_objective_covers_served_points_and_skips_unserved_ones() {
        use crate::ServingSummary;

        fn summary(p99_us: f64, energy_mj: f64) -> ServingSummary {
            ServingSummary {
                offered_qps: 1000,
                goodput_qps: 900.0,
                saturation_qps: 1200.0,
                p50_latency_us: p99_us / 2.0,
                p99_latency_us: p99_us,
                max_latency_us: p99_us * 1.5,
                requests: 256,
                mean_batch: 2.0,
                peak_queue_depth: 4,
                colocated: 1,
                energy_mj,
            }
        }

        // Four points; the first never ran traffic. Under p99 the
        // serving objectives are (200µs, 5mJ), (100µs, 8mJ), (300µs, 9mJ):
        // the last is dominated, the first two trade off.
        let mut outcomes = synthetic_outcomes(&[(10, 1.0), (40, 4.0), (20, 2.0), (30, 3.0)]);
        outcomes[1].result.as_mut().unwrap().serving = Some(summary(200.0, 5.0));
        outcomes[2].result.as_mut().unwrap().serving = Some(summary(100.0, 8.0));
        outcomes[3].result.as_mut().unwrap().serving = Some(summary(300.0, 9.0));

        // Cycles frontier still sees every successful point.
        assert_eq!(pareto_frontier_with(&outcomes, Objective::Cycles), vec![0]);
        assert_eq!(pareto_frontier(&outcomes), vec![0]);

        let p99 = pareto_frontier_with(&outcomes, Objective::P99Latency);
        assert_eq!(p99, vec![2, 1], "sorted by ascending p99, unserved point excluded");

        let by_model = pareto_frontier_by_model_with(&outcomes, Objective::P99Latency);
        assert_eq!(by_model["mobilenetv2"], vec![2, 1]);

        // Objective extraction: integer nanoseconds, serving energy.
        let pair = Objective::P99Latency.of(outcomes[1].evaluation().unwrap()).unwrap();
        assert_eq!(pair, (200_000, 5.0));
        assert_eq!(Objective::P99Latency.of(outcomes[0].evaluation().unwrap()), None);

        // Parsing and display round-trip for the CLI flag.
        assert_eq!("p99".parse::<Objective>().unwrap(), Objective::P99Latency);
        assert_eq!("cycles".parse::<Objective>().unwrap(), Objective::Cycles);
        assert!("latency".parse::<Objective>().is_err());
        assert_eq!(Objective::P99Latency.to_string(), "p99");
    }

    #[test]
    fn per_model_frontiers_do_not_compare_across_workloads() {
        use crate::{EvalCache, Executor, SweepSpec};
        use cimflow_compiler::Strategy;

        // Two workloads of very different size: globally, every resnet18
        // point is "dominated" by the compact model, which is meaningless.
        let spec = SweepSpec::new()
            .with_model("mobilenetv2", 32)
            .with_model("resnet18", 32)
            .with_strategies(&[Strategy::GenericMapping])
            .with_mg_sizes(&[4, 8]);
        let outcomes = Executor::sequential().run_spec(&spec, &EvalCache::new()).unwrap();
        let by_model = pareto_frontier_by_model(&outcomes);
        assert_eq!(by_model.len(), 2);
        for (model, frontier) in &by_model {
            assert!(!frontier.is_empty(), "{model} has a non-empty frontier");
            for &index in frontier {
                assert_eq!(&outcomes[index].point.model.name, model);
            }
        }
    }
}
