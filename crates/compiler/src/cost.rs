//! The cost estimation model guiding partitioning and core-mapping
//! decisions.
//!
//! "To balance parallel execution benefits against communication costs,
//! the estimation model accounts for both computation costs and data
//! transfer overheads across inter- and intra-cluster communications."
//! (paper Sec. III-C)
//!
//! The estimates here only *rank* candidate partitions and mappings; the
//! authoritative latency/energy numbers always come from the cycle-level
//! simulator.

use cimflow_arch::{ArchConfig, InterChipTopology};
use cimflow_energy::EnergyModel;

use crate::frontend::OpGroup;

/// Granularity at which cut activations stream over the inter-chip
/// fabric — roughly one output pixel's channel vector, the natural unit
/// the producing stage emits. Both the simulator's tile-granular
/// hand-off and the search's interval estimator charge a consumer chip
/// only the residual of one tile, because the remaining tiles overlap
/// the producer's execution.
pub const STREAM_TILE_BYTES: u64 = 512;

/// Resource allocation chosen for one operator group inside a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupMapping {
    /// Index of the group in the condensed graph.
    pub group: usize,
    /// Cores per replica (output channels are sliced across these).
    pub cores_per_replica: u32,
    /// Weight-duplication factor (output pixels are sliced across replicas).
    pub replicas: u32,
}

impl GroupMapping {
    /// Total cores consumed by the group.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_replica * self.replicas
    }
}

/// Estimated cost of one stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Estimated stage latency in cycles (pipeline bottleneck plus
    /// stage-boundary overheads).
    pub cycles: u64,
    /// Estimated stage energy in picojoules.
    pub energy_pj: f64,
}

/// The compiler-side cost model.
#[derive(Debug, Clone)]
pub struct CostModel {
    arch: ArchConfig,
    energy: EnergyModel,
}

impl CostModel {
    /// Creates a cost model for an architecture with the default
    /// 28 nm-calibrated energy constants.
    pub fn new(arch: &ArchConfig) -> Self {
        CostModel { arch: *arch, energy: EnergyModel::calibrated_28nm() }
    }

    /// The architecture the model describes.
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// CIM weight capacity of one core in bytes.
    pub fn core_capacity_bytes(&self) -> u64 {
        self.arch.core.cim_unit.weight_capacity_bytes()
    }

    /// Number of cores on the chip.
    pub fn total_cores(&self) -> u32 {
        self.arch.chip().core_count
    }

    /// Reduction-dimension tiles needed for a group (`ceil(K / macro rows)`).
    pub fn row_tiles(&self, group: &OpGroup) -> u32 {
        group.metrics.k_rows.div_ceil(self.arch.core.cim_unit.rows_per_operation())
    }

    /// Output-channel tiles needed for a group across the whole cluster.
    pub fn channel_tiles(&self, group: &OpGroup) -> u32 {
        group.metrics.out_channels.div_ceil(self.arch.core.cim_unit.output_channels_per_group())
    }

    /// Minimum number of cores able to hold one replica of the group's
    /// weights, considering both raw capacity and macro-group counts.
    pub fn min_cores(&self, group: &OpGroup) -> u32 {
        let capacity = self.core_capacity_bytes().max(1);
        let by_capacity = group.metrics.weight_bytes.div_ceil(capacity) as u32;
        let tiles = self.row_tiles(group) as u64 * u64::from(self.channel_tiles(group));
        let by_macro_groups =
            tiles.div_ceil(u64::from(self.arch.core.cim_unit.macro_groups)) as u32;
        by_capacity.max(by_macro_groups).max(1)
    }

    /// Estimated cycles one replica of the group needs to produce its
    /// pixel slice, given `cores_per_replica` cores and `replicas`
    /// replicas (pipelined with its neighbours).
    pub fn group_cycles(&self, group: &OpGroup, cores_per_replica: u32, replicas: u32) -> u64 {
        let unit = &self.arch.core.cim_unit;
        let pixels = u64::from(group.metrics.out_pixels.div_ceil(replicas.max(1)));
        let ch_per_core = group.metrics.out_channels.div_ceil(cores_per_replica.max(1));
        let ch_tiles = u64::from(ch_per_core.div_ceil(unit.output_channels_per_group()));
        let row_tiles = u64::from(self.row_tiles(group));
        let mvms_per_pixel = ch_tiles * row_tiles;
        let rows = group.metrics.k_rows.min(unit.rows_per_operation());
        // Distinct (row, channel) tiles live on distinct macro groups, so a
        // pixel's MVMs overlap; consecutive pixels serialize on each MG,
        // except that vacant macro groups hold duplicated weight copies and
        // serve interleaved pixels (intra-core duplication).
        let intra = u64::from(unit.macro_groups) / mvms_per_pixel.max(1);
        let cim_cycles = pixels * unit.mvm_issue_cycles(rows) / intra.clamp(1, 16);
        // The in-order core must also issue every instruction of the pixel
        // loop (MVMs plus gather/store/bookkeeping overhead).
        let issue_cycles = pixels * (mvms_per_pixel + 8);
        // Fused element-wise work on the vector unit.
        let vector_cycles = self
            .arch
            .core
            .vector_unit
            .cycles_for(group.metrics.vector_elems / u64::from(replicas.max(1)));
        // Activation input must reach every core of the replica over the NoC.
        let input_slice = group.metrics.input_bytes / u64::from(replicas.max(1));
        let flit = u64::from(self.arch.chip().noc_flit_bytes.max(1));
        let comm_cycles = input_slice.div_ceil(flit)
            + (group.metrics.output_bytes / u64::from(replicas.max(1))).div_ceil(flit);
        cim_cycles.max(issue_cycles).max(vector_cycles).max(comm_cycles)
    }

    /// Estimated energy of executing the whole group once (independent of
    /// the mapping, except for duplication-induced broadcast traffic).
    pub fn group_energy_pj(&self, group: &OpGroup, cores_per_replica: u32, replicas: u32) -> f64 {
        let compute = self.energy.mvm_energy(
            group.metrics.macs,
            group.metrics.input_bytes,
            group.metrics.output_bytes,
        );
        let mean_hops = (self.arch.chip().mesh.width + self.arch.chip().mesh.height) / 3;
        let broadcast_bytes = group.metrics.input_bytes * u64::from(cores_per_replica.max(1));
        let flits = self.arch.chip().flits_for(broadcast_bytes) * u64::from(replicas.max(1)).min(4);
        let noc = self.energy.noc_energy(flits, self.arch.chip().noc_flit_bytes, mean_hops.max(1));
        let vector_pj = self.energy.digital.vector_pj_per_elem * group.metrics.vector_elems as f64;
        compute.total_pj() + noc.total_pj() + vector_pj
    }

    /// Cycles for `bytes` of activations to cross `hops` inter-chip links
    /// and land in the consumer chip's global memory — the cost the
    /// system-level partitioner charges each cut edge, mirroring the
    /// simulator's fabric timing (head latency per hop, flit
    /// serialization, then the consumer's memory port).
    pub fn interchip_transfer_cycles(&self, bytes: u64, hops: u32) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let link = &self.arch.system.interconnect;
        u64::from(link.link_latency_cycles) * u64::from(hops.max(1))
            + link.flits_for(bytes)
            + self.arch.chip().global_memory.transfer_cycles(bytes)
    }

    /// Inter-chip hop count between two chips under the configured
    /// topology (1 for point-to-point, ring distance on a ring).
    pub fn interchip_hops(&self, from_chip: u32, to_chip: u32) -> u32 {
        if from_chip == to_chip {
            return 0;
        }
        match self.arch.system.interconnect.topology {
            InterChipTopology::PointToPoint => 1,
            InterChipTopology::Ring => {
                let chips = self.arch.chip_count().max(1);
                let forward = (to_chip + chips - from_chip) % chips;
                forward.min(chips - forward).max(1)
            }
        }
    }

    /// Cycles to bring a stage's weights from global memory into the CIM
    /// arrays (the dominant stage-transition overhead under the SRAM
    /// capacity constraint).
    pub fn weight_reload_cycles(&self, stage_weight_bytes: u64) -> u64 {
        self.arch.chip().global_memory.transfer_cycles(stage_weight_bytes)
            + self
                .arch
                .core
                .local_memory
                .transfer_cycles(stage_weight_bytes / u64::from(self.arch.chip().core_count.max(1)))
    }

    /// Estimates the cost of one stage under a concrete mapping.
    pub fn stage_cost(&self, groups: &[&OpGroup], mapping: &[GroupMapping]) -> StageCost {
        let mut bottleneck = 0u64;
        let mut sum = 0u64;
        let mut energy = 0.0f64;
        let mut stage_weight_bytes = 0u64;
        let member: std::collections::BTreeSet<usize> = groups.iter().map(|g| g.index).collect();
        let mut boundary_bytes = 0u64;
        for (group, m) in groups.iter().zip(mapping) {
            let cycles = self.group_cycles(group, m.cores_per_replica, m.replicas);
            bottleneck = bottleneck.max(cycles);
            sum += cycles;
            energy += self.group_energy_pj(group, m.cores_per_replica, m.replicas);
            stage_weight_bytes += group.metrics.weight_bytes * u64::from(m.replicas);
            // Activations arriving from outside the stage are filled from
            // global memory — the other half of the stage-boundary penalty.
            boundary_bytes += group
                .preds
                .iter()
                .filter(|d| !member.contains(&d.group))
                .map(|d| d.bytes)
                .sum::<u64>();
            if group.reads_graph_input {
                boundary_bytes += group.metrics.input_bytes;
            }
        }
        let reload = self.weight_reload_cycles(stage_weight_bytes)
            + self.arch.chip().global_memory.transfer_cycles(boundary_bytes);
        energy += self.energy.cim.weight_load_pj(stage_weight_bytes)
            + self.energy.global_memory_energy(stage_weight_bytes + boundary_bytes).total_pj();
        // Pipelined stage latency: the bottleneck group dominates, the
        // remaining groups contribute their pipeline-fill share.
        let cycles = bottleneck + sum / 16 + reload;
        StageCost { cycles, energy_pj: energy }
    }

    /// Chooses cores-per-replica and duplication factors for the groups of
    /// a candidate stage — the paper's `OptimalMapping(stage, R)`.
    ///
    /// Returns `None` when the stage cannot fit the chip even without
    /// duplication. Otherwise the allocation starts from the
    /// capacity-imposed minimum and spends the vacant cores on duplicating
    /// the groups with the largest estimated execution time.
    pub fn optimal_mapping(&self, groups: &[&OpGroup]) -> Option<(StageCost, Vec<GroupMapping>)> {
        self.mapping_with_duplication(groups, true)
    }

    /// Same as [`Self::optimal_mapping`] but optionally disabling
    /// duplication (used by the generic-mapping baseline).
    pub fn mapping_with_duplication(
        &self,
        groups: &[&OpGroup],
        duplicate: bool,
    ) -> Option<(StageCost, Vec<GroupMapping>)> {
        if groups.is_empty() {
            return None;
        }
        let total = self.total_cores();
        let mut mapping: Vec<GroupMapping> = groups
            .iter()
            .map(|g| GroupMapping {
                group: g.index,
                cores_per_replica: self.min_cores(g),
                replicas: 1,
            })
            .collect();
        let used: u32 = mapping.iter().map(GroupMapping::total_cores).sum();
        if used > total {
            return None;
        }
        let mut cost = self.stage_cost(groups, &mapping);
        if duplicate {
            let mut remaining = total - used;
            // Greedy refinement: repeatedly duplicate the group with the
            // largest estimated time while vacant cores remain and the
            // whole-stage estimate (including the extra weight reload the
            // duplicate causes) keeps improving.
            loop {
                let mut best: Option<(usize, u64, u32)> = None;
                for (i, m) in mapping.iter().enumerate() {
                    let cost_now = self.group_cycles(groups[i], m.cores_per_replica, m.replicas);
                    let extra = m.cores_per_replica;
                    if extra <= remaining {
                        match best {
                            Some((_, best_cost, _)) if cost_now <= best_cost => {}
                            _ => best = Some((i, cost_now, extra)),
                        }
                    }
                }
                let Some((i, _, extra)) = best else { break };
                mapping[i].replicas += 1;
                let candidate = self.stage_cost(groups, &mapping);
                if candidate.cycles < cost.cycles {
                    cost = candidate;
                    remaining -= extra;
                    if remaining == 0 {
                        break;
                    }
                } else {
                    mapping[i].replicas -= 1;
                    break;
                }
            }
        }
        Some((cost, mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::CondensedGraph;
    use cimflow_nn::models;

    fn condensed(resolution: u32) -> CondensedGraph {
        CondensedGraph::from_graph(&models::resnet18(resolution).graph).unwrap()
    }

    #[test]
    fn min_cores_respects_capacity_and_macro_groups() {
        let model = CostModel::new(&cimflow_arch::ArchConfig::paper_default());
        let condensed = condensed(64);
        for group in condensed.groups() {
            let min = model.min_cores(group);
            assert!(min >= 1);
            // A replica spread over `min` cores must fit their capacity.
            assert!(u64::from(min) * model.core_capacity_bytes() >= group.metrics.weight_bytes);
        }
    }

    #[test]
    fn group_cycles_decrease_with_more_replicas() {
        let model = CostModel::new(&cimflow_arch::ArchConfig::paper_default());
        let condensed = condensed(64);
        let heavy = condensed.groups().iter().max_by_key(|g| g.metrics.macs).unwrap();
        let one = model.group_cycles(heavy, model.min_cores(heavy), 1);
        let four = model.group_cycles(heavy, model.min_cores(heavy), 4);
        assert!(four < one, "duplication must reduce the bottleneck ({four} !< {one})");
    }

    #[test]
    fn optimal_mapping_uses_vacant_cores() {
        let arch = cimflow_arch::ArchConfig::paper_default();
        let model = CostModel::new(&arch);
        let condensed = condensed(64);
        let groups: Vec<&OpGroup> = condensed.groups().iter().collect();
        let (_, mapping) = model.optimal_mapping(&groups).unwrap();
        let used: u32 = mapping.iter().map(GroupMapping::total_cores).sum();
        assert!(used <= arch.chip().core_count);
        assert!(mapping.iter().any(|m| m.replicas > 1), "ResNet18 leaves room for duplication");
        // The no-duplication mapping must never be faster.
        let (without, _) = model.mapping_with_duplication(&groups, false).unwrap();
        let (with, _) = model.optimal_mapping(&groups).unwrap();
        assert!(with.cycles <= without.cycles);
    }

    #[test]
    fn oversized_stage_is_rejected() {
        let arch = cimflow_arch::ArchConfig::paper_default().with_core_count(4);
        let model = CostModel::new(&arch);
        let vgg = CondensedGraph::from_graph(&models::vgg19(224).graph).unwrap();
        let groups: Vec<&OpGroup> = vgg.groups().iter().collect();
        assert!(
            model.optimal_mapping(&groups).is_none(),
            "VGG19 cannot fit four cores in one stage"
        );
    }

    #[test]
    fn stage_cost_accounts_for_weight_reload() {
        let model = CostModel::new(&cimflow_arch::ArchConfig::paper_default());
        let condensed = condensed(64);
        let groups: Vec<&OpGroup> = condensed.groups().iter().collect();
        let single_mapping: Vec<GroupMapping> = groups
            .iter()
            .map(|g| GroupMapping {
                group: g.index,
                cores_per_replica: model.min_cores(g),
                replicas: 1,
            })
            .collect();
        let whole = model.stage_cost(&groups, &single_mapping);
        // Splitting into two stages pays the reload twice and pipelines less.
        let half = groups.len() / 2;
        let first = model.stage_cost(&groups[..half], &single_mapping[..half]);
        let second = model.stage_cost(&groups[half..], &single_mapping[half..]);
        assert!(first.cycles + second.cycles > whole.cycles);
        assert!(whole.energy_pj > 0.0);
    }

    #[test]
    fn weight_reload_scales_with_bytes() {
        let model = CostModel::new(&cimflow_arch::ArchConfig::paper_default());
        assert!(model.weight_reload_cycles(10 << 20) > model.weight_reload_cycles(1 << 20));
    }

    #[test]
    fn interchip_transfers_cost_latency_plus_serialization() {
        let arch = cimflow_arch::ArchConfig::paper_default().with_chip_count(2);
        let model = CostModel::new(&arch);
        assert_eq!(model.interchip_transfer_cycles(0, 1), 0);
        let small = model.interchip_transfer_cycles(64, 1);
        let large = model.interchip_transfer_cycles(64 * 1024, 1);
        assert!(small >= u64::from(arch.system.interconnect.link_latency_cycles));
        assert!(large > small);
        // Every additional hop pays the head latency again …
        let two_hops = model.interchip_transfer_cycles(64, 2);
        assert_eq!(two_hops - small, u64::from(arch.system.interconnect.link_latency_cycles));
        // … and a faster link reduces the serialization share.
        let fast = CostModel::new(&arch.with_interchip_link_bytes(256));
        assert!(fast.interchip_transfer_cycles(64 * 1024, 1) < large);
    }
}
