//! OP-level optimization: virtual (im2col) mapping of operator loop nests
//! onto the 2-D CIM arrays, followed by physical mapping under the real
//! resource constraints (macro geometry, macro-group count, local-memory
//! capacity).
//!
//! The paper performs these transformations as MLIR passes; this module
//! implements the same decisions on an explicit loop-nest representation
//! (see DESIGN.md for the substitution note). The output of the phase is
//! an [`OpTiling`], the exact tile geometry the code generator lowers into
//! instructions.

use cimflow_arch::ArchConfig;

use crate::frontend::OpGroup;

/// One loop dimension of an operator's (virtually mapped) loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDim {
    /// Loop label (`k`: reduction, `m`: output channel, `p`: output pixel).
    pub label: char,
    /// Trip count.
    pub extent: u32,
    /// Tile size chosen by the physical-mapping phase.
    pub tile: u32,
}

impl LoopDim {
    /// Number of tiles of this dimension.
    pub fn tiles(&self) -> u32 {
        self.extent.div_ceil(self.tile.max(1))
    }
}

/// The virtually mapped loop nest of an MVM operator: after im2col the
/// convolution becomes a `P × K × M` matrix multiplication whose `K × M`
/// weight matrix is laid over the CIM arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Output-pixel dimension (`oh × ow`, or 1 for fully connected layers).
    pub pixels: LoopDim,
    /// Reduction dimension (`in_c / groups × kh × kw`).
    pub reduction: LoopDim,
    /// Output-channel dimension.
    pub channels: LoopDim,
}

impl LoopNest {
    /// Builds the constraint-free virtual mapping of a condensed group:
    /// all tile sizes equal the full extents (an idealized CIM array with
    /// unlimited rows and columns).
    pub fn virtual_mapping(group: &OpGroup) -> Self {
        LoopNest {
            pixels: LoopDim {
                label: 'p',
                extent: group.metrics.out_pixels,
                tile: group.metrics.out_pixels,
            },
            reduction: LoopDim {
                label: 'k',
                extent: group.metrics.k_rows,
                tile: group.metrics.k_rows,
            },
            channels: LoopDim {
                label: 'm',
                extent: group.metrics.out_channels,
                tile: group.metrics.out_channels,
            },
        }
    }

    /// Applies the physical resource constraints: the reduction dimension
    /// is tiled to the macro height, the channel dimension to the
    /// macro-group width and the pixel dimension to what the local-memory
    /// segments can hold.
    pub fn tile(mut self, arch: &ArchConfig, pixel_tile: u32) -> Self {
        let unit = &arch.core.cim_unit;
        self.reduction.tile = self.reduction.extent.min(unit.rows_per_operation());
        self.channels.tile = self.channels.extent.min(unit.output_channels_per_group());
        self.pixels.tile = pixel_tile.clamp(1, self.pixels.extent.max(1));
        self
    }

    /// Total multiply-accumulates expressed by the nest.
    pub fn macs(&self) -> u64 {
        u64::from(self.pixels.extent)
            * u64::from(self.reduction.extent)
            * u64::from(self.channels.extent)
    }
}

/// The physical tiling of one operator group on one cluster of cores —
/// the final product of the OP-level optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTiling {
    /// Reduction rows of the im2col weight matrix.
    pub k_rows: u32,
    /// Reduction-dimension tiles (`ceil(k_rows / macro rows)`).
    pub row_tiles: u32,
    /// Output channels assigned to each core of the cluster.
    pub out_channels_per_core: u32,
    /// Channel tiles per core (`ceil(out_channels_per_core / MG width)`).
    pub channel_tiles_per_core: u32,
    /// Macro groups used per core (`row_tiles × channel_tiles_per_core`).
    pub macro_groups_used: u32,
    /// Output pixels per pixel tile.
    pub pixel_tile: u32,
    /// Number of pixel tiles the cluster iterates over.
    pub pixel_tiles: u32,
    /// Output pixels assigned to the cluster.
    pub cluster_pixels: u32,
    /// im2col input bytes gathered per output pixel.
    pub input_bytes_per_pixel: u32,
    /// Output bytes produced per pixel per core.
    pub output_bytes_per_pixel_per_core: u32,
}

impl OpTiling {
    /// Plans the tiling of `group` on a cluster of `cores_per_replica`
    /// cores responsible for `cluster_pixels` output pixels.
    ///
    /// The tile-size search maximizes the pixel tile subject to the input
    /// gather buffer, the INT32 accumulator tile and the output tile all
    /// fitting their local-memory segments, mirroring the paper's
    /// "loop tiling based on resource capacity constraints ... determines
    /// the optimal tile sizes ... while respecting resource limitations at
    /// each memory hierarchy".
    pub fn plan(
        group: &OpGroup,
        arch: &ArchConfig,
        cores_per_replica: u32,
        cluster_pixels: u32,
    ) -> Self {
        let unit = &arch.core.cim_unit;
        let k_rows = group.metrics.k_rows.max(1);
        let row_tiles = k_rows.div_ceil(unit.rows_per_operation());
        let out_channels_per_core =
            group.metrics.out_channels.div_ceil(cores_per_replica.max(1)).max(1);
        let channel_tiles_per_core =
            out_channels_per_core.div_ceil(unit.output_channels_per_group());
        let macro_groups_used = (row_tiles * channel_tiles_per_core).min(unit.macro_groups);

        let segment = arch.core.local_memory.segment_bytes().max(1);
        let input_bytes_per_pixel = k_rows;
        let output_bytes_per_pixel = out_channels_per_core;
        let acc_bytes_per_pixel = out_channels_per_core * 4;
        // Largest pixel tile whose working set fits the segments.
        let by_input = (segment / u64::from(input_bytes_per_pixel.max(1))).max(1) as u32;
        let by_output = (segment / u64::from(output_bytes_per_pixel.max(1))).max(1) as u32;
        let by_acc = (segment / u64::from(acc_bytes_per_pixel.max(1))).max(1) as u32;
        let pixel_tile = by_input.min(by_output).min(by_acc).clamp(1, cluster_pixels.max(1));
        let pixel_tiles = cluster_pixels.max(1).div_ceil(pixel_tile);

        OpTiling {
            k_rows,
            row_tiles,
            out_channels_per_core,
            channel_tiles_per_core,
            macro_groups_used,
            pixel_tile,
            pixel_tiles,
            cluster_pixels: cluster_pixels.max(1),
            input_bytes_per_pixel,
            output_bytes_per_pixel_per_core: output_bytes_per_pixel,
        }
    }

    /// CIM MVM operations issued per output pixel on one core.
    pub fn mvms_per_pixel(&self) -> u32 {
        self.row_tiles * self.channel_tiles_per_core
    }

    /// Intra-core weight duplication factor: how many copies of the weight
    /// tile fit into the otherwise vacant macro groups of one core. The
    /// paper's macro groups "support weight duplication and flexible
    /// spatial mapping"; duplicating small operators across vacant MGs
    /// lets several output pixels proceed in parallel inside one core.
    pub fn intra_core_duplication(&self, total_macro_groups: u32) -> u32 {
        (total_macro_groups / self.mvms_per_pixel().max(1)).clamp(1, 16)
    }

    /// Weight bytes resident per core for this tiling.
    pub fn weight_bytes_per_core(&self) -> u64 {
        u64::from(self.k_rows) * u64::from(self.out_channels_per_core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::CondensedGraph;
    use cimflow_arch::ArchConfig;
    use cimflow_nn::models;

    fn groups() -> CondensedGraph {
        CondensedGraph::from_graph(&models::resnet18(64).graph).unwrap()
    }

    #[test]
    fn virtual_mapping_is_constraint_free_and_preserves_macs() {
        let condensed = groups();
        for group in condensed.groups() {
            let nest = LoopNest::virtual_mapping(group);
            assert_eq!(nest.pixels.tile, nest.pixels.extent);
            assert_eq!(nest.macs(), group.metrics.macs, "{}", group.name);
        }
    }

    #[test]
    fn physical_tiling_respects_macro_geometry() {
        let arch = ArchConfig::paper_default();
        let condensed = groups();
        for group in condensed.groups() {
            let nest = LoopNest::virtual_mapping(group).tile(&arch, 64);
            assert!(nest.reduction.tile <= arch.core.cim_unit.rows_per_operation());
            assert!(nest.channels.tile <= arch.core.cim_unit.output_channels_per_group());
            assert!(nest.pixels.tile <= nest.pixels.extent.max(1));
            assert!(nest.reduction.tiles() >= 1);
        }
    }

    #[test]
    fn tiling_covers_all_pixels_and_fits_local_memory() {
        let arch = ArchConfig::paper_default();
        let condensed = groups();
        for group in condensed.groups() {
            let tiling = OpTiling::plan(group, &arch, 2, group.metrics.out_pixels);
            assert!(
                u64::from(tiling.pixel_tile) * u64::from(tiling.input_bytes_per_pixel)
                    <= arch.core.local_memory.segment_bytes()
            );
            assert!(tiling.pixel_tiles * tiling.pixel_tile >= tiling.cluster_pixels);
            assert!(tiling.macro_groups_used <= arch.core.cim_unit.macro_groups);
            assert!(tiling.mvms_per_pixel() >= 1);
            assert!(tiling.weight_bytes_per_core() > 0);
        }
    }

    #[test]
    fn more_cores_reduce_per_core_channels() {
        let arch = ArchConfig::paper_default();
        let condensed = groups();
        let big = condensed.groups().iter().max_by_key(|g| g.metrics.out_channels).unwrap();
        let one = OpTiling::plan(big, &arch, 1, big.metrics.out_pixels);
        let four = OpTiling::plan(big, &arch, 4, big.metrics.out_pixels);
        assert!(four.out_channels_per_core < one.out_channels_per_core);
        assert!(four.weight_bytes_per_core() < one.weight_bytes_per_core());
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let arch = ArchConfig::paper_default();
        let condensed = groups();
        let group = &condensed.groups()[0];
        let tiling = OpTiling::plan(group, &arch, 1, 0);
        assert_eq!(tiling.cluster_pixels, 1);
        assert!(tiling.pixel_tile >= 1);
    }
}
