use std::error::Error;
use std::fmt;

use cimflow_isa::IsaError;
use cimflow_nn::NnError;

/// Errors raised by the compilation flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The workload cannot fit the architecture even after partitioning
    /// (a single operator's weights exceed the whole chip's CIM capacity).
    CapacityExceeded {
        /// The offending operator group.
        group: String,
        /// Weight bytes required by the group.
        required_bytes: u64,
        /// CIM weight capacity of the chip in bytes.
        available_bytes: u64,
    },
    /// The model contains no MVM-based operator to map onto the CIM arrays.
    EmptyWorkload,
    /// A structural defect in the input model.
    Model(NnError),
    /// Code generation produced an ill-formed instruction sequence.
    Codegen(IsaError),
    /// Generated code failed the compiler's own validation pass.
    ValidationFailed {
        /// Human-readable description of the failed check.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CapacityExceeded { group, required_bytes, available_bytes } => write!(
                f,
                "operator group `{group}` needs {required_bytes} weight bytes but the chip provides {available_bytes}"
            ),
            CompileError::EmptyWorkload => {
                write!(f, "the model contains no MVM-based operator to map onto CIM arrays")
            }
            CompileError::Model(e) => write!(f, "invalid input model: {e}"),
            CompileError::Codegen(e) => write!(f, "code generation failed: {e}"),
            CompileError::ValidationFailed { reason } => {
                write!(f, "generated code failed validation: {reason}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Model(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for CompileError {
    fn from(value: NnError) -> Self {
        CompileError::Model(value)
    }
}

impl From<IsaError> for CompileError {
    fn from(value: IsaError) -> Self {
        CompileError::Codegen(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CompileError::CapacityExceeded {
            group: "fc1".into(),
            required_bytes: 1 << 30,
            available_bytes: 1 << 25,
        };
        assert!(e.to_string().contains("fc1"));
        assert!(e.source().is_none());

        let wrapped: CompileError = NnError::InvalidGraph { reason: "cycle".into() }.into();
        assert!(wrapped.source().is_some());
        let wrapped: CompileError = IsaError::UnknownOpcode { opcode: 63 }.into();
        assert!(wrapped.to_string().contains("code generation"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompileError>();
    }
}
